/**
 * @file
 * Small CSV writer used by benches and examples to dump series for
 * offline plotting.
 */

#ifndef ADRIAS_COMMON_CSV_HH
#define ADRIAS_COMMON_CSV_HH

#include <string>
#include <vector>

#include "common/error.hh"

namespace adrias
{

/**
 * CSV writer with atomic publication.
 *
 * Rows accumulate in memory and the whole file is published with one
 * DurableFile temp-write + rename on close() (or destruction), so a
 * crash mid-dump never leaves a half-written CSV behind.
 *
 * Cells containing commas, quotes or newlines are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /**
     * Claim the target path (truncates it, like the historical
     * streaming writer, so a stale file never outlives a new run).
     *
     * @throws std::runtime_error when the path cannot be written.
     */
    explicit CsvWriter(const std::string &path);

    /** Publishes pending rows (best effort; close() to observe errors). */
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row of raw string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write a labelled numeric row. */
    void writeRow(const std::string &label,
                  const std::vector<double> &values);

    /**
     * Atomically publish the accumulated rows; further writes are
     * invalid.
     *
     * @throws std::runtime_error when the write fails.
     */
    void close();

    /** @return number of rows written so far. */
    std::size_t rowCount() const { return rowsWritten; }

    /** Quote a cell if needed (exposed for testing). */
    static std::string escape(const std::string &cell);

  private:
    std::string path;
    std::string buffer;
    bool openForWriting = true;
    std::size_t rowsWritten = 0;
};

/**
 * Parse one CSV line into cells per RFC 4180 (the inverse of
 * CsvWriter::escape): quoted cells may contain commas, doubled quotes
 * decode to one quote.
 *
 * Malformed structure is reported as a typed error rather than
 * guessed around: ErrorCode::BadSyntax for an unterminated quoted
 * cell or for payload after a closing quote (`"ab"c`).
 */
[[nodiscard]] Result<std::vector<std::string>>
parseCsvLine(const std::string &line);

/**
 * Read a whole CSV file into rows of cells.
 *
 * @return ErrorCode::Io when the file cannot be opened, or the first
 *         row's syntax error (message carries the 1-based line
 *         number).  Empty lines are skipped.
 */
[[nodiscard]] Result<std::vector<std::vector<std::string>>>
readCsvFile(const std::string &path);

} // namespace adrias

#endif // ADRIAS_COMMON_CSV_HH
