/**
 * @file
 * Runtime-management (L2) hook of the scenario runner.
 *
 * The paper separates placement-time orchestration (L1, Adrias) from
 * dynamic runtime mechanisms (L2, e.g. page migration) and calls them
 * orthogonal and complementary (§II).  A RuntimePolicy observes every
 * tick and may migrate running instances between memory pools;
 * src/core provides a threshold-based migrator as the reference L2
 * mechanism.
 */

#ifndef ADRIAS_SCENARIO_RUNTIME_HH
#define ADRIAS_SCENARIO_RUNTIME_HH

#include <string>
#include <vector>

#include "testbed/testbed.hh"
#include "workloads/workload.hh"

namespace adrias::scenario
{

/** Per-tick runtime manager with mutable access to running apps. */
class RuntimePolicy
{
  public:
    virtual ~RuntimePolicy() = default;

    /** Short name for bench tables. */
    virtual std::string name() const = 0;

    /**
     * Inspect one tick's outcomes and optionally trigger migrations.
     *
     * @param running live instances, aligned index-for-index with
     *        @p tick's outcomes.
     * @param tick the contention results of the elapsed second.
     * @param now simulation time at the end of the tick.
     */
    virtual void
    onTick(const std::vector<workloads::WorkloadInstance *> &running,
           const testbed::TickResult &tick, SimTime now) = 0;
};

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_RUNTIME_HH
