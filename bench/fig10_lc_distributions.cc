/**
 * @file
 * Fig. 10 — Redis/Memcached distributions across scenarios: total
 * execution time to drain the request budget, and p99/p99.9 response
 * percentiles, split by memory mode.
 *
 * Expected shape: remote mode yields higher response times but with
 * overlapping distributions — loose QoS targets leave room to use
 * remote memory, strict ones do not.
 */

#include <iostream>
#include <map>

#include "bench/common.hh"

int
main()
{
    using namespace adrias;
    bench::banner("Fig. 10 — LC exec-time and tail-latency "
                  "distributions",
                  "remote shifted up but overlapping; prohibitive only "
                  "for strict QoS");

    const auto scenarios =
        static_cast<std::size_t>(bench::envInt("ADRIAS_BENCH_SCENARIOS",
                                               4));
    struct Bucket
    {
        std::vector<double> exec, p99, p999;
    };
    std::map<std::string, Bucket> local, remote;

    for (std::size_t i = 0; i < scenarios; ++i) {
        for (SimTime spawn_max : {20, 40, 60}) {
            scenario::ScenarioRunner runner(bench::evalScenario(
                1300 + i * 10 + static_cast<std::uint64_t>(spawn_max),
                spawn_max));
            scenario::RandomPlacement policy(1400 + i);
            const auto result = runner.run(policy);
            for (const auto &record : result.records) {
                if (record.cls != WorkloadClass::LatencyCritical)
                    continue;
                Bucket &bucket = record.mode == MemoryMode::Remote
                                     ? remote[record.name]
                                     : local[record.name];
                bucket.exec.push_back(record.execTimeSec);
                bucket.p99.push_back(record.p99Ms);
                bucket.p999.push_back(record.p999Ms);
            }
        }
    }

    for (const auto &spec : workloads::latencyCriticalBenchmarks()) {
        std::cout << "\n--- " << spec.name << " ---\n";
        TextTable table({"metric", "n loc", "med loc", "p75 loc", "n rem",
                         "med rem", "p75 rem"});
        const Bucket &l = local[spec.name];
        const Bucket &r = remote[spec.name];
        auto add_metric = [&](const char *label,
                              const std::vector<double> &lv,
                              const std::vector<double> &rv) {
            if (lv.empty() || rv.empty())
                return;
            const auto ls = stats::DistributionSummary::from(lv);
            const auto rs = stats::DistributionSummary::from(rv);
            table.addRow(label,
                         {static_cast<double>(ls.count), ls.median,
                          ls.p75, static_cast<double>(rs.count),
                          rs.median, rs.p75},
                         2);
        };
        add_metric("exec time (s)", l.exec, r.exec);
        add_metric("p99 (ms)", l.p99, r.p99);
        add_metric("p99.9 (ms)", l.p999, r.p999);
        std::cout << table.toString();
    }
    std::cout << "\nShape check: remote medians above local but within "
                 "overlapping ranges.\n";
    return 0;
}
