/**
 * @file
 * Fixed-bin histogram plus distribution summary used by benches that
 * reproduce the paper's box/violin-style distribution figures
 * (Figs. 9, 10, 16).
 */

#ifndef ADRIAS_STATS_HISTOGRAM_HH
#define ADRIAS_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace adrias::stats
{

/** Uniform-bin histogram over a closed range [lo, hi]. */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin (must exceed lo).
     * @param bins number of bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Count one observation; out-of-range values clamp to edge bins. */
    void add(double value);

    /** @return count in the given bin. */
    std::size_t binCount(std::size_t bin) const;

    /** @return total observations. */
    std::size_t total() const { return totalCount; }

    /** @return number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** @return the centre value of the given bin. */
    double binCenter(std::size_t bin) const;

    /** Render as a compact one-histogram-per-line ASCII sketch. */
    std::string sketch(int width = 50) const;

  private:
    double lower;
    double upper;
    std::vector<std::size_t> counts;
    std::size_t totalCount = 0;
};

/**
 * Five-number-plus summary of a sample: min, p25, median, p75, p95,
 * p99, max and mean.  This is the unit benches print per box plot.
 */
struct DistributionSummary
{
    std::size_t count = 0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    double mean = 0.0;

    /**
     * Compute from a sample.  An empty sample yields count == 0 and
     * NaN for every statistic — "no data" must never read as 0.0.
     */
    static DistributionSummary from(const std::vector<double> &values);

    /** One-line rendering for bench tables. */
    std::string toString() const;
};

} // namespace adrias::stats

#endif // ADRIAS_STATS_HISTOGRAM_HH
