/**
 * @file
 * Fully-connected (dense) layer: y = x W + b.
 */

#ifndef ADRIAS_ML_DENSE_HH
#define ADRIAS_ML_DENSE_HH

#include "common/rng.hh"
#include "ml/layer.hh"

namespace adrias::ml
{

/** Affine layer with Glorot-uniform initialized weights. */
class Dense : public Layer
{
  public:
    /**
     * @param in_features input width.
     * @param out_features output width.
     * @param rng source for weight initialization.
     */
    Dense(std::size_t in_features, std::size_t out_features, Rng &rng);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;
    std::vector<Param *> params() override;

    std::size_t inFeatures() const { return weight.value.rows(); }
    std::size_t outFeatures() const { return weight.value.cols(); }

  private:
    Param weight; ///< (in x out)
    Param bias;   ///< (1 x out)
    Matrix lastInput;
    Matrix gradScratch; ///< staging buffer for weight-gradient products
};

} // namespace adrias::ml

#endif // ADRIAS_ML_DENSE_HH
