file(REMOVE_RECURSE
  "CMakeFiles/traffic_reduction.dir/traffic_reduction.cc.o"
  "CMakeFiles/traffic_reduction.dir/traffic_reduction.cc.o.d"
  "traffic_reduction"
  "traffic_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
