/**
 * @file
 * Sequential container of layers plus the "non-linear block" factory the
 * Adrias models reuse (Dense + ReLU + BatchNorm + Dropout, Fig. 11).
 */

#ifndef ADRIAS_ML_SEQUENTIAL_HH
#define ADRIAS_ML_SEQUENTIAL_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "ml/layer.hh"

namespace adrias::ml
{

/** Feed-forward chain of layers with joint forward/backward. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer; returns a reference for chaining. */
    Sequential &add(std::unique_ptr<Layer> layer);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;
    std::vector<Param *> params() override;
    void setTraining(bool training) override;
    void setInference(bool on) override;
    void beginStatsEstimation() override;
    void endStatsEstimation() override;
    std::vector<Matrix *> stateTensors() override;

    std::size_t layerCount() const { return layers.size(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers;
};

/** Normalization flavour inside the non-linear head blocks. */
enum class HeadNorm
{
    Batch, ///< batch normalization (the paper's architecture)
    Layer, ///< layer normalization (no train/eval statistics gap)
};

/**
 * Build the triplet of non-linear blocks used as the prediction head in
 * both Adrias models, ending in a linear output layer.
 *
 * @param input_width width of the concatenated hidden representation.
 * @param hidden_width width of each non-linear block.
 * @param output_width final output width (8 metrics or 1 scalar).
 * @param dropout drop probability inside each block.
 * @param rng initialization and dropout-mask source.
 * @param norm normalization flavour (see HeadNorm).
 */
std::unique_ptr<Sequential>
makeNonLinearHead(std::size_t input_width, std::size_t hidden_width,
                  std::size_t output_width, double dropout, Rng &rng,
                  HeadNorm norm = HeadNorm::Batch);

} // namespace adrias::ml

#endif // ADRIAS_ML_SEQUENTIAL_HH
