/**
 * @file
 * Model-training walk-through: the offline/online split of the paper
 * made explicit.  Collects traces, builds the three datasets, trains
 * the system-state and performance models, persists the weights to
 * disk, reloads them into a fresh model and verifies identical
 * predictions — the workflow of a production deployment where training
 * and serving are separate processes.
 *
 * Usage:  ./build/examples/train_and_predict [model-dir]
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/adrias.hh"
#include "ml/serialize.hh"
#include "models/performance.hh"
#include "models/system_state.hh"

using namespace adrias;

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : ".";

    std::cout << "== Offline phase ==\n1. Collecting traces...\n";
    std::vector<scenario::ScenarioResult> results;
    for (std::uint64_t seed : {11, 12, 13, 14}) {
        scenario::ScenarioConfig config;
        config.durationSec = 1500;
        config.spawnMinSec = 5;
        config.spawnMaxSec = 30;
        config.seed = seed;
        scenario::ScenarioRunner runner(config);
        scenario::RandomPlacement policy(seed + 50);
        results.push_back(runner.run(policy));
    }

    std::cout << "2. Collecting application signatures...\n";
    scenario::SignatureStore signatures;
    scenario::collectAllSignatures(signatures);

    std::cout << "3. Building datasets...\n";
    auto state = scenario::DatasetBuilder::systemState(results, 5);
    auto [state_train, state_test] =
        scenario::splitDataset(std::move(state), 0.6, 3);
    auto be = scenario::DatasetBuilder::performance(
        results, signatures, WorkloadClass::BestEffort);
    auto [be_train, be_test] = scenario::splitDataset(std::move(be),
                                                      0.6, 3);
    std::cout << "   system-state: " << state_train.size() << " train / "
              << state_test.size() << " test\n   performance (BE): "
              << be_train.size() << " train / " << be_test.size()
              << " test\n";

    std::cout << "4. Training...\n";
    models::ModelConfig config;
    config.epochs = 40;
    models::SystemStateModel state_model(config);
    state_model.train(state_train);
    models::PerformanceModel perf_model(models::FutureKind::Predicted,
                                        config);
    perf_model.train(be_train, &state_model);

    const auto state_eval = state_model.evaluate(state_test);
    const auto perf_eval = perf_model.evaluate(be_test, &state_model);
    std::cout << "   system-state R^2 = "
              << formatDouble(state_eval.r2Average, 3)
              << ", BE performance R^2 = "
              << formatDouble(perf_eval.r2, 3) << "\n";

    std::cout << "5. Persisting models (weights + norm state + "
                 "scalers)...\n";
    const std::string state_path = dir + "/adrias_system_state.model";
    const std::string perf_path = dir + "/adrias_perf_be.model";
    state_model.save(state_path);
    perf_model.save(perf_path);

    std::cout << "\n== Online phase (separate process in production) "
                 "==\n6. Reloading into fresh models...\n";
    models::SystemStateModel serving_state(config);
    serving_state.load(state_path);
    models::PerformanceModel serving_perf(models::FutureKind::Predicted,
                                          config);
    serving_perf.load(perf_path);

    const auto &probe = be_test.front();
    const double trained_prediction = perf_model.predict(
        probe.history, probe.signature, probe.mode,
        state_model.predict(probe.history));
    const double serving_prediction = serving_perf.predict(
        probe.history, probe.signature, probe.mode,
        serving_state.predict(probe.history));
    std::cout << "   trained process predicts: "
              << formatDouble(trained_prediction, 2)
              << " s\n   serving process predicts: "
              << formatDouble(serving_prediction, 2)
              << " s\n   actual execution time:    "
              << formatDouble(probe.target, 2) << " s\n";
    if (std::abs(trained_prediction - serving_prediction) > 1e-6)
        fatal("round-trip mismatch — serialization bug");

    std::remove(state_path.c_str());
    std::remove(perf_path.c_str());
    std::cout << "\nDone: serving predictions match the training "
                 "process exactly.\n";
    return 0;
}
