#include "recovery/journal.hh"

#include <utility>

#include "common/io/binary.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace adrias::recovery
{

using scenario::PlacementDecision;

Result<void>
DecisionJournal::open(const std::string &path_, bool append)
{
    path = path_;
    return writer.open(path_, append);
}

void
DecisionJournal::close()
{
    writer.close();
}

void
DecisionJournal::onDecision(const PlacementDecision &decision)
{
    Result<void> appended = writer.append(encode(decision));
    if (!appended.ok())
        fatal("DecisionJournal: write-ahead append to '" + path +
              "' failed: " + appended.error().toString());
#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &appends_c =
            obs::MetricsRegistry::global().counter(
                "recovery.journal_appends");
        appends_c.add();
    }
#endif
}

std::string
DecisionJournal::encode(const PlacementDecision &decision)
{
    io::BinaryWriter out;
    out.writeI64(decision.tick);
    out.writeU64(decision.id);
    out.writeString(decision.specName);
    out.writeU8(static_cast<std::uint8_t>(decision.mode));
    return out.take();
}

Result<PlacementDecision>
DecisionJournal::decode(std::string_view payload)
{
    io::BinaryReader in(payload);
    PlacementDecision decision;
    decision.tick = in.readI64();
    decision.id = in.readU64();
    decision.specName = in.readString();
    const std::uint8_t rawMode = in.readU8();
    if (Result<void> status = in.status(); !status.ok())
        return status.error();
    if (rawMode > static_cast<std::uint8_t>(MemoryMode::Remote))
        return makeError(ErrorCode::BadNumber,
                         "DecisionJournal: invalid memory mode " +
                             std::to_string(rawMode));
    decision.mode = static_cast<MemoryMode>(rawMode);
    return decision;
}

Result<DecisionJournal::LoadResult>
DecisionJournal::loadAndCompact(const std::string &path)
{
    Result<io::RecordReadResult> read = io::readRecordFile(path);
    if (!read.ok()) {
        // A zero-length or sub-header file is what a kill between
        // creating the epoch file and flushing its magic leaves
        // behind.  The journal only verifies decisions the policy
        // re-derives anyway, so an empty epoch is safe: rewrite a
        // clean header and replay nothing.
        if (read.error().code == ErrorCode::Truncated) {
            if (Result<void> rewritten = io::atomicWriteFile(
                    path, io::beginRecordFileImage());
                !rewritten.ok())
                return rewritten.error();
            LoadResult emptied;
            emptied.tornTail = true;
            return emptied;
        }
        return read.error();
    }

    LoadResult loaded;
    loaded.tornTail = read.value().tornTail;
    loaded.droppedBytes = read.value().droppedBytes;
    loaded.decisions.reserve(read.value().records.size());
    for (const std::string &record : read.value().records) {
        Result<PlacementDecision> decision = decode(record);
        if (!decision.ok())
            return decision.error();
        loaded.decisions.push_back(std::move(decision.value()));
    }

    if (loaded.tornTail) {
        // Drop the torn bytes from disk too, so reopening the epoch in
        // append mode continues from a clean frame boundary.
        std::string image = io::beginRecordFileImage();
        for (const std::string &record : read.value().records)
            io::appendFramedRecord(image, record);
        if (Result<void> rewritten = io::atomicWriteFile(path, image);
            !rewritten.ok())
            return rewritten.error();
        logWarn("DecisionJournal: compacted torn tail of '" + path +
                "' (" + std::to_string(loaded.droppedBytes) +
                " bytes dropped)");
#if ADRIAS_OBS_ENABLED
        if (obs::enabled()) {
            static obs::Counter &torn_c =
                obs::MetricsRegistry::global().counter(
                    "recovery.journal_torn_tails");
            torn_c.add();
        }
#endif
    }
    return loaded;
}

} // namespace adrias::recovery
