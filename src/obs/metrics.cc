#include "obs/metrics.hh"

#include <algorithm>
#include <vector>

#include "common/table.hh"
#include "obs/json.hh"

namespace adrias::obs
{

namespace
{

/**
 * Fixed reservoir seed: with a deterministic insertion order (serial
 * runs) the estimated quantiles are bit-reproducible run to run.
 */
constexpr std::uint64_t kReservoirSeed = 9001;

/** Render a SimTime field, mapping the "no stamp" sentinel to null. */
std::string
simTimeJson(SimTime t)
{
    if (t == Histogram::kNoSimTime)
        return "null";
    return std::to_string(t);
}

} // namespace

Histogram::Histogram()
    : reservoir(kReservoirCapacity, kReservoirSeed)
{
}

void
Histogram::observe(double value, SimTime now)
{
#if ADRIAS_OBS_ENABLED
    MutexLock lock(mu);
    summary.add(value);
    reservoir.add(value);
    if (now != kNoSimTime) {
        if (firstSim == kNoSimTime || now < firstSim)
            firstSim = now;
        if (lastSim == kNoSimTime || now > lastSim)
            lastSim = now;
    }
#else
    (void)value;
    (void)now;
#endif
}

void
Histogram::merge(const Histogram &other)
{
#if ADRIAS_OBS_ENABLED
    // Copy the source under its own lock, then fold under ours: no
    // two locks held at once, so concurrent a.merge(b) / b.merge(a)
    // cannot deadlock.
    stats::OnlineStats other_summary;
    std::vector<double> other_values;
    SimTime other_first = kNoSimTime;
    SimTime other_last = kNoSimTime;
    {
        MutexLock lock(other.mu);
        other_summary = other.summary;
        other_values = other.reservoir.values();
        other_first = other.firstSim;
        other_last = other.lastSim;
    }

    MutexLock lock(mu);
    summary.merge(other_summary);
    // Re-offering the source's *retained* values approximates merging
    // the underlying streams — exact for the moments (OnlineStats
    // merge), approximate for the quantiles, which is the reservoir's
    // contract anyway.
    for (double v : other_values)
        reservoir.add(v);
    if (other_first != kNoSimTime &&
        (firstSim == kNoSimTime || other_first < firstSim))
        firstSim = other_first;
    if (other_last != kNoSimTime &&
        (lastSim == kNoSimTime || other_last > lastSim))
        lastSim = other_last;
#else
    (void)other;
#endif
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    MutexLock lock(mu);
    snap.count = summary.count();
    if (snap.count > 0) {
        snap.mean = summary.mean();
        snap.stddev = summary.stddev();
        snap.min = summary.min();
        snap.max = summary.max();
        snap.p50 = reservoir.quantile(0.50);
        snap.p90 = reservoir.quantile(0.90);
        snap.p99 = reservoir.quantile(0.99);
    }
    snap.firstSim = firstSim;
    snap.lastSim = lastSim;
    return snap;
}

void
Histogram::reset()
{
    MutexLock lock(mu);
    summary.reset();
    reservoir = stats::ReservoirSampler(kReservoirCapacity,
                                        kReservoirSeed);
    firstSim = kNoSimTime;
    lastSim = kNoSimTime;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(mu);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(mu);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock lock(mu);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::string
MetricsRegistry::summaryTable() const
{
    TextTable table(
        {"metric", "kind", "count", "value", "p50", "p99", "max"});
    MutexLock lock(mu);
    for (const auto &[name, c] : counters)
        table.addRow({name, "counter", std::to_string(c->get()), "", "",
                      "", ""});
    for (const auto &[name, g] : gauges)
        table.addRow({name, "gauge", "", formatDouble(g->get(), 3), "",
                      "", ""});
    for (const auto &[name, h] : histograms) {
        const HistogramSnapshot snap = h->snapshot();
        table.addRow({name, "histogram", std::to_string(snap.count),
                      formatDouble(snap.mean, 4),
                      formatDouble(snap.p50, 4),
                      formatDouble(snap.p99, 4),
                      formatDouble(snap.max, 4)});
    }
    return table.toString();
}

void
MetricsRegistry::writeJsonl(std::ostream &out) const
{
    MutexLock lock(mu);
    for (const auto &[name, c] : counters)
        out << "{\"metric\": \"" << jsonEscape(name)
            << "\", \"kind\": \"counter\", \"value\": " << c->get()
            << "}\n";
    for (const auto &[name, g] : gauges)
        out << "{\"metric\": \"" << jsonEscape(name)
            << "\", \"kind\": \"gauge\", \"value\": "
            << jsonNumber(g->get()) << "}\n";
    for (const auto &[name, h] : histograms) {
        const HistogramSnapshot snap = h->snapshot();
        out << "{\"metric\": \"" << jsonEscape(name)
            << "\", \"kind\": \"histogram\", \"count\": " << snap.count
            << ", \"mean\": " << jsonNumber(snap.mean)
            << ", \"stddev\": " << jsonNumber(snap.stddev)
            << ", \"min\": " << jsonNumber(snap.min)
            << ", \"max\": " << jsonNumber(snap.max)
            << ", \"p50\": " << jsonNumber(snap.p50)
            << ", \"p90\": " << jsonNumber(snap.p90)
            << ", \"p99\": " << jsonNumber(snap.p99)
            << ", \"first_sim_s\": " << simTimeJson(snap.firstSim)
            << ", \"last_sim_s\": " << simTimeJson(snap.lastSim)
            << "}\n";
    }
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mu);
    for (const auto &[name, c] : counters) {
        (void)name;
        c->reset();
    }
    for (const auto &[name, g] : gauges) {
        (void)name;
        g->reset();
    }
    for (const auto &[name, h] : histograms) {
        (void)name;
        h->reset();
    }
}

} // namespace adrias::obs
