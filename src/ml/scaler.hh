/**
 * @file
 * Feature standardization (zero mean, unit variance), fitted on the
 * training split only — the usual pre-processing in front of the
 * LSTM models.
 */

#ifndef ADRIAS_ML_SCALER_HH
#define ADRIAS_ML_SCALER_HH

#include <vector>

#include "ml/matrix.hh"

namespace adrias::ml
{

/** Per-column standard scaler. */
class StandardScaler
{
  public:
    /**
     * Estimate per-column mean and standard deviation.
     *
     * @param samples (n x features) design matrix, n >= 1.
     */
    void fit(const Matrix &samples);

    /** Fit across a set of sequences (column statistics pooled). */
    void fitSequences(const std::vector<std::vector<Matrix>> &sequences);

    /** @return standardized copy: (x - mean) / std. @pre fitted. */
    Matrix transform(const Matrix &samples) const;

    /** Standardize every step of a time-major sequence. @pre fitted. */
    std::vector<Matrix>
    transformSequence(const std::vector<Matrix> &sequence) const;

    /** @return de-standardized copy: x * std + mean. @pre fitted. */
    Matrix inverseTransform(const Matrix &samples) const;

    /** Inverse-transform a single column (e.g. a scalar target). */
    double inverseTransformScalar(double value, std::size_t column) const;

    /** Transform a single column value. */
    double transformScalar(double value, std::size_t column) const;

    bool fitted() const { return !means.empty(); }
    const std::vector<double> &mean() const { return means; }
    const std::vector<double> &stddev() const { return stds; }

    /** Restore from stored statistics (model load path). */
    void restore(std::vector<double> means_, std::vector<double> stds_);

  private:
    std::vector<double> means;
    std::vector<double> stds;

    void checkFitted(std::size_t width) const;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_SCALER_HH
