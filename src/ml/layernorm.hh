/**
 * @file
 * Layer normalization (Ba et al., 2016): per-sample normalization over
 * the feature dimension with learned scale/shift.
 *
 * Unlike batch normalization it has no train/eval statistics gap,
 * which matters here: the channel counters are spiky, so small-batch
 * statistics vary wildly between batches and a BatchNorm-based head
 * fails to transfer from batched training to single-sample inference
 * (see DESIGN.md §5 for this documented substitution).
 */

#ifndef ADRIAS_ML_LAYERNORM_HH
#define ADRIAS_ML_LAYERNORM_HH

#include "ml/layer.hh"

namespace adrias::ml
{

/** Per-row feature normalization with learned gamma/beta. */
class LayerNorm : public Layer
{
  public:
    /**
     * @param features normalized width.
     * @param epsilon variance floor.
     */
    explicit LayerNorm(std::size_t features, double epsilon = 1e-5);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;
    std::vector<Param *> params() override;

  private:
    Param gamma;
    Param beta;
    double epsilon;

    Matrix lastNormalized; ///< x_hat
    Matrix lastInvStd;     ///< per-row 1/sqrt(var+eps), (batch x 1)
};

} // namespace adrias::ml

#endif // ADRIAS_ML_LAYERNORM_HH
