# Empty compiler generated dependencies file for fig08_scenario_traces.
# This may be replaced when dependencies are built.
