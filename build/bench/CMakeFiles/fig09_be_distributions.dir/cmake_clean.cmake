file(REMOVE_RECURSE
  "CMakeFiles/fig09_be_distributions.dir/fig09_be_distributions.cc.o"
  "CMakeFiles/fig09_be_distributions.dir/fig09_be_distributions.cc.o.d"
  "fig09_be_distributions"
  "fig09_be_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_be_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
