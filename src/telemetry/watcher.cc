#include "telemetry/watcher.hh"

#include <algorithm>
#include <cmath>

#include "common/invariant.hh"
#include "common/logging.hh"

namespace adrias::telemetry
{

using testbed::CounterSample;
using testbed::kNumPerfEvents;

Watcher::Watcher(std::size_t capacity_seconds) : history(capacity_seconds)
{
}

void
Watcher::advanceStampLocked(SimTime now)
{
    ADRIAS_INVARIANT(now > lastStamp,
                     "watcher sample at t=" + std::to_string(now) +
                         " not after t=" + std::to_string(lastStamp));
    lastStamp = now;
}

void
Watcher::recordLocked(const CounterSample &sample)
{
    CounterSample accepted = sample;
    std::size_t repaired = 0;
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
        if (std::isfinite(accepted[e]) && accepted[e] >= 0.0) {
            lastGood[e] = accepted[e];
            continue;
        }
        accepted[e] = lastGood[e]; // zero before any good value
        ++repaired;
    }
    if (repaired > 0) {
        ++state.samplesRepaired;
        state.eventsRepaired += repaired;
    }
    haveGood = true;
    ++state.samplesAccepted;
    state.stalenessSec = 0;
    history.push(accepted);
}

void
Watcher::record(const CounterSample &sample)
{
    MutexLock lock(mu);
    recordLocked(sample);
}

void
Watcher::record(const CounterSample &sample, SimTime now)
{
    MutexLock lock(mu);
    advanceStampLocked(now);
    recordLocked(sample);
}

void
Watcher::recordDroppedLocked()
{
    ++state.samplesDropped;
    ++state.stalenessSec;
    state.maxStalenessSec =
        std::max(state.maxStalenessSec, state.stalenessSec);
    // Hold the last value so window indexing stays one-per-second.
    history.push(haveGood ? lastGood : CounterSample{});
}

void
Watcher::recordDropped()
{
    MutexLock lock(mu);
    recordDroppedLocked();
}

void
Watcher::recordDropped(SimTime now)
{
    MutexLock lock(mu);
    advanceStampLocked(now);
    recordDroppedLocked();
}

WatcherHealth
Watcher::health() const
{
    MutexLock lock(mu);
    return state;
}

std::size_t
Watcher::sampleCount() const
{
    MutexLock lock(mu);
    return history.size();
}

bool
Watcher::hasWindow(std::size_t window_seconds) const
{
    MutexLock lock(mu);
    return history.size() >= window_seconds;
}

void
Watcher::clear()
{
    MutexLock lock(mu);
    history.clear();
    state = WatcherHealth{};
    lastGood = CounterSample{};
    haveGood = false;
    lastStamp = kNoStamp;
}

std::vector<ml::Matrix>
Watcher::binnedWindow(std::size_t window_seconds, std::size_t bins) const
{
    if (bins == 0 || window_seconds == 0)
        fatal("Watcher::binnedWindow needs positive window and bins");

    MutexLock lock(mu);
    if (history.empty())
        fatal("Watcher::binnedWindow with no samples recorded");

    // Assemble the trailing window, left-padding a cold start with the
    // oldest available sample.
    std::vector<CounterSample> window(window_seconds);
    const std::size_t have = std::min(history.size(), window_seconds);
    const std::size_t pad = window_seconds - have;
    for (std::size_t i = 0; i < pad; ++i)
        window[i] = history.at(0);
    for (std::size_t i = 0; i < have; ++i)
        window[pad + i] = history.at(history.size() - have + i);

    return binSpan(window, 0, window.size(), bins);
}

CounterSample
Watcher::meanOverTrailing(std::size_t window_seconds) const
{
    MutexLock lock(mu);
    if (history.empty())
        fatal("Watcher::meanOverTrailing with no samples");
    const std::size_t have = std::min(history.size(), window_seconds);
    CounterSample mean{};
    for (std::size_t i = history.size() - have; i < history.size(); ++i) {
        const CounterSample &s = history.at(i);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            mean[e] += s[e];
    }
    for (double &v : mean)
        v /= static_cast<double>(have);
    return mean;
}

CounterSample
Watcher::latest() const
{
    MutexLock lock(mu);
    if (history.empty())
        panic("Watcher::latest with no samples");
    return history.newest();
}

CounterSample
meanOverSpan(const std::vector<CounterSample> &trace, std::size_t begin,
             std::size_t end)
{
    if (begin >= end || end > trace.size())
        panic("meanOverSpan: invalid span");
    CounterSample mean{};
    for (std::size_t i = begin; i < end; ++i)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            mean[e] += trace[i][e];
    for (double &v : mean)
        v /= static_cast<double>(end - begin);
    return mean;
}

std::vector<ml::Matrix>
binSpan(const std::vector<CounterSample> &trace, std::size_t begin,
        std::size_t end, std::size_t bins)
{
    if (begin >= end || end > trace.size())
        panic("binSpan: invalid span");
    if (bins == 0)
        fatal("binSpan: need at least one bin");

    const std::size_t span = end - begin;
    std::vector<ml::Matrix> sequence;
    sequence.reserve(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        // Partition the span as evenly as integer arithmetic allows.
        const std::size_t lo = begin + b * span / bins;
        std::size_t hi = begin + (b + 1) * span / bins;
        hi = std::max(hi, lo + 1);
        const CounterSample mean =
            meanOverSpan(trace, lo, std::min(hi, end));
        ml::Matrix step(1, kNumPerfEvents);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            step.at(0, e) = mean[e];
        sequence.push_back(std::move(step));
    }
    return sequence;
}

} // namespace adrias::telemetry
