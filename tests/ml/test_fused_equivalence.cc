/**
 * @file
 * Equivalence suite for the fused LSTM/GEMM kernels (DESIGN.md §11):
 * the fused hot path must produce results bitwise identical to the
 * retained reference formulation — forward outputs, backward
 * gradients, and weights after whole training loops — over ragged
 * shapes and at every thread count, and the inference fast-path must
 * match training-mode outputs exactly while skipping the caches.
 */

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/threadpool.hh"
#include "ml/lstm.hh"
#include "ml/matrix.hh"
#include "ml/simd.hh"

namespace
{

using adrias::Rng;
using adrias::ScopedThreadOverride;
using adrias::ml::Lstm;
using adrias::ml::lstmFusedKernels;
using adrias::ml::Matrix;
using adrias::ml::MatrixParallelConfig;
using adrias::ml::matrixParallelConfig;
using adrias::ml::Param;
using adrias::ml::setLstmFusedKernels;
using adrias::ml::setMatrixParallelConfig;

/**
 * Saves and restores the global kernel knobs, and forces every kernel
 * onto the parallel path so thread-count sweeps mean something.
 */
class FusedEquivalenceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        savedConfig = matrixParallelConfig();
        savedFused = lstmFusedKernels();
        savedTier = adrias::ml::kernelTier();
        setMatrixParallelConfig({0, 0});
        // This suite IS the bitwise scalar contract — it must hold
        // even when the whole test run is launched under
        // ADRIAS_KERNEL_TIER=vector (the vector tier's tolerance
        // contract is ctest -L simd, not this file).
        adrias::ml::setKernelTier(adrias::ml::KernelTier::Scalar);
    }

    void
    TearDown() override
    {
        setMatrixParallelConfig(savedConfig);
        setLstmFusedKernels(savedFused);
        adrias::ml::setKernelTier(savedTier);
    }

    MatrixParallelConfig savedConfig;
    bool savedFused = true;
    adrias::ml::KernelTier savedTier = adrias::ml::KernelTier::Scalar;
};

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    for (double &value : m.raw())
        value = rng.uniform(-2.0, 2.0);
    // Sprinkle exact zeros so the GEMM zero-skip branch is exercised.
    for (double &value : m.raw())
        if (rng.bernoulli(0.1))
            value = 0.0;
    return m;
}

std::vector<Matrix>
randomSequence(Rng &rng, std::size_t steps, std::size_t batch,
               std::size_t input)
{
    std::vector<Matrix> sequence;
    sequence.reserve(steps);
    for (std::size_t t = 0; t < steps; ++t)
        sequence.push_back(randomMatrix(rng, batch, input));
    return sequence;
}

void
expectIdentical(const Matrix &expected, const Matrix &actual,
                const char *what)
{
    ASSERT_EQ(expected.rows(), actual.rows()) << what;
    ASSERT_EQ(expected.cols(), actual.cols()) << what;
    // Bitwise, not approximate: the contract is exact equality.
    ASSERT_EQ(expected.raw(), actual.raw()) << what;
}

void
expectIdentical(const std::vector<Matrix> &expected,
                const std::vector<Matrix> &actual, const char *what)
{
    ASSERT_EQ(expected.size(), actual.size()) << what;
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(expected[i], actual[i], what);
}

std::vector<unsigned>
threadCounts()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return {1u, 2u, 7u, hw};
}

/** Ragged sweep: degenerate, small, and training-realistic shapes. */
struct LstmShape
{
    std::size_t steps, batch, input, hidden;
};

constexpr LstmShape kShapes[] = {
    {1, 1, 1, 1},   {3, 2, 5, 4},   {5, 7, 3, 13},
    {2, 1, 9, 6},   {12, 32, 7, 24}, {4, 3, 16, 5},
};

/** Fresh layer with weights deterministic in the seed. */
Lstm
makeLstm(const LstmShape &shape, unsigned seed)
{
    Rng rng(seed);
    return Lstm(shape.input, shape.hidden, rng);
}

TEST_F(FusedEquivalenceTest, ForwardOutputsBitwiseEqual)
{
    Rng rng(0xFA57ED);
    for (const auto &shape : kShapes) {
        const auto sequence =
            randomSequence(rng, shape.steps, shape.batch, shape.input);

        std::vector<Matrix> reference;
        {
            ScopedThreadOverride serial(1);
            setLstmFusedKernels(false);
            Lstm lstm = makeLstm(shape, 7001);
            reference = lstm.forwardSequence(sequence);
        }

        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            for (bool fused : {true, false}) {
                setLstmFusedKernels(fused);
                Lstm lstm = makeLstm(shape, 7001);
                expectIdentical(reference,
                                lstm.forwardSequence(sequence),
                                fused ? "fused forward"
                                      : "reference forward");
            }
        }
    }
}

TEST_F(FusedEquivalenceTest, BackwardGradientsBitwiseEqual)
{
    Rng rng(0xBACC1);
    for (const auto &shape : kShapes) {
        const auto sequence =
            randomSequence(rng, shape.steps, shape.batch, shape.input);
        const auto grad_hidden =
            randomSequence(rng, shape.steps, shape.batch, shape.hidden);

        std::vector<Matrix> ref_inputs;
        std::vector<Matrix> ref_grads;
        {
            ScopedThreadOverride serial(1);
            setLstmFusedKernels(false);
            Lstm lstm = makeLstm(shape, 7002);
            lstm.forwardSequence(sequence);
            ref_inputs = lstm.backwardSequence(grad_hidden);
            for (Param *param : lstm.params())
                ref_grads.push_back(param->grad);
        }

        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            for (bool fused : {true, false}) {
                setLstmFusedKernels(fused);
                Lstm lstm = makeLstm(shape, 7002);
                lstm.forwardSequence(sequence);
                expectIdentical(ref_inputs,
                                lstm.backwardSequence(grad_hidden),
                                "grad inputs");
                const auto params = lstm.params();
                ASSERT_EQ(params.size(), ref_grads.size());
                for (std::size_t i = 0; i < params.size(); ++i)
                    expectIdentical(ref_grads[i], params[i]->grad,
                                    "param grad");
            }
        }
    }
}

TEST_F(FusedEquivalenceTest, TrainedWeightsBitwiseEqual)
{
    // A whole training loop — repeated forward/backward/SGD — must
    // leave identical weights: any divergence anywhere would compound.
    const LstmShape shape{6, 5, 4, 9};
    constexpr int kSteps = 8;
    constexpr double kLr = 0.05;

    auto train = [&](bool fused, unsigned threads) {
        ScopedThreadOverride override_(threads);
        setLstmFusedKernels(fused);
        Rng data_rng(0x7EA1);
        Lstm lstm = makeLstm(shape, 7003);
        const auto sequence = randomSequence(data_rng, shape.steps,
                                             shape.batch, shape.input);
        const auto target = randomSequence(data_rng, shape.steps,
                                           shape.batch, shape.hidden);
        for (int iter = 0; iter < kSteps; ++iter) {
            const auto outputs = lstm.forwardSequence(sequence);
            std::vector<Matrix> grad;
            grad.reserve(outputs.size());
            for (std::size_t t = 0; t < outputs.size(); ++t)
                grad.push_back(outputs[t] - target[t]);
            lstm.backwardSequence(grad);
            for (Param *param : lstm.params()) {
                param->value += param->grad * -kLr;
                param->zeroGrad();
            }
        }
        std::vector<Matrix> weights;
        for (Param *param : lstm.params())
            weights.push_back(param->value);
        return weights;
    };

    const auto reference = train(false, 1);
    for (unsigned threads : threadCounts()) {
        for (bool fused : {true, false}) {
            const auto weights = train(fused, threads);
            ASSERT_EQ(reference.size(), weights.size());
            for (std::size_t i = 0; i < weights.size(); ++i)
                expectIdentical(reference[i], weights[i],
                                "trained weight");
        }
    }
}

TEST_F(FusedEquivalenceTest, InferenceFastPathMatchesTrainingOutputs)
{
    Rng rng(0x1FE5);
    for (const auto &shape : kShapes) {
        const auto sequence =
            randomSequence(rng, shape.steps, shape.batch, shape.input);
        for (bool fused : {true, false}) {
            setLstmFusedKernels(fused);
            Lstm lstm = makeLstm(shape, 7004);
            const auto trained = lstm.forwardSequence(sequence);
            lstm.setInference(true);
            expectIdentical(trained, lstm.forwardSequence(sequence),
                            "inference forward");
            lstm.setInference(false);
        }
    }
}

TEST_F(FusedEquivalenceTest, BackwardAfterInferenceForwardPanics)
{
    const LstmShape shape{3, 2, 4, 5};
    Rng rng(0xDEAD5);
    const auto sequence =
        randomSequence(rng, shape.steps, shape.batch, shape.input);
    const auto grad =
        randomSequence(rng, shape.steps, shape.batch, shape.hidden);
    for (bool fused : {true, false}) {
        setLstmFusedKernels(fused);
        Lstm lstm = makeLstm(shape, 7005);
        lstm.setInference(true);
        lstm.forwardSequence(sequence);
        // No caches were built, so BPTT has nothing to consume.
        EXPECT_THROW(lstm.backwardSequence(grad), std::logic_error);
    }
}

TEST_F(FusedEquivalenceTest, BlockedGemmBitwiseIdentical)
{
    // Cache-blocked tiling must not change any output bit: per output
    // element the k-accumulation order is unchanged (DESIGN.md §11).
    Rng rng(0xB10C);
    const std::size_t dims[][3] = {
        {40, 33, 29}, {7, 64, 7}, {64, 64, 64}, {1, 100, 3},
    };
    for (const auto &d : dims) {
        const Matrix a = randomMatrix(rng, d[0], d[1]);
        const Matrix b = randomMatrix(rng, d[1], d[2]);
        const Matrix at = randomMatrix(rng, d[1], d[0]);

        setMatrixParallelConfig({0, 0, 0});
        Matrix ref_mm, ref_tm;
        {
            ScopedThreadOverride serial(1);
            ref_mm = a.matmul(b);
            ref_tm = at.transposedMatmul(b);
        }
        for (std::size_t block : {4u, 16u, 256u}) {
            setMatrixParallelConfig({0, 0, block});
            for (unsigned threads : threadCounts()) {
                ScopedThreadOverride override_(threads);
                expectIdentical(ref_mm, a.matmul(b), "blocked matmul");
                expectIdentical(ref_tm, at.transposedMatmul(b),
                                "blocked transposedMatmul");
            }
        }
    }
}

TEST_F(FusedEquivalenceTest, FusedLstmUnderBlockedGemm)
{
    // The full fused layer with tiling enabled still matches the
    // unblocked reference bit for bit.
    const LstmShape shape{5, 6, 11, 17};
    Rng rng(0xB10C2);
    const auto sequence =
        randomSequence(rng, shape.steps, shape.batch, shape.input);
    const auto grad_hidden =
        randomSequence(rng, shape.steps, shape.batch, shape.hidden);

    setLstmFusedKernels(false);
    setMatrixParallelConfig({0, 0, 0});
    Lstm reference = makeLstm(shape, 7006);
    const auto ref_out = reference.forwardSequence(sequence);
    const auto ref_grad = reference.backwardSequence(grad_hidden);

    setLstmFusedKernels(true);
    setMatrixParallelConfig({0, 0, 8});
    for (unsigned threads : threadCounts()) {
        ScopedThreadOverride override_(threads);
        Lstm fused = makeLstm(shape, 7006);
        expectIdentical(ref_out, fused.forwardSequence(sequence),
                        "fused+blocked forward");
        expectIdentical(ref_grad, fused.backwardSequence(grad_hidden),
                        "fused+blocked backward");
        const auto ref_params = reference.params();
        const auto fused_params = fused.params();
        for (std::size_t i = 0; i < fused_params.size(); ++i)
            expectIdentical(ref_params[i]->grad, fused_params[i]->grad,
                            "fused+blocked param grad");
    }
}

} // namespace
