file(REMOVE_RECURSE
  "CMakeFiles/adrias_workloads.dir/spec.cc.o"
  "CMakeFiles/adrias_workloads.dir/spec.cc.o.d"
  "CMakeFiles/adrias_workloads.dir/workload.cc.o"
  "CMakeFiles/adrias_workloads.dir/workload.cc.o.d"
  "libadrias_workloads.a"
  "libadrias_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
