file(REMOVE_RECURSE
  "CMakeFiles/orchestrate_datacenter.dir/orchestrate_datacenter.cc.o"
  "CMakeFiles/orchestrate_datacenter.dir/orchestrate_datacenter.cc.o.d"
  "orchestrate_datacenter"
  "orchestrate_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestrate_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
