#include "lint/source.hh"

#include <algorithm>
#include <cctype>

namespace adrias::lint
{

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string current;
    for (char c : content) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else if (c != '\r') {
            current.push_back(c);
        }
    }
    lines.push_back(current);
    return lines;
}

std::vector<std::string>
stripCommentsAndStrings(const std::vector<std::string> &lines)
{
    enum class State
    {
        Code,
        BlockComment,
        String,
        Char,
    };

    std::vector<std::string> out;
    out.reserve(lines.size());
    State state = State::Code;

    for (const std::string &line : lines) {
        std::string stripped(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    i = line.size(); // rest of line is comment
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"') {
                    state = State::String;
                } else if (c == '\'') {
                    state = State::Char;
                } else {
                    stripped[i] = c;
                }
                break;
              case State::BlockComment:
                if (c == '*' && next == '/') {
                    state = State::Code;
                    ++i;
                }
                break;
              case State::String:
                if (c == '\\')
                    ++i; // skip escaped char
                else if (c == '"')
                    state = State::Code;
                break;
              case State::Char:
                if (c == '\\')
                    ++i;
                else if (c == '\'')
                    state = State::Code;
                break;
            }
        }
        // Unterminated string/char at EOL: treat as closed (the
        // compiler would reject it anyway).
        if (state == State::String || state == State::Char)
            state = State::Code;
        out.push_back(std::move(stripped));
    }
    return out;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::pair<std::string, std::size_t>>
identifiersIn(const std::string &line)
{
    std::vector<std::pair<std::string, std::size_t>> ids;
    std::size_t i = 0;
    while (i < line.size()) {
        if (isIdentChar(line[i]) &&
            !std::isdigit(static_cast<unsigned char>(line[i]))) {
            const std::size_t start = i;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            ids.emplace_back(line.substr(start, i - start), start);
        } else {
            ++i;
        }
    }
    return ids;
}

char
nextNonSpace(const std::string &line, std::size_t pos)
{
    while (pos < line.size()) {
        if (!std::isspace(static_cast<unsigned char>(line[pos])))
            return line[pos];
        ++pos;
    }
    return '\0';
}

std::string
trimmed(const std::string &line)
{
    std::size_t begin = 0;
    std::size_t end = line.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(line[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
        --end;
    return line.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

namespace
{

/**
 * Parse the "(a, b)" rule list right after a marker, if present.
 *
 * @return true when the marker stands alone or carries a list; fills
 *         `rules` (empty on a blanket escape).
 */
bool
parseRuleList(const std::string &raw, std::size_t after,
              std::vector<std::string> &rules)
{
    rules.clear();
    if (after < raw.size() && isIdentChar(raw[after]))
        return false; // part of a longer identifier, not a marker
    if (after >= raw.size() || raw[after] != '(')
        return true; // blanket escape
    const std::size_t close = raw.find(')', after);
    const std::string list =
        raw.substr(after + 1, close == std::string::npos
                                  ? std::string::npos
                                  : close - after - 1);
    std::string current;
    for (char c : list) {
        if (c == ',') {
            if (std::string name = trimmed(current); !name.empty())
                rules.push_back(std::move(name));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (std::string name = trimmed(current); !name.empty())
        rules.push_back(std::move(name));
    return true;
}

/** Blanket escapes match every rule; lists match exactly. */
bool
matchesRule(const std::vector<std::string> &rules, const std::string &rule)
{
    return rules.empty() ||
           std::find(rules.begin(), rules.end(), rule) != rules.end();
}

} // namespace

Suppressions::Suppressions(const std::vector<std::string> &raw_lines)
{
    std::vector<Region> open; // NOLINTBEGIN stack
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        const std::string &raw = raw_lines[i];
        std::size_t at = raw.find("NOLINT");
        while (at != std::string::npos) {
            // A marker must not be the tail of a longer identifier.
            if (at > 0 && isIdentChar(raw[at - 1])) {
                at = raw.find("NOLINT", at + 1);
                continue;
            }
            const std::size_t after = at + 6; // past "NOLINT"
            std::vector<std::string> rules;
            if (raw.compare(at, 14, "NOLINTNEXTLINE") == 0) {
                if (parseRuleList(raw, at + 14, rules))
                    markers.push_back({i, true, std::move(rules)});
                at = raw.find("NOLINT", at + 14);
            } else if (raw.compare(at, 11, "NOLINTBEGIN") == 0) {
                if (parseRuleList(raw, at + 11, rules))
                    open.push_back({i, raw_lines.size() - 1,
                                    std::move(rules)});
                at = raw.find("NOLINT", at + 11);
            } else if (raw.compare(at, 9, "NOLINTEND") == 0) {
                if (parseRuleList(raw, at + 9, rules) && !open.empty()) {
                    // Close the innermost open region; an END with a
                    // list only closes a BEGIN with the same list.
                    for (std::size_t r = open.size(); r-- > 0;) {
                        if (open[r].rules == rules) {
                            open[r].end = i;
                            regions.push_back(std::move(open[r]));
                            open.erase(open.begin() +
                                       static_cast<std::ptrdiff_t>(r));
                            break;
                        }
                    }
                }
                at = raw.find("NOLINT", at + 9);
            } else {
                if (parseRuleList(raw, after, rules))
                    markers.push_back({i, false, std::move(rules)});
                at = raw.find("NOLINT", after);
            }
        }
    }
    // Unmatched NOLINTBEGINs extend to end of file.
    for (Region &region : open)
        regions.push_back(std::move(region));
}

bool
Suppressions::suppressed(std::size_t line_index,
                         const std::string &rule) const
{
    for (const Marker &marker : markers) {
        if (!matchesRule(marker.rules, rule))
            continue;
        if (marker.nextLineOnly ? marker.line + 1 == line_index
                                : marker.line == line_index)
            return true;
    }
    for (const Region &region : regions) {
        if (line_index >= region.begin && line_index <= region.end &&
            matchesRule(region.rules, rule))
            return true;
    }
    return false;
}

} // namespace adrias::lint
