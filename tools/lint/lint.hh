/**
 * @file
 * Project lint: token/regex-level enforcement of the simulator's
 * determinism and hygiene invariants, with no libclang dependency.
 *
 * Rules (ids usable in NOLINT(<id>) / NOLINTNEXTLINE(<id>) escapes):
 *
 *   raw-rand             no std::rand/srand/random_device/mt19937/...
 *                        anywhere in src/, tests/ or bench/ — all
 *                        randomness flows through common/rng.hh so a
 *                        single seed reproduces every experiment.
 *   wall-clock           no wall-clock or CPU-clock reads (time(),
 *                        clock(), std::chrono::system_clock, ...) in
 *                        src/ or tests/; simulation time is explicit.
 *   unordered-container  no std::unordered_{map,set} in src/testbed,
 *                        src/scenario, src/core: iteration order leaks
 *                        into datasets and breaks bit-reproducibility.
 *   nodiscard-result     function declarations in src/ headers that
 *                        return Result<...> must carry [[nodiscard]]
 *                        so errors cannot be silently ignored.
 *   float-equal          no ==/!= against floating-point literals in
 *                        src/; use tolerances or ordering comparisons.
 *   iostream-include     no #include <iostream> in src/ outside
 *                        common/logging.cc — output goes through the
 *                        Logger so bench tables stay on stdout alone.
 *   raw-ofstream         no raw std::ofstream persistence in src/;
 *                        writes go through common/io/durable_file.hh.
 *   raw-thread           no std::thread/std::async (or <thread>/
 *                        <future> includes) in src/ outside
 *                        common/threadpool.* — all parallelism goes
 *                        through the deterministic ThreadPool.
 *
 * nodiscard-result covers src/ headers and, in .cc files, file-local
 * (static or anonymous-namespace) function declarations — local
 * helpers returning Result<...> must not be silently droppable either.
 *
 * Escapes: NOLINT / NOLINT(rule-a,rule-b) on the offending line,
 * NOLINTNEXTLINE(...) on the line above, or NOLINTBEGIN(rule) /
 * NOLINTEND(rule) around a region (see tools/lint/source.hh; the
 * syntax is shared with the tools/analyze passes).
 *
 * The scanner strips // and both kinds of block comments plus string
 * and character literals before matching, so prose mentioning rand()
 * or "time(" never trips a rule.  Raw string literals are not
 * understood (none exist in this tree).
 */

#ifndef ADRIAS_TOOLS_LINT_LINT_HH
#define ADRIAS_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace adrias::lint
{

/** One rule violation at a specific source line. */
struct Finding
{
    /** Normalized repo-relative path ("src/core/adrias.cc"). */
    std::string file;

    /** 1-based line number. */
    std::size_t line = 0;

    /** Rule id ("raw-rand", ...). */
    std::string rule;

    /** Human-readable explanation of what matched. */
    std::string detail;
};

/** Rule metadata for --list-rules and the self-tests. */
struct RuleInfo
{
    std::string id;
    std::string description;
};

/** @return every registered rule (stable order). */
const std::vector<RuleInfo> &rules();

/**
 * Lint one file's content.
 *
 * @param label repo-relative path with forward slashes; decides which
 *        rules apply (see the scopes in the file comment).
 * @param content full file text.
 */
std::vector<Finding> lintContent(const std::string &label,
                                 const std::string &content);

/**
 * Read and lint one file on disk.
 *
 * @param path filesystem path to read.
 * @param label repo-relative label used for rule scoping/reporting.
 */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &label);

/**
 * Recursively lint src/, tests/ and bench/ under a repo root.
 *
 * Scans *.cc and *.hh, skipping any path containing a `fixtures`
 * directory (deliberately violating lint self-test inputs).  Files are
 * visited in sorted label order so output is deterministic.
 */
std::vector<Finding> lintTree(const std::string &repo_root);

/** "src/foo.cc:12: [raw-rand] ..." */
std::string formatFinding(const Finding &finding);

} // namespace adrias::lint

#endif // ADRIAS_TOOLS_LINT_LINT_HH
