/**
 * @file
 * Deterministic fault injection for the Watcher → Predictor →
 * Orchestrator pipeline.
 *
 * A FaultSchedule lists time windows during which a fault class is
 * armed; the FaultInjector answers per-tick (or per-call) queries about
 * what actually fires.  All randomness is derived by hashing
 * (seed, kind, tick, salt), so answers are a pure function of the
 * schedule — independent of query order and repeatable across runs.
 * That property is what makes chaos scenarios byte-for-byte
 * reproducible from a single seed.
 */

#ifndef ADRIAS_FAULT_FAULT_HH
#define ADRIAS_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/io/checkpoint_annotations.hh"
#include "common/types.hh"
#include "testbed/counters.hh"

namespace adrias::fault
{

/** Classes of injectable faults, one per pipeline boundary. */
enum class FaultKind : std::uint8_t
{
    /** Remote channel degraded: bandwidth scaled by `magnitude`. */
    LinkDegrade = 0,

    /** Remote channel flapping: per-tick coin; when it fires the
     *  channel is effectively down (residual bandwidth, saturated
     *  latency). */
    LinkFlap = 1,

    /** Watcher sample lost this tick (telemetry dropout). */
    CounterDrop = 2,

    /** One counter of the sample corrupted to NaN/Inf/negative. */
    CounterCorrupt = 3,

    /** Sample replaced by the previous tick's (stale repeat). */
    CounterStale = 4,

    /** Predictor inference latency spike of `magnitude` ms. */
    PredictorLatency = 5,

    /** Predictor inference call crashes. */
    PredictorCrash = 6,
};

/** Number of fault kinds (for iteration). */
inline constexpr std::size_t kNumFaultKinds = 7;

/** @return short name of a fault kind (e.g. "link-flap"). */
std::string faultKindName(FaultKind kind);

/** One armed window of a fault class. */
struct FaultWindow
{
    FaultKind kind = FaultKind::LinkDegrade;

    /** Window start, inclusive, seconds. */
    SimTime startSec = 0;

    /** Window end, exclusive, seconds. */
    SimTime endSec = 0;

    /**
     * Kind-specific severity: bandwidth scale in (0, 1] for
     * LinkDegrade, latency in ms for PredictorLatency; unused
     * otherwise.
     */
    double magnitude = 1.0;

    /** Per-tick (or per-call) firing probability within the window. */
    double probability = 1.0;

    /**
     * Link the window targets, by topology link name (LinkDegrade /
     * LinkFlap only).  Empty targets every link.  The single-channel
     * linkStateAt(now) overload ignores names entirely (its one
     * channel stands in for every link), so legacy schedules keep
     * their exact historical behaviour.
     */
    std::string link;
};

/** A seeded set of fault windows, wired in via ScenarioConfig. */
struct FaultSchedule
{
    /** Seed of the per-tick firing decisions. */
    std::uint64_t seed = 0xad51a5ULL;

    std::vector<FaultWindow> windows;

    /** @return true when no window is armed. */
    bool empty() const { return windows.empty(); }

    /** Builder-style append. */
    FaultSchedule &
    add(const FaultWindow &window)
    {
        windows.push_back(window);
        return *this;
    }
};

/** Remote-channel state the testbed should apply this tick. */
struct LinkState
{
    /** Multiplier on the channel's effective bandwidth, (0, 1]. */
    double bwScale = 1.0;

    /** Multiplier on the channel's back-pressure latency, >= 1. */
    double latencyScale = 1.0;

    /** @return true when the link deviates from healthy. */
    bool
    faulted() const
    {
        return bwScale < 1.0 || latencyScale > 1.0;
    }
};

/** What happened to the counter sample of one tick. */
enum class CounterAction : std::uint8_t
{
    None,    ///< sample passed through untouched
    Drop,    ///< sample lost; Watcher must hold its last value
    Stale,   ///< sample silently replaced by the previous tick's
    Corrupt, ///< one event poisoned (NaN / Inf / negative)
};

/** Injection tallies, for tests and post-run reports. */
struct FaultStats
{
    std::size_t linkFaultTicks = 0;
    std::size_t samplesDropped = 0;
    std::size_t samplesStale = 0;
    std::size_t samplesCorrupted = 0;
    std::size_t predictorCrashes = 0;
    std::size_t predictorLatencySpikes = 0;

    /** @return total injected events across all classes. */
    std::size_t
    total() const
    {
        return linkFaultTicks + samplesDropped + samplesStale +
               samplesCorrupted + predictorCrashes +
               predictorLatencySpikes;
    }
};

/**
 * Executes a FaultSchedule.
 *
 * Query methods are pure functions of (schedule, arguments); the
 * injector only accumulates statistics about what the caller applied.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSchedule schedule = {});

    /** @return the schedule being executed. */
    const FaultSchedule &schedule() const { return plan; }

    /** @return true when a window of `kind` covers `now`. */
    bool armedAt(FaultKind kind, SimTime now) const;

    /**
     * @return true when `kind` actually fires at `now` — armed and the
     * deterministic per-tick coin comes up.  `salt` distinguishes
     * multiple independent draws within one tick (e.g. several
     * predictor calls).
     */
    bool firesAt(FaultKind kind, SimTime now, std::uint64_t salt = 0) const;

    /** Magnitude of the first armed window of `kind` at `now` (or the
     *  FaultWindow default when none is armed). */
    double magnitudeAt(FaultKind kind, SimTime now) const;

    /**
     * Channel state to apply this tick (degrade + flap combined).
     * Single-channel view: the paper pair's one channel stands in for
     * every link, so window link names are ignored and legacy
     * schedules keep their exact historical behaviour.
     */
    LinkState linkStateAt(SimTime now);

    /**
     * Per-link state for rack topologies: windows targeting `link` by
     * name apply alongside untargeted (empty-name) windows.  Firing
     * coins are salted by the link name, so two links covered by one
     * window flap independently while staying a pure function of
     * (seed, kind, tick, link).
     */
    LinkState linkStateAt(SimTime now, const std::string &link);

    /**
     * Apply counter-pipeline faults to this tick's sample, in priority
     * order Drop > Stale > Corrupt.
     *
     * @param sample the tick's sample, corrupted in place.
     * @param previous previous tick's observed sample (nullptr on the
     *        first tick; Stale then degrades to Drop).
     * @param now tick time.
     * @return what was done, so the caller can route the sample.
     */
    CounterAction applyCounterFaults(testbed::CounterSample &sample,
                                     const testbed::CounterSample *previous,
                                     SimTime now);

    /** @return true when an armed PredictorCrash window fires for this
     *  call. */
    bool predictorCrashAt(SimTime now, std::uint64_t call_salt);

    /**
     * Modelled inference latency for this call: `base_ms` normally,
     * the window magnitude during an armed latency-spike window.
     */
    double predictorLatencyMsAt(SimTime now, std::uint64_t call_salt,
                                double base_ms);

    /** @return injection tallies so far. */
    const FaultStats &stats() const { return counters; }

    /**
     * Serialize the accumulated tallies (the schedule itself is
     * configuration and pure queries need no state).
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore tallies saved with saveState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    FaultSchedule plan ADRIAS_NOT_CHECKPOINTED(
        "the schedule is construction-time configuration; only the "
        "tallies evolve");
    FaultStats counters;

    /** Uniform [0,1) draw, pure in (seed, kind, now, salt). */
    double roll(FaultKind kind, SimTime now, std::uint64_t salt) const;
};

} // namespace adrias::fault

#endif // ADRIAS_FAULT_FAULT_HH
