/**
 * @file
 * Shared ulp/tolerance comparison helpers (DESIGN.md §16).
 *
 * The vector kernel tier is tolerance-equivalent to the scalar oracle,
 * not bitwise — FMA contraction changes last-ulp rounding.  Every
 * equivalence suite quantifies "close" the same way through these
 * helpers instead of ad-hoc epsilons: distance in units in the last
 * place (the number of representable doubles between two values),
 * which is scale-free, plus an absolute floor for comparisons around
 * zero where ulp distance explodes (1e-300 vs 0.0 is ~2^62 ulps).
 */

#ifndef ADRIAS_COMMON_FLOAT_COMPARE_HH
#define ADRIAS_COMMON_FLOAT_COMPARE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace adrias
{

/**
 * Map a double onto the integer number line so that consecutive
 * representable doubles map to consecutive integers and ordering is
 * preserved (the standard sign-magnitude to two's-complement fold:
 * negative doubles reflect below zero, so -0.0 maps next to +0.0).
 * NaN inputs are the caller's problem — see ulpDistance.
 */
inline std::int64_t
floatOrdinal(double x)
{
    std::int64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(x));
    std::memcpy(&bits, &x, sizeof(bits));
    if (bits < 0)
        bits = std::numeric_limits<std::int64_t>::min() - bits;
    return bits;
}

/**
 * Distance between two doubles in units in the last place: how many
 * representable doubles lie between them (0 when identical; 1 for
 * adjacent values; +0.0 and -0.0 are 0 apart).  NaN on either side —
 * or an infinity on exactly one side — is maximally distant
 * (int64 max), so naive threshold checks reject it.
 */
inline std::uint64_t
ulpDistance(double a, double b)
{
    constexpr auto kFar =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    if (std::isnan(a) || std::isnan(b))
        return kFar;
    if (std::isinf(a) || std::isinf(b)) {
        // Same infinity is identical; anything else is maximally far
        // (the ordinal gap from a finite value to inf is meaningless).
        return a == b ? 0 : kFar; // NOLINT(float-equal)
    }
    const std::int64_t oa = floatOrdinal(a);
    const std::int64_t ob = floatOrdinal(b);
    // Ordinals of finite doubles are < 2^63 - 1 apart in magnitude
    // only pairwise; compute the difference in unsigned space to
    // avoid signed overflow for opposite-sign pairs.
    const auto ua = static_cast<std::uint64_t>(oa);
    const auto ub = static_cast<std::uint64_t>(ob);
    return oa >= ob ? ua - ub : ub - ua;
}

/**
 * Tolerance check for kernel equivalence: true when a and b are within
 * maxUlps representable doubles of each other, OR within absFloor
 * absolutely (rescues comparisons around zero), OR both NaN (the
 * specials contract says NaN-ness must agree; payloads need not).
 */
inline bool
almostEqual(double a, double b, std::uint64_t maxUlps,
            double absFloor = 0.0)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    if (std::fabs(a - b) <= absFloor)
        return true;
    return ulpDistance(a, b) <= maxUlps;
}

/**
 * Running worst-case tracker for an equivalence sweep: feed every
 * (oracle, candidate) pair, then assert on the maxima once — failure
 * messages can then name the single worst pair instead of the first
 * pair past the threshold.
 */
struct UlpStats
{
    std::uint64_t maxUlps = 0;   ///< worst ulp distance seen
    double maxAbsDiff = 0.0;     ///< worst |a - b|
    double worstA = 0.0;         ///< oracle side of the worst pair
    double worstB = 0.0;         ///< candidate side of the worst pair
    std::size_t count = 0;       ///< pairs observed
    std::size_t nanMismatch = 0; ///< pairs where NaN-ness disagreed

    void
    add(double oracle, double candidate)
    {
        ++count;
        if (std::isnan(oracle) || std::isnan(candidate)) {
            if (std::isnan(oracle) != std::isnan(candidate))
                ++nanMismatch;
            return;
        }
        const std::uint64_t ulps = ulpDistance(oracle, candidate);
        if (ulps > maxUlps) {
            maxUlps = ulps;
            worstA = oracle;
            worstB = candidate;
        }
        maxAbsDiff =
            std::max(maxAbsDiff, std::fabs(oracle - candidate));
    }

    /** True when every pair agreed within the tolerance. */
    bool
    within(std::uint64_t ulpBound) const
    {
        return nanMismatch == 0 && maxUlps <= ulpBound;
    }
};

} // namespace adrias

#endif // ADRIAS_COMMON_FLOAT_COMPARE_HH
