/**
 * @file
 * Characterization study (paper §IV in miniature): explore how an
 * application of your choice behaves on the disaggregated testbed
 * under configurable interference.
 *
 * Usage:  ./build/examples/characterization [app] [ibench-kind] [count]
 *   app          any of the 17 Spark names, "redis" or "memcached"
 *                (default: kmeans)
 *   ibench-kind  cpu | l2 | l3 | memBw (default: memBw)
 *   count        number of trashers (default: 8)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/adrias.hh"

using namespace adrias;

namespace
{

const workloads::WorkloadSpec &
findSpec(const std::string &name)
{
    if (name == "redis")
        return workloads::redisSpec();
    if (name == "memcached")
        return workloads::memcachedSpec();
    return workloads::sparkBenchmark(name);
}

workloads::IBenchKind
findKind(const std::string &name)
{
    for (auto kind :
         {workloads::IBenchKind::Cpu, workloads::IBenchKind::L2,
          workloads::IBenchKind::L3, workloads::IBenchKind::MemBw})
        if (toString(kind) == name)
            return kind;
    fatal("unknown iBench kind: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "kmeans";
    const std::string kind_name = argc > 2 ? argv[2] : "memBw";
    const int trashers = argc > 3 ? std::atoi(argv[3]) : 8;

    const auto &spec = findSpec(app_name);
    const auto kind = findKind(kind_name);

    std::cout << "Characterizing '" << spec.name << "' under "
              << trashers << " x ibench-" << kind_name
              << " trashers\n\n";

    TextTable table({"placement", "slowdown", "hit rate", "achieved GB/s",
                     "pool latency (ns)", "channel (cycles)"});
    for (MemoryMode mode : {MemoryMode::Local, MemoryMode::Remote}) {
        testbed::Testbed bed;
        bed.setNoise(0.0);
        std::vector<testbed::LoadDescriptor> loads;
        loads.push_back(spec.toLoad(0, mode));
        for (int i = 1; i <= trashers; ++i)
            loads.push_back(workloads::ibenchSpec(kind).toLoad(
                static_cast<DeploymentId>(i), mode));
        const auto tick = bed.tick(loads);
        const auto &outcome = tick.outcomes.at(0);
        table.addRow(toString(mode),
                     {outcome.slowdown, outcome.hitRate,
                      outcome.achievedGBps, outcome.latencyNs,
                      tick.channelLatencyCycles},
                     3);
    }
    std::cout << table.toString();

    // Full-run comparison including completion times / tail latency.
    std::cout << "\nFull-run comparison (trashers kept alive "
                 "throughout):\n";
    for (MemoryMode mode : {MemoryMode::Local, MemoryMode::Remote}) {
        testbed::Testbed bed;
        bed.setNoise(0.0);
        workloads::WorkloadInstance app(0, spec, mode, 0, 11);
        std::vector<workloads::WorkloadInstance> noise;
        for (int i = 1; i <= trashers; ++i)
            noise.emplace_back(static_cast<DeploymentId>(i),
                               workloads::ibenchSpec(kind), mode, 0,
                               static_cast<std::uint64_t>(100 + i));
        SimTime now = 0;
        while (!app.finished() && now < 3600) {
            std::vector<testbed::LoadDescriptor> loads{app.load()};
            for (auto &trasher : noise)
                loads.push_back(trasher.load());
            const auto tick = bed.tick(loads);
            app.advance(tick.outcomes.at(0), now + 1);
            // Trashers respawn forever: reset them when they expire.
            for (std::size_t i = 0; i < noise.size(); ++i) {
                noise[i].advance(tick.outcomes.at(i + 1), now + 1);
                if (noise[i].finished()) {
                    noise[i] = workloads::WorkloadInstance(
                        noise[i].id(), workloads::ibenchSpec(kind), mode,
                        now + 1,
                        static_cast<std::uint64_t>(200 + i));
                }
            }
            ++now;
        }
        std::cout << "  " << toString(mode) << ": ";
        if (spec.cls == WorkloadClass::LatencyCritical) {
            std::cout << "p99=" << formatDouble(app.tailLatencyMs(0.99), 2)
                      << " ms p99.9="
                      << formatDouble(app.tailLatencyMs(0.999), 2)
                      << " ms";
        } else {
            std::cout << "execution time="
                      << formatDouble(app.executionTimeSec(), 1) << " s";
        }
        std::cout << " (mean slowdown "
                  << formatDouble(app.meanSlowdown(), 2) << ")\n";
    }
    return 0;
}
