/**
 * @file
 * DecisionService behavioral tests against a stub predictor: the four
 * decision paths (model / bootstrap / cold / fallback) pinned to the
 * paper's rules, back-pressure accounting, size-vs-deadline flushes
 * with the exclusive boundary, batch padding, drain-on-shutdown and a
 * checkpoint/restore round trip that resumes to identical decisions.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/io/binary.hh"
#include "serving/decision_service.hh"

namespace adrias::serving
{
namespace
{

/** Fixed-answer predictor: BE times and LC p99 set per test. */
class StubPredictor : public models::PredictorBase
{
  public:
    double localTime = 10.0;
    double remoteTime = 10.0;
    double lcP99 = 1.0;
    bool isTrained = true;
    bool throwOnPredict = false;

    /** Widths of every batched call, in call order. */
    mutable std::vector<std::size_t> batchWidths;

    ml::Matrix
    predictSystemState(const telemetry::Watcher &) const override
    {
        return ml::Matrix(1, 1);
    }

    double
    predictPerformance(WorkloadClass cls,
                       const std::vector<ml::Matrix> &,
                       const std::vector<ml::Matrix> &,
                       MemoryMode mode) const override
    {
        if (throwOnPredict)
            throw models::PredictionUnavailable("stub predictor down");
        if (cls == WorkloadClass::BestEffort)
            return mode == MemoryMode::Local ? localTime : remoteTime;
        return lcP99;
    }

    std::vector<double>
    predictPerformanceBatch(
        WorkloadClass cls,
        const std::vector<PerfQuery> &queries) const override
    {
        batchWidths.push_back(queries.size());
        return PredictorBase::predictPerformanceBatch(cls, queries);
    }

    bool trained() const override { return isTrained; }
};

/** One warm (non-empty) window per shard. */
EpochSnapshot
warmSnapshot(std::size_t shards, SimTime now = 0)
{
    EpochSnapshot snapshot;
    snapshot.takenAt = now;
    std::vector<ml::Matrix> window(3, ml::Matrix(1, 2));
    snapshot.shardWindows.assign(shards, window);
    return snapshot;
}

PlacementRequest
makeRequest(DeploymentId id, const std::string &app, WorkloadClass cls,
            std::size_t shards, SimTime now, SimTime deadline)
{
    PlacementRequest request;
    request.id = id;
    request.app = app;
    request.cls = cls;
    request.shard = static_cast<std::size_t>(id) % shards;
    request.submitted = now;
    request.deadline = deadline;
    return request;
}

class DecisionServiceTest : public ::testing::Test
{
  protected:
    DecisionServiceTest()
    {
        signatures.put("known-be", {ml::Matrix(1, 2)});
        signatures.put("known-lc", {ml::Matrix(1, 2)});
    }

    DecisionService
    makeService(core::AdriasConfig policy = {},
                DecisionServiceConfig config = {})
    {
        return DecisionService(stub, signatures, policy, config);
    }

    StubPredictor stub;
    scenario::SignatureStore signatures;
};

TEST_F(DecisionServiceTest, ValidatesConfiguration)
{
    DecisionServiceConfig config;
    config.shards = 0;
    EXPECT_THROW(makeService({}, config), std::runtime_error);
    config = {};
    config.queueCapacity = 0;
    EXPECT_THROW(makeService({}, config), std::runtime_error);
    config = {};
    config.batchSize = 0;
    EXPECT_THROW(makeService({}, config), std::runtime_error);

    stub.isTrained = false;
    EXPECT_THROW(makeService(), std::runtime_error);
}

TEST_F(DecisionServiceTest, UnknownAppBootstrapsOnRemote)
{
    DecisionService service = makeService();
    service.beginEpoch(warmSnapshot(service.config().shards));
    ASSERT_TRUE(service.submit(makeRequest(
        1, "never-seen", WorkloadClass::BestEffort,
        service.config().shards, 0, 100)));
    const auto decisions = service.drain(0);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].mode, MemoryMode::Remote);
    EXPECT_EQ(decisions[0].path, DecisionPath::Bootstrap);
    EXPECT_EQ(toString(decisions[0].path), "bootstrap");
    EXPECT_EQ(service.stats().bootstrapDecisions, 1u);
}

TEST_F(DecisionServiceTest, ColdShardPlacesLocal)
{
    DecisionService service = makeService();
    EpochSnapshot snapshot = warmSnapshot(service.config().shards);
    snapshot.shardWindows[1].clear(); // shard 1 has no telemetry yet
    service.beginEpoch(std::move(snapshot));
    ASSERT_TRUE(service.submit(makeRequest(
        1, "known-be", WorkloadClass::BestEffort,
        service.config().shards, 0, 100)));
    const auto decisions = service.drain(0);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].mode, MemoryMode::Local);
    EXPECT_EQ(decisions[0].path, DecisionPath::Cold);
    EXPECT_EQ(service.stats().coldDecisions, 1u);
}

TEST_F(DecisionServiceTest, BestEffortFollowsBetaRule)
{
    core::AdriasConfig policy;
    policy.beta = 0.8;
    // t_local < beta * t_remote -> local.
    stub.localTime = 7.0;
    stub.remoteTime = 10.0;
    {
        DecisionService service = makeService(policy);
        service.beginEpoch(warmSnapshot(service.config().shards));
        ASSERT_TRUE(service.submit(makeRequest(
            1, "known-be", WorkloadClass::BestEffort,
            service.config().shards, 0, 100)));
        const auto decisions = service.drain(0);
        ASSERT_EQ(decisions.size(), 1u);
        EXPECT_EQ(decisions[0].mode, MemoryMode::Local);
        EXPECT_EQ(decisions[0].path, DecisionPath::Model);
    }
    // t_local == beta * t_remote -> NOT strictly better -> remote.
    stub.localTime = 8.0;
    {
        DecisionService service = makeService(policy);
        service.beginEpoch(warmSnapshot(service.config().shards));
        ASSERT_TRUE(service.submit(makeRequest(
            1, "known-be", WorkloadClass::BestEffort,
            service.config().shards, 0, 100)));
        const auto decisions = service.drain(0);
        ASSERT_EQ(decisions.size(), 1u);
        EXPECT_EQ(decisions[0].mode, MemoryMode::Remote);
    }
}

TEST_F(DecisionServiceTest, LatencyCriticalFollowsQosRule)
{
    core::AdriasConfig policy;
    policy.qosP99Ms["known-lc"] = 2.0;
    // p99_remote <= QoS -> remote is safe.
    stub.lcP99 = 2.0;
    {
        DecisionService service = makeService(policy);
        service.beginEpoch(warmSnapshot(service.config().shards));
        ASSERT_TRUE(service.submit(makeRequest(
            1, "known-lc", WorkloadClass::LatencyCritical,
            service.config().shards, 0, 100)));
        const auto decisions = service.drain(0);
        ASSERT_EQ(decisions.size(), 1u);
        EXPECT_EQ(decisions[0].mode, MemoryMode::Remote);
    }
    // p99_remote > QoS -> keep local.
    stub.lcP99 = 2.5;
    {
        DecisionService service = makeService(policy);
        service.beginEpoch(warmSnapshot(service.config().shards));
        ASSERT_TRUE(service.submit(makeRequest(
            1, "known-lc", WorkloadClass::LatencyCritical,
            service.config().shards, 0, 100)));
        const auto decisions = service.drain(0);
        ASSERT_EQ(decisions.size(), 1u);
        EXPECT_EQ(decisions[0].mode, MemoryMode::Local);
    }
}

TEST_F(DecisionServiceTest, FullQueueBackpressures)
{
    DecisionServiceConfig config;
    config.shards = 1;
    config.queueCapacity = 2;
    DecisionService service = makeService({}, config);
    service.beginEpoch(warmSnapshot(1));
    EXPECT_TRUE(service.submit(
        makeRequest(0, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    EXPECT_TRUE(service.submit(
        makeRequest(1, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    EXPECT_FALSE(service.submit(
        makeRequest(2, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    const DecisionServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.rejectedBackpressure, 1u);
    EXPECT_EQ(service.inflightCount(), 2u);
}

TEST_F(DecisionServiceTest, SizeAndDeadlineFlushesAreDistinguished)
{
    DecisionServiceConfig config;
    config.shards = 1;
    config.batchSize = 3;
    DecisionService service = makeService({}, config);
    service.beginEpoch(warmSnapshot(1));

    // Two requests, deadline 10: no flush until tick 9 (exclusive
    // deadlines: 9 is the last tick that still meets deadline 10).
    for (DeploymentId id : {0, 1})
        ASSERT_TRUE(service.submit(makeRequest(
            id, "known-be", WorkloadClass::BestEffort, 1, 0, 10)));
    EXPECT_TRUE(service.pump(0).empty());
    EXPECT_TRUE(service.pump(8).empty());
    EXPECT_EQ(service.inflightCount(), 2u);
    const auto at_nine = service.pump(9);
    ASSERT_EQ(at_nine.size(), 2u);
    EXPECT_FALSE(at_nine[0].missedDeadline);
    EXPECT_EQ(at_nine[0].latencyTicks, 9);
    EXPECT_EQ(service.stats().deadlineFlushes, 1u);
    EXPECT_EQ(service.stats().fullBatchFlushes, 0u);

    // A full batch flushes immediately, far from any deadline.
    for (DeploymentId id : {2, 3, 4})
        ASSERT_TRUE(service.submit(makeRequest(
            id, "known-be", WorkloadClass::BestEffort, 1, 20, 500)));
    const auto full = service.pump(20);
    ASSERT_EQ(full.size(), 3u);
    EXPECT_EQ(service.stats().fullBatchFlushes, 1u);
    EXPECT_EQ(service.stats().batches, 2u);
}

TEST_F(DecisionServiceTest, DecisionAtDeadlineTickIsAMiss)
{
    DecisionServiceConfig config;
    config.shards = 1;
    DecisionService service = makeService({}, config);
    service.beginEpoch(warmSnapshot(1));
    ASSERT_TRUE(service.submit(makeRequest(
        0, "known-be", WorkloadClass::BestEffort, 1, 0, 10)));
    // Forced through exactly at the deadline tick: that is a miss.
    const auto decisions = service.drain(10);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_TRUE(decisions[0].missedDeadline);
    EXPECT_EQ(service.stats().missedDeadlines, 1u);
}

TEST_F(DecisionServiceTest, PredictionFailureDegradesWholeBatch)
{
    stub.throwOnPredict = true;
    core::AdriasConfig policy; // degraded: BE remote, LC local
    DecisionServiceConfig config;
    config.shards = 1;
    DecisionService service = makeService(policy, config);
    service.beginEpoch(warmSnapshot(1));
    ASSERT_TRUE(service.submit(makeRequest(
        0, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    ASSERT_TRUE(service.submit(makeRequest(
        1, "known-lc", WorkloadClass::LatencyCritical, 1, 0, 100)));
    ASSERT_TRUE(service.submit(makeRequest(
        2, "never-seen", WorkloadClass::BestEffort, 1, 0, 100)));
    const auto decisions = service.drain(0);
    ASSERT_EQ(decisions.size(), 3u);
    EXPECT_EQ(decisions[0].path, DecisionPath::Fallback);
    EXPECT_EQ(decisions[0].mode, policy.degradedBeMode);
    EXPECT_EQ(decisions[1].path, DecisionPath::Fallback);
    EXPECT_EQ(decisions[1].mode, policy.degradedLcMode);
    // Rule-decided requests never need the model: unaffected.
    EXPECT_EQ(decisions[2].path, DecisionPath::Bootstrap);
    EXPECT_EQ(service.stats().fallbackDecisions, 2u);
}

TEST_F(DecisionServiceTest, PadsModelChunksToBatchWidth)
{
    DecisionServiceConfig config;
    config.shards = 1;
    config.batchSize = 4;
    DecisionService service = makeService({}, config);
    service.beginEpoch(warmSnapshot(1));
    // One BE request = two model rows; padded up to the b4 width.
    ASSERT_TRUE(service.submit(makeRequest(
        0, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    const auto decisions = service.drain(0);
    ASSERT_EQ(decisions.size(), 1u);
    ASSERT_EQ(stub.batchWidths.size(), 1u);
    EXPECT_EQ(stub.batchWidths[0], 4u);
    EXPECT_EQ(service.stats().paddedRows, 2u);

    // With padding disabled the chunk runs at its natural width.
    stub.batchWidths.clear();
    config.padBatches = false;
    DecisionService bare = makeService({}, config);
    bare.beginEpoch(warmSnapshot(1));
    ASSERT_TRUE(bare.submit(makeRequest(
        0, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    (void)bare.drain(0);
    ASSERT_EQ(stub.batchWidths.size(), 1u);
    EXPECT_EQ(stub.batchWidths[0], 2u);
    EXPECT_EQ(bare.stats().paddedRows, 0u);
}

TEST_F(DecisionServiceTest, DrainDecidesEverythingInFlight)
{
    DecisionServiceConfig config;
    config.shards = 3;
    config.batchSize = 8;
    DecisionService service = makeService({}, config);
    service.beginEpoch(warmSnapshot(3));
    for (DeploymentId id = 0; id < 10; ++id)
        ASSERT_TRUE(service.submit(makeRequest(
            id, "known-be", WorkloadClass::BestEffort, 3, 0, 1000)));
    EXPECT_EQ(service.inflightCount(), 10u);
    const auto decisions = service.drain(1);
    EXPECT_EQ(decisions.size(), 10u);
    EXPECT_EQ(service.inflightCount(), 0u);
    EXPECT_EQ(service.stats().decisions, 10u);
}

TEST_F(DecisionServiceTest, EpochStampsDecisionsAndAdvances)
{
    DecisionServiceConfig config;
    config.shards = 1;
    DecisionService service = makeService({}, config);
    service.beginEpoch(warmSnapshot(1));
    ASSERT_TRUE(service.submit(makeRequest(
        0, "known-be", WorkloadClass::BestEffort, 1, 0, 100)));
    const auto first = service.drain(0);
    service.beginEpoch(warmSnapshot(1, 50));
    ASSERT_TRUE(service.submit(makeRequest(
        1, "known-be", WorkloadClass::BestEffort, 1, 50, 150)));
    const auto second = service.drain(50);
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(first[0].epoch, 1u);
    EXPECT_EQ(second[0].epoch, 2u);
    EXPECT_EQ(service.stats().epochs, 2u);
}

TEST_F(DecisionServiceTest, CheckpointRestoreResumesIdenticalDecisions)
{
    core::AdriasConfig policy;
    stub.localTime = 7.0;
    stub.remoteTime = 10.0;
    DecisionServiceConfig config;
    config.shards = 2;
    config.batchSize = 8;

    const auto feed = [this, &config](DecisionService &service) {
        service.beginEpoch(warmSnapshot(config.shards));
        // Decided history, then a partial in-flight batch plus
        // still-queued requests — all three stages populated.
        for (DeploymentId id = 0; id < 3; ++id)
            ASSERT_TRUE(service.submit(makeRequest(
                id, "known-be", WorkloadClass::BestEffort,
                config.shards, 0, 50)));
        (void)service.drain(5);
        for (DeploymentId id = 3; id < 6; ++id)
            ASSERT_TRUE(service.submit(makeRequest(
                id, "known-lc", WorkloadClass::LatencyCritical,
                config.shards, 6, 60)));
        (void)service.pump(6); // batched but not due: stays in flight
        for (DeploymentId id = 6; id < 8; ++id)
            ASSERT_TRUE(service.submit(makeRequest(
                id, "never-seen", WorkloadClass::BestEffort,
                config.shards, 7, 70)));
    };

    DecisionService original(stub, signatures, policy, config);
    feed(original);
    io::BinaryWriter writer;
    original.saveState(writer);

    DecisionService restored(stub, signatures, policy, config);
    io::BinaryReader reader(writer.data());
    ASSERT_TRUE(restored.restoreState(reader).ok());

    EXPECT_EQ(restored.inflightCount(), original.inflightCount());
    // Both services must finish the run identically.
    const auto rest_of_original = original.drain(20);
    const auto rest_of_restored = restored.drain(20);
    ASSERT_EQ(rest_of_original.size(), rest_of_restored.size());
    for (std::size_t i = 0; i < rest_of_original.size(); ++i) {
        EXPECT_EQ(rest_of_original[i].id, rest_of_restored[i].id);
        EXPECT_EQ(rest_of_original[i].mode, rest_of_restored[i].mode);
        EXPECT_EQ(rest_of_original[i].path, rest_of_restored[i].path);
        EXPECT_EQ(rest_of_original[i].epoch, rest_of_restored[i].epoch);
        EXPECT_EQ(rest_of_original[i].batchSeq,
                  rest_of_restored[i].batchSeq);
        EXPECT_EQ(rest_of_original[i].latencyTicks,
                  rest_of_restored[i].latencyTicks);
    }
    const DecisionServiceStats a = original.stats();
    const DecisionServiceStats b = restored.stats();
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.missedDeadlines, b.missedDeadlines);
    EXPECT_DOUBLE_EQ(original.p99LatencyTicks(),
                     restored.p99LatencyTicks());
}

TEST_F(DecisionServiceTest, GoldenDecisionSequence)
{
    // Pinned end-to-end serving trace: 7 requests over 2 shards with a
    // b3 assembler produce exactly this batch composition (shard-order
    // drain: even ids then odd ids) and these decisions.  Any change
    // to drain order, batching or the decision rules shows up here.
    core::AdriasConfig policy;
    policy.beta = 0.8;
    stub.localTime = 7.0;  // 7 < 0.8 * 10: BE goes local
    stub.remoteTime = 10.0;
    stub.lcP99 = 1.0; // == default QoS 1.0: remote is (just) safe
    DecisionServiceConfig config;
    config.shards = 2;
    config.batchSize = 3;
    DecisionService service = makeService(policy, config);
    service.beginEpoch(warmSnapshot(2));

    const char *apps[] = {"known-be", "known-lc", "never-seen"};
    const WorkloadClass classes[] = {WorkloadClass::BestEffort,
                                     WorkloadClass::LatencyCritical,
                                     WorkloadClass::BestEffort};
    for (DeploymentId id = 0; id < 7; ++id)
        ASSERT_TRUE(service.submit(makeRequest(id, apps[id % 3],
                                               classes[id % 3], 2, 0,
                                               20)));

    std::vector<PlacementDecision> decisions = service.pump(0);
    ASSERT_EQ(decisions.size(), 6u); // two full b3 batches
    const std::vector<PlacementDecision> tail = service.pump(19);
    ASSERT_EQ(tail.size(), 1u); // deadline-flushed remainder
    decisions.insert(decisions.end(), tail.begin(), tail.end());

    struct Expected
    {
        DeploymentId id;
        MemoryMode mode;
        DecisionPath path;
        std::uint64_t batchSeq;
    };
    const Expected golden[] = {
        {0, MemoryMode::Local, DecisionPath::Model, 1},
        {2, MemoryMode::Remote, DecisionPath::Bootstrap, 1},
        {4, MemoryMode::Remote, DecisionPath::Model, 1},
        {6, MemoryMode::Local, DecisionPath::Model, 2},
        {1, MemoryMode::Remote, DecisionPath::Model, 2},
        {3, MemoryMode::Local, DecisionPath::Model, 2},
        {5, MemoryMode::Remote, DecisionPath::Bootstrap, 3},
    };
    ASSERT_EQ(decisions.size(), std::size(golden));
    for (std::size_t i = 0; i < std::size(golden); ++i) {
        EXPECT_EQ(decisions[i].id, golden[i].id) << "row " << i;
        EXPECT_EQ(decisions[i].mode, golden[i].mode) << "row " << i;
        EXPECT_EQ(decisions[i].path, golden[i].path) << "row " << i;
        EXPECT_EQ(decisions[i].batchSeq, golden[i].batchSeq)
            << "row " << i;
        EXPECT_EQ(decisions[i].epoch, 1u);
    }
    EXPECT_EQ(service.stats().fullBatchFlushes, 2u);
    EXPECT_EQ(service.stats().deadlineFlushes, 1u);
}

TEST_F(DecisionServiceTest, RestoreRejectsShardMismatch)
{
    DecisionServiceConfig config;
    config.shards = 2;
    DecisionService original(stub, signatures, {}, config);
    original.beginEpoch(warmSnapshot(2));
    io::BinaryWriter writer;
    original.saveState(writer);

    DecisionServiceConfig other = config;
    other.shards = 3;
    DecisionService mismatched(stub, signatures, {}, other);
    io::BinaryReader reader(writer.data());
    EXPECT_FALSE(mismatched.restoreState(reader).ok());
}

} // namespace
} // namespace adrias::serving
