file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_correlation.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_correlation.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_ewma.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_ewma.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_online_stats.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_online_stats.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_percentile.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_percentile.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_regression_metrics.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_regression_metrics.cc.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
