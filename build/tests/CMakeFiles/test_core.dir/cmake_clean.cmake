file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_cluster_orchestrator.cc.o"
  "CMakeFiles/test_core.dir/core/test_cluster_orchestrator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_decision_rules.cc.o"
  "CMakeFiles/test_core.dir/core/test_decision_rules.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_orchestrator.cc.o"
  "CMakeFiles/test_core.dir/core/test_orchestrator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime_migrator.cc.o"
  "CMakeFiles/test_core.dir/core/test_runtime_migrator.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
