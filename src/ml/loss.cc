#include "ml/loss.hh"

#include <cmath>

#include "common/logging.hh"

namespace adrias::ml
{

double
mseLoss(const Matrix &prediction, const Matrix &target, Matrix *grad)
{
    if (prediction.rows() != target.rows() ||
        prediction.cols() != target.cols()) {
        panic("mseLoss shape mismatch: " + prediction.shape() + " vs " +
              target.shape());
    }
    const auto n = static_cast<double>(prediction.size());
    double total = 0.0;
    if (grad)
        *grad = Matrix(prediction.rows(), prediction.cols());
    for (std::size_t i = 0; i < prediction.size(); ++i) {
        const double diff = prediction.raw()[i] - target.raw()[i];
        total += diff * diff;
        if (grad)
            grad->raw()[i] = 2.0 * diff / n;
    }
    return total / n;
}

double
huberLoss(const Matrix &prediction, const Matrix &target, double delta,
          Matrix *grad)
{
    if (prediction.rows() != target.rows() ||
        prediction.cols() != target.cols()) {
        panic("huberLoss shape mismatch");
    }
    if (delta <= 0.0)
        fatal("huberLoss delta must be positive");
    const auto n = static_cast<double>(prediction.size());
    double total = 0.0;
    if (grad)
        *grad = Matrix(prediction.rows(), prediction.cols());
    for (std::size_t i = 0; i < prediction.size(); ++i) {
        const double diff = prediction.raw()[i] - target.raw()[i];
        const double abs_diff = std::fabs(diff);
        if (abs_diff <= delta) {
            total += 0.5 * diff * diff;
            if (grad)
                grad->raw()[i] = diff / n;
        } else {
            total += delta * (abs_diff - 0.5 * delta);
            if (grad)
                grad->raw()[i] = delta * (diff > 0.0 ? 1.0 : -1.0) / n;
        }
    }
    return total / n;
}

} // namespace adrias::ml
