/**
 * @file
 * Fig. 8 — Representative deployment scenarios: concurrent-application
 * count and monitored metrics over time for heavy {5,20}, moderate
 * {5,40} and relaxed {5,60} arrival intervals.
 *
 * Prints a down-sampled series per scenario plus summary statistics,
 * and writes the full series to CSV for plotting.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/online_stats.hh"

namespace
{

using namespace adrias;

void
traceScenario(SimTime spawn_max, const std::string &label)
{
    scenario::ScenarioConfig config;
    config.durationSec = bench::envInt("ADRIAS_BENCH_DURATION", 1800);
    config.spawnMinSec = 5;
    config.spawnMaxSec = spawn_max;
    config.seed = 800 + static_cast<std::uint64_t>(spawn_max);
    scenario::ScenarioRunner runner(config);
    scenario::RandomPlacement policy(900);
    const auto result = runner.run(policy);

    stats::OnlineStats concurrency;
    for (int c : result.concurrency)
        concurrency.add(c);

    std::cout << "\n--- scenario {5," << spawn_max << "} (" << label
              << ") ---\n";
    std::cout << "concurrency: mean="
              << formatDouble(concurrency.mean(), 1)
              << " max=" << formatDouble(concurrency.max(), 0)
              << "  completions=" << result.records.size()
              << "  channel traffic="
              << formatDouble(result.totalRemoteTrafficGB, 1) << " GB\n";

    TextTable table({"t (s)", "apps", "LLC_mis (M/s)", "MEM_ld (GB/s)",
                     "RMT_rx (M/s)", "CHAN_lat (cyc)"});
    const std::size_t stride = result.trace.size() / 12;
    for (std::size_t t = 0; t < result.trace.size(); t += stride) {
        const auto &c = result.trace[t];
        table.addRow(
            std::to_string(t),
            {static_cast<double>(result.concurrency[t]),
             c[static_cast<std::size_t>(testbed::PerfEvent::LlcMisses)],
             c[static_cast<std::size_t>(testbed::PerfEvent::MemLoads)],
             c[static_cast<std::size_t>(testbed::PerfEvent::RemoteRx)],
             c[static_cast<std::size_t>(testbed::PerfEvent::ChannelLat)]},
            1);
    }
    std::cout << table.toString();

    CsvWriter csv(bench::outputPath("fig08_trace_5_" +
                                    std::to_string(spawn_max) + ".csv"));
    std::vector<std::string> header{"t", "apps"};
    for (auto event : testbed::allPerfEvents())
        header.push_back(perfEventName(event));
    csv.writeRow(header);
    for (std::size_t t = 0; t < result.trace.size(); ++t) {
        std::vector<double> row{static_cast<double>(
            result.concurrency[t])};
        for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e)
            row.push_back(result.trace[t][e]);
        csv.writeRow(std::to_string(t), row);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromArgs(argc, argv);
    bench::banner("Fig. 8 — scenario traces across arrival intensities",
                  "heavier arrival rates produce more concurrent apps "
                  "and busier counters; wide phase variety");
    traceScenario(20, "heavy");
    traceScenario(40, "moderate");
    traceScenario(60, "relaxed");
    std::cout << "\nFull per-second series written to "
              << bench::outputPath("fig08_trace_5_{20,40,60}.csv") << "\n";

    const std::string obs_report = obs::finishRun();
    if (!obs_report.empty())
        std::cout << "\nObservability summary:\n" << obs_report;
    return 0;
}
