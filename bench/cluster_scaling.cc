/**
 * @file
 * Extension (§VII) — cluster-level Adrias: per-node Watchers feeding
 * the shared Predictor, centralized (node, mode) decisions with
 * iso-QoS tie-breaking.  No paper figure exists for this; the paper
 * describes the design and we measure it: Adrias-cluster vs random and
 * least-loaded-local baselines across cluster sizes.
 *
 * A second section runs the same arrival stream on shared M×N rack
 * topologies (per-link contention, capacity-backed remote placement)
 * and emits BENCH_topology.json for the perf-regression gate
 * (tools/bench_compare against bench/baselines/BENCH_topology.json).
 */

#include <iostream>

#include "bench/common.hh"
#include "bench/microbench.hh"
#include "common/threadpool.hh"
#include "core/schedulers.hh"
#include "testbed/rack.hh"
#include "testbed/topology.hh"

namespace
{

using namespace adrias;

struct Report
{
    double be_median = 0.0;
    double be_p95 = 0.0;
    std::size_t completed = 0;
    std::size_t offloads = 0;
    double traffic_gb = 0.0;
};

Report
evaluate(scenario::ClusterPolicy &policy, std::size_t nodes,
         SimTime duration)
{
    scenario::ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 3;
    config.spawnMaxSec = 10; // congested stream: a single node drowns
    config.seed = 7100;
    config.maxConcurrent = 20;
    scenario::ClusterScenarioRunner runner(nodes, config);
    const auto result = runner.run(policy);

    Report report;
    report.traffic_gb = result.totalRemoteTrafficGB;
    std::vector<double> times;
    for (const auto &entry : result.allRecords()) {
        if (entry.record->cls == WorkloadClass::Interference)
            continue;
        ++report.completed;
        report.offloads += entry.record->mode == MemoryMode::Remote;
        if (entry.record->cls == WorkloadClass::BestEffort)
            times.push_back(entry.record->execTimeSec);
    }
    report.be_median = stats::quantile(times, 0.5);
    report.be_p95 = stats::quantile(times, 0.95);
    return report;
}

struct RackReport
{
    Report base;
    double delivered_gb = 0.0;
    std::size_t dropped = 0;
    std::size_t fallbacks = 0;
};

RackReport
evaluateRack(scenario::ClusterPolicy &policy, const std::string &topo,
             SimTime duration)
{
    scenario::ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 3;
    config.spawnMaxSec = 10;
    config.seed = 7100;
    config.maxConcurrent = 20;
    config.topology = topo;
    scenario::ClusterScenarioRunner runner(
        testbed::topologyByName(topo), config);
    const auto result = runner.run(policy);

    RackReport report;
    report.base.traffic_gb = result.totalRemoteTrafficGB;
    report.dropped = result.droppedArrivals;
    report.fallbacks = result.remoteFallbacks;
    for (const auto &link : result.linkTotals)
        report.delivered_gb += link.deliveredGb;
    std::vector<double> times;
    for (const auto &entry : result.allRecords()) {
        if (entry.record->cls == WorkloadClass::Interference)
            continue;
        ++report.base.completed;
        report.base.offloads += entry.record->mode == MemoryMode::Remote;
        if (entry.record->cls == WorkloadClass::BestEffort)
            times.push_back(entry.record->execTimeSec);
    }
    report.base.be_median = stats::quantile(times, 0.5);
    report.base.be_p95 = stats::quantile(times, 0.95);
    return report;
}

/** Mixed local/remote tick input spread across a rack's links. */
std::vector<testbed::LoadDescriptor>
rackLoads(const testbed::Topology &topo, std::size_t apps)
{
    std::vector<testbed::LoadDescriptor> loads;
    const auto &sparks = workloads::sparkBenchmarks();
    for (std::size_t i = 0; i < apps; ++i) {
        const std::size_t node = i % topo.nodeCount();
        auto load = sparks[i % sparks.size()].toLoad(
            static_cast<DeploymentId>(i),
            i % 2 ? MemoryMode::Remote : MemoryMode::Local);
        load.node = node;
        if (load.mode == MemoryMode::Remote) {
            const auto &links = topo.linksFrom(node);
            const std::size_t link = links[i % links.size()];
            load.link = link;
            load.server = topo.link(link).server;
        }
        loads.push_back(load);
    }
    return loads;
}

bench::micro::Result
benchRackTick(const std::string &topo_name, std::size_t apps)
{
    testbed::RackTestbed rack(testbed::topologyByName(topo_name));
    rack.setNoise(0.0);
    const auto loads = rackLoads(rack.topology(), apps);
    return bench::micro::measure(
        "rack_tick_" + topo_name + "_apps" + std::to_string(apps),
        [&] { rack.tick(loads); });
}

bench::micro::Result
benchRackClusterMinute(const std::string &topo_name)
{
    // One simulated minute of a congested rack scenario end to end:
    // placement, per-link queueing, capacity accounting, completion.
    return bench::micro::measure(
        "rack_cluster_minute_" + topo_name,
        [&] {
            scenario::ScenarioConfig config;
            config.durationSec = 60;
            config.spawnMinSec = 3;
            config.spawnMaxSec = 10;
            config.seed = 7100;
            config.maxConcurrent = 20;
            config.topology = topo_name;
            scenario::ClusterScenarioRunner runner(
                testbed::topologyByName(topo_name), config);
            core::LeastLoadedRemotePolicy policy;
            runner.run(policy);
        },
        bench::micro::envCount("ADRIAS_BENCH_ITERS", 15),
        bench::micro::envCount("ADRIAS_BENCH_WARMUP", 2));
}

} // namespace

int
main()
{
    bench::banner("Extension §VII — cluster-level orchestration",
                  "design-only in the paper: centralized Adrias with "
                  "per-node telemetry and iso-QoS load tie-breaks");

    core::AdriasStack stack(bench::stackOptions());
    const SimTime duration = bench::envInt("ADRIAS_BENCH_DURATION", 1800);

    TextTable table({"config", "nodes", "completed", "BE median (s)",
                     "BE p95 (s)", "offloads", "traffic (GB)"});
    for (std::size_t nodes : {2, 4}) {
        scenario::RandomClusterPolicy random(5);
        scenario::LeastLoadedLocalPolicy least_loaded;
        core::AdriasConfig config;
        config.beta = 0.8;
        config.defaultQosP99Ms = 5.0;
        core::AdriasClusterOrchestrator adrias(stack.predictor(),
                                               stack.signatures(),
                                               config);
        for (auto *policy :
             std::initializer_list<scenario::ClusterPolicy *>{
                 &random, &least_loaded, &adrias}) {
            const Report report = evaluate(*policy, nodes, duration);
            table.addRow(std::to_string(nodes) + "x " + policy->name(),
                         {static_cast<double>(nodes),
                          static_cast<double>(report.completed),
                          report.be_median, report.be_p95,
                          static_cast<double>(report.offloads),
                          report.traffic_gb},
                         1);
        }
    }
    std::cout << table.toString();
    std::cout << "\nShape check: adrias-cluster matches least-loaded's "
                 "medians while completing comparable work and using "
                 "remote memory; random trails both.\n";

    TextTable rack_table({"config", "completed", "BE median (s)",
                          "BE p95 (s)", "offloads", "dropped",
                          "fallbacks", "link GB"});
    for (const char *topo : {"rack-2x2-cxl", "rack-4x4-mixed"}) {
        scenario::RandomClusterPolicy random(5);
        core::LeastLoadedRemotePolicy least_remote;
        core::AdriasConfig config;
        config.beta = 0.8;
        config.defaultQosP99Ms = 5.0;
        core::AdriasClusterOrchestrator adrias(stack.predictor(),
                                               stack.signatures(),
                                               config);
        for (auto *policy :
             std::initializer_list<scenario::ClusterPolicy *>{
                 &random, &least_remote, &adrias}) {
            const RackReport report =
                evaluateRack(*policy, topo, duration);
            rack_table.addRow(
                std::string(topo) + " " + policy->name(),
                {static_cast<double>(report.base.completed),
                 report.base.be_median, report.base.be_p95,
                 static_cast<double>(report.base.offloads),
                 static_cast<double>(report.dropped),
                 static_cast<double>(report.fallbacks),
                 report.delivered_gb},
                1);
        }
    }
    std::cout << "\n" << rack_table.toString();
    std::cout << "\nShape check: on a shared rack the link-aware "
                 "policies keep offloading without drops; random "
                 "queues harder on the shared links.\n\n";

    // Perf gate: rack-model hot paths, single-threaded for stable
    // medians (tools/bench_compare vs BENCH_topology.json baseline).
    ScopedThreadOverride serial(1);
    std::vector<bench::micro::Result> results;
    results.push_back(benchRackTick("rack-2x2-cxl", 16));
    results.push_back(benchRackTick("rack-4x4-mixed", 32));
    results.push_back(benchRackClusterMinute("rack-2x2-cxl"));
    bench::micro::printResults("topology", results);
    bench::micro::writeJson(
        bench::micro::jsonPath("BENCH_topology.json"), "topology",
        results);
    std::cout << "\nWrote "
              << bench::micro::jsonPath("BENCH_topology.json") << "\n";
    return 0;
}
