/**
 * @file
 * Perf-regression gate over adrias-bench-v1 JSON files.
 *
 * The micro-benchmarks (bench/micro_ml_kernels, bench/micro_sim_speed)
 * emit a stable JSON schema; checked-in snapshots live under
 * bench/baselines/.  This tool compares a current run against such a
 * baseline and fails only on *gross* regressions — the tolerance is
 * deliberately generous (default 2x) because CI machines are noisy and
 * the goal is catching accidental O(n^2)s and dropped optimizations,
 * not 5% drift (DESIGN.md §11).
 *
 * The parser is a minimal, dependency-free reader of the
 * adrias-bench-v1 shape: it extracts benchmarks[*].name and
 * benchmarks[*].median_ns and ignores everything else (including the
 * summary block, which records speedup bookkeeping, not gate input).
 */

#ifndef ADRIAS_TOOLS_BENCH_COMPARE_HH
#define ADRIAS_TOOLS_BENCH_COMPARE_HH

#include <string>
#include <vector>

namespace adrias::bench_compare
{

/** One benchmark entry extracted from an adrias-bench-v1 file. */
struct BenchEntry
{
    std::string name;
    double medianNs = 0.0;
};

/**
 * Extract benchmarks[*].{name, median_ns} from adrias-bench-v1 JSON.
 *
 * @param text full JSON document.
 * @param error on failure, receives a one-line reason.
 * @return entries in file order; empty with *error set on failure.
 */
std::vector<BenchEntry> parseBenchJson(const std::string &text,
                                       std::string *error);

/** Verdict for one benchmark present in the baseline. */
struct CompareRow
{
    std::string name;
    double baselineNs = 0.0;
    double currentNs = 0.0;
    /** currentNs / baselineNs; > tolerance means regressed. */
    double ratio = 0.0;
    bool regressed = false;
};

/** Full comparison outcome. */
struct CompareResult
{
    std::vector<CompareRow> rows;
    /** Baseline names absent from the current run: gate failure. */
    std::vector<std::string> missing;
    /** Current names absent from the baseline: informational only. */
    std::vector<std::string> added;
    /** True iff no row regressed and nothing is missing. */
    bool pass = true;
};

/**
 * Gate a current run against a baseline.
 *
 * @param baseline entries from the checked-in snapshot.
 * @param current entries from the run under test.
 * @param tolerance allowed slowdown factor (e.g. 2.0 = up to 2x
 *        slower passes).  Must be >= 1.
 */
CompareResult compare(const std::vector<BenchEntry> &baseline,
                      const std::vector<BenchEntry> &current,
                      double tolerance);

/** Render a human-readable report of a comparison. */
std::string formatReport(const CompareResult &result, double tolerance);

} // namespace adrias::bench_compare

#endif // ADRIAS_TOOLS_BENCH_COMPARE_HH
