/** @file Tests for signature collection and dataset building. */

#include <gtest/gtest.h>

#include "scenario/dataset.hh"

namespace adrias::scenario
{
namespace
{

TEST(SignatureStore, PutGetEraseRoundTrip)
{
    SignatureStore store;
    EXPECT_FALSE(store.has("sort"));
    EXPECT_THROW(store.get("sort"), std::runtime_error);

    std::vector<ml::Matrix> sig(3, ml::Matrix(1, 7));
    store.put("sort", sig);
    EXPECT_TRUE(store.has("sort"));
    EXPECT_EQ(store.get("sort").size(), 3u);
    EXPECT_EQ(store.size(), 1u);

    store.erase("sort");
    EXPECT_FALSE(store.has("sort"));
    EXPECT_EQ(store.size(), 0u);
}

TEST(SignatureStore, RejectsEmptySignature)
{
    SignatureStore store;
    EXPECT_THROW(store.put("x", {}), std::runtime_error);
}

TEST(CollectSignature, ShapeAndDeterminism)
{
    const auto &spec = workloads::sparkBenchmark("gmm");
    const auto sig_a = collectSignature(spec);
    const auto sig_b = collectSignature(spec);
    ASSERT_EQ(sig_a.size(), ScenarioRunner::kWindowBins);
    for (std::size_t t = 0; t < sig_a.size(); ++t) {
        EXPECT_EQ(sig_a[t].cols(), testbed::kNumPerfEvents);
        EXPECT_LT((sig_a[t] - sig_b[t]).maxAbs(), 1e-12);
    }
}

TEST(CollectSignature, DistinguishesApplications)
{
    // The signature is the app's identity: heavyweight nweight and
    // lightweight gmm must differ substantially.
    const auto heavy =
        collectSignature(workloads::sparkBenchmark("nweight"));
    const auto light = collectSignature(workloads::sparkBenchmark("gmm"));
    double diff = 0.0;
    for (std::size_t t = 0; t < heavy.size(); ++t)
        diff += (heavy[t] - light[t]).norm();
    EXPECT_GT(diff, 1.0);
}

TEST(CollectSignature, CapsLongRuns)
{
    // LC servers run for minutes; the profiling budget must bound it.
    const auto sig =
        collectSignature(workloads::redisSpec(), {}, 7, 50);
    EXPECT_EQ(sig.size(), ScenarioRunner::kWindowBins);
}

TEST(CollectAllSignatures, CoversAllApplications)
{
    SignatureStore store;
    collectAllSignatures(store);
    EXPECT_EQ(store.size(), 19u); // 17 Spark + Redis + Memcached
    EXPECT_TRUE(store.has("nweight"));
    EXPECT_TRUE(store.has("redis"));
    EXPECT_TRUE(store.has("memcached"));
}

class DatasetTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ScenarioConfig config;
        config.durationSec = 1500;
        config.spawnMinSec = 5;
        config.spawnMaxSec = 20;
        config.seed = 41;
        ScenarioRunner runner(config);
        RandomPlacement policy(5);
        results = new std::vector<ScenarioResult>{runner.run(policy)};
        signatures = new SignatureStore;
        collectAllSignatures(*signatures);
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        delete signatures;
        results = nullptr;
        signatures = nullptr;
    }

    static std::vector<ScenarioResult> *results;
    static SignatureStore *signatures;
};

std::vector<ScenarioResult> *DatasetTest::results = nullptr;
SignatureStore *DatasetTest::signatures = nullptr;

TEST_F(DatasetTest, SystemStateSamplesHaveShape)
{
    const auto samples = DatasetBuilder::systemState(*results, 15);
    // 1500 s trace, window+horizon 240 -> ~(1500-240)/15 samples.
    EXPECT_GT(samples.size(), 70u);
    for (const auto &sample : samples) {
        EXPECT_EQ(sample.history.size(), ScenarioRunner::kWindowBins);
        EXPECT_EQ(sample.target.rows(), 1u);
        EXPECT_EQ(sample.target.cols(), testbed::kNumPerfEvents);
    }
}

TEST_F(DatasetTest, SystemStateStrideControlsDensity)
{
    const auto dense = DatasetBuilder::systemState(*results, 5);
    const auto sparse = DatasetBuilder::systemState(*results, 60);
    EXPECT_GT(dense.size(), 2 * sparse.size());
}

TEST_F(DatasetTest, SystemStateRejectsZeroStride)
{
    EXPECT_THROW(DatasetBuilder::systemState(*results, 0),
                 std::runtime_error);
}

TEST_F(DatasetTest, PerformanceSamplesForBestEffort)
{
    const auto samples = DatasetBuilder::performance(
        *results, *signatures, WorkloadClass::BestEffort);
    ASSERT_FALSE(samples.empty());
    for (const auto &sample : samples) {
        EXPECT_EQ(sample.cls, WorkloadClass::BestEffort);
        EXPECT_GT(sample.target, 0.0);
        EXPECT_EQ(sample.history.size(), ScenarioRunner::kWindowBins);
        EXPECT_EQ(sample.signature.size(), ScenarioRunner::kWindowBins);
        EXPECT_EQ(sample.futureWindow.cols(), testbed::kNumPerfEvents);
        EXPECT_EQ(sample.futureExec.cols(), testbed::kNumPerfEvents);
    }
}

TEST_F(DatasetTest, PerformanceSamplesExcludeTrashers)
{
    const auto samples = DatasetBuilder::performance(
        *results, *signatures, WorkloadClass::Interference);
    // iBench apps have no signatures, so nothing qualifies.
    EXPECT_TRUE(samples.empty());
}

TEST_F(DatasetTest, SplitDatasetPartitions)
{
    auto samples = DatasetBuilder::performance(
        *results, *signatures, WorkloadClass::BestEffort);
    const std::size_t total = samples.size();
    auto [train, test] = splitDataset(std::move(samples), 0.6, 7);
    EXPECT_EQ(train.size() + test.size(), total);
    EXPECT_NEAR(static_cast<double>(train.size()) /
                    static_cast<double>(total),
                0.6, 0.05);
}

TEST(SplitDataset, DeterministicShuffle)
{
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto [train_a, test_a] = splitDataset(items, 0.5, 3);
    auto [train_b, test_b] = splitDataset(items, 0.5, 3);
    EXPECT_EQ(train_a, train_b);
    EXPECT_EQ(test_a, test_b);
}

} // namespace
} // namespace adrias::scenario
