/**
 * @file
 * Determinism regression: one seed must reproduce a scenario exactly.
 *
 * The whole offline phase rests on this — traces are collected once,
 * persisted and reused, so any hidden nondeterminism (wall-clock reads,
 * unordered-container iteration, uninitialized state) would silently
 * fork the datasets.  Two runs with the same ScenarioConfig must agree
 * bit-for-bit: every counter of every tick, every completion record,
 * and the serialized CSV artifacts byte-for-byte.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/dataset.hh"
#include "scenario/dataset_io.hh"
#include "scenario/runner.hh"

namespace
{

using namespace adrias;

scenario::ScenarioConfig
config()
{
    scenario::ScenarioConfig cfg;
    cfg.durationSec = 600;
    cfg.spawnMinSec = 5;
    cfg.spawnMaxSec = 25;
    cfg.seed = 4242;
    return cfg;
}

scenario::ScenarioResult
runOnce()
{
    scenario::ScenarioRunner runner(config());
    scenario::RandomPlacement policy(777);
    return runner.run(policy);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(DeterminismTest, SameSeedReproducesTraceBitForBit)
{
    const auto first = runOnce();
    const auto second = runOnce();

    ASSERT_EQ(first.trace.size(), second.trace.size());
    for (std::size_t t = 0; t < first.trace.size(); ++t) {
        for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e) {
            ASSERT_EQ(first.trace[t][e], second.trace[t][e])
                << "tick " << t << " event " << e;
        }
    }
    ASSERT_EQ(first.concurrency, second.concurrency);
    EXPECT_EQ(first.totalRemoteTrafficGB, second.totalRemoteTrafficGB);

    ASSERT_EQ(first.records.size(), second.records.size());
    for (std::size_t i = 0; i < first.records.size(); ++i) {
        const auto &a = first.records[i];
        const auto &b = second.records[i];
        EXPECT_EQ(a.name, b.name) << i;
        EXPECT_EQ(a.mode, b.mode) << i;
        EXPECT_EQ(a.arrival, b.arrival) << i;
        EXPECT_EQ(a.completion, b.completion) << i;
        EXPECT_EQ(a.execTimeSec, b.execTimeSec) << i;
        EXPECT_EQ(a.p99Ms, b.p99Ms) << i;
        EXPECT_EQ(a.remoteTrafficGB, b.remoteTrafficGB) << i;
    }
}

TEST(DeterminismTest, SameSeedReproducesDatasetCsvByteForByte)
{
    const std::vector<scenario::ScenarioResult> first{runOnce()};
    const std::vector<scenario::ScenarioResult> second{runOnce()};

    const auto state_a = scenario::DatasetBuilder::systemState(first);
    const auto state_b = scenario::DatasetBuilder::systemState(second);
    ASSERT_FALSE(state_a.empty());
    ASSERT_EQ(state_a.size(), state_b.size());

    const std::string dir = ::testing::TempDir();
    const std::string path_a = dir + "adrias_det_state_a.csv";
    const std::string path_b = dir + "adrias_det_state_b.csv";
    scenario::saveSystemStateCsv(path_a, state_a);
    scenario::saveSystemStateCsv(path_b, state_b);
    EXPECT_EQ(slurp(path_a), slurp(path_b));
}

} // namespace
