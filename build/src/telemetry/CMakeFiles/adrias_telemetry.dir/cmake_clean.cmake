file(REMOVE_RECURSE
  "CMakeFiles/adrias_telemetry.dir/watcher.cc.o"
  "CMakeFiles/adrias_telemetry.dir/watcher.cc.o.d"
  "libadrias_telemetry.a"
  "libadrias_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
