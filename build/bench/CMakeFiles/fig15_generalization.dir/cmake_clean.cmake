file(REMOVE_RECURSE
  "CMakeFiles/fig15_generalization.dir/fig15_generalization.cc.o"
  "CMakeFiles/fig15_generalization.dir/fig15_generalization.cc.o.d"
  "fig15_generalization"
  "fig15_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
