/**
 * @file
 * Dataset construction from scenario traces (paper §V-B1/2): sliding
 * windows over the counter trace for the system-state model, and
 * per-deployment samples (S, k, mode, future state, target) for the
 * performance models.
 */

#ifndef ADRIAS_SCENARIO_DATASET_HH
#define ADRIAS_SCENARIO_DATASET_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "ml/matrix.hh"
#include "scenario/runner.hh"
#include "scenario/signature.hh"

namespace adrias::scenario
{

/** One supervised example for the system-state model. */
struct SystemStateSample
{
    /** Binned 120 s history window (time-major, 1 x events steps). */
    std::vector<ml::Matrix> history;

    /** Mean of each event over the 120 s horizon (1 x events). */
    ml::Matrix target;
};

/** One supervised example for a performance model. */
struct PerformanceSample
{
    std::string name;
    WorkloadClass cls = WorkloadClass::BestEffort;
    MemoryMode mode = MemoryMode::Local;

    /** History window S at arrival. */
    std::vector<ml::Matrix> history;

    /** Application signature k. */
    std::vector<ml::Matrix> signature;

    /** Actual mean counters over the 120 s after arrival. */
    ml::Matrix futureWindow;

    /** Actual mean counters over the app's full execution. */
    ml::Matrix futureExec;

    /** Ground truth: execution time (BE, s) or p99 (LC, ms). */
    double target = 0.0;
};

/** Builds model datasets out of recorded scenarios. */
class DatasetBuilder
{
  public:
    /**
     * Sliding-window system-state samples from every trace.
     *
     * @param results recorded scenarios.
     * @param stride_sec spacing between consecutive window starts.
     */
    static std::vector<SystemStateSample>
    systemState(const std::vector<ScenarioResult> &results,
                std::size_t stride_sec = 15);

    /**
     * Performance samples for one workload class.
     *
     * Records lacking a history window (scenario warm-up) or without a
     * stored signature are skipped.
     */
    static std::vector<PerformanceSample>
    performance(const std::vector<ScenarioResult> &results,
                const SignatureStore &signatures, WorkloadClass cls);
};

/**
 * Shuffle and split a dataset into train/test partitions.
 *
 * @param samples full dataset (moved from).
 * @param train_fraction fraction assigned to training (paper: 0.6).
 * @param seed shuffle seed.
 */
template <typename Sample>
std::pair<std::vector<Sample>, std::vector<Sample>>
splitDataset(std::vector<Sample> samples, double train_fraction,
             std::uint64_t seed)
{
    Rng rng(seed);
    rng.shuffle(samples);
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(samples.size()));
    std::vector<Sample> train(samples.begin(),
                              samples.begin() +
                                  static_cast<std::ptrdiff_t>(cut));
    std::vector<Sample> test(samples.begin() +
                                 static_cast<std::ptrdiff_t>(cut),
                             samples.end());
    return {std::move(train), std::move(test)};
}

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_DATASET_HH
