/**
 * @file
 * Fig. 5 — Relative slowdown (remote vs local) under interference.
 *
 * For each application and each iBench kind (cpu, l2, l3, memBw) x
 * trasher count (1..16), reports the ratio of the app's slowdown on
 * remote over local placement.  Expected shape (R5-R7): a chasm at
 * >= 8 memBw / 16 l3 trashers (up to ~4x extra), stacking effects for
 * nweight/sort/kmeans, and LC apps more resistant than BE ones.
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

double
contendedSlowdown(const workloads::WorkloadSpec &app,
                  workloads::IBenchKind kind, int trashers,
                  MemoryMode mode)
{
    testbed::Testbed bed;
    bed.setNoise(0.0);
    std::vector<testbed::LoadDescriptor> loads;
    loads.push_back(app.toLoad(0, mode));
    for (int i = 1; i <= trashers; ++i)
        loads.push_back(workloads::ibenchSpec(kind).toLoad(
            static_cast<DeploymentId>(i), mode));
    return bed.tick(loads).outcomes.at(0).slowdown;
}

void
heatmapFor(const workloads::WorkloadSpec &app)
{
    std::cout << "\n--- " << app.name << " (remote/local slowdown ratio) "
              << "---\n";
    TextTable table({"interference", "n=1", "n=2", "n=4", "n=8", "n=16"});
    for (auto kind :
         {workloads::IBenchKind::Cpu, workloads::IBenchKind::L2,
          workloads::IBenchKind::L3, workloads::IBenchKind::MemBw}) {
        std::vector<double> ratios;
        for (int n : {1, 2, 4, 8, 16}) {
            const double local =
                contendedSlowdown(app, kind, n, MemoryMode::Local);
            const double remote =
                contendedSlowdown(app, kind, n, MemoryMode::Remote);
            ratios.push_back(remote / local);
        }
        table.addRow(toString(kind), ratios, 2);
    }
    std::cout << table.toString();
}

} // namespace

int
main()
{
    bench::banner("Fig. 5 — interference heatmap (remote vs local)",
                  "chasm at >= 8 memBw / 16 l3 trashers (up to ~4x); "
                  "stacking for nweight/sort/kmeans; LC resistant");

    for (const char *name : {"sort", "kmeans", "nweight", "gmm"})
        heatmapFor(workloads::sparkBenchmark(name));
    heatmapFor(workloads::redisSpec());
    heatmapFor(workloads::memcachedSpec());

    std::cout << "\nShape check: ratios stay near 1 for cpu/l2, open "
                 "beyond 8 memBw trashers, and are smaller for the LC "
                 "apps (R5-R7).\n";
    return 0;
}
