file(REMOVE_RECURSE
  "CMakeFiles/fig04_be_isolation.dir/fig04_be_isolation.cc.o"
  "CMakeFiles/fig04_be_isolation.dir/fig04_be_isolation.cc.o.d"
  "fig04_be_isolation"
  "fig04_be_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_be_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
