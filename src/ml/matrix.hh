/**
 * @file
 * Dense row-major matrix — the numeric workhorse of the from-scratch
 * deep-learning substrate.
 *
 * Everything the Adrias models need (batched dense layers, LSTM cells)
 * is expressible with 2-D matrices; sequences are carried as
 * time-major vectors of (batch x features) matrices.
 *
 * Two API families exist for the hot kernels (DESIGN.md §11): the
 * classic allocating form (`c = a.matmul(b)`) and an into-destination
 * form (`a.matmulInto(b, c)`) that reuses the destination's storage.
 * Both run the exact same kernel body, so their results are bitwise
 * identical; the into-forms exist so the LSTM/GEMM hot path can run
 * allocation-free over persistent workspaces.
 */

#ifndef ADRIAS_ML_MATRIX_HH
#define ADRIAS_ML_MATRIX_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/invariant.hh"
#include "common/threadpool.hh"

namespace adrias::ml
{

/**
 * Work thresholds above which the Matrix kernels fan out onto the
 * global ThreadPool (DESIGN.md §9).  Below a threshold the same kernel
 * runs over the full range on the caller, so results are bitwise
 * identical either way; the thresholds only trade dispatch overhead
 * against parallelism.
 */
struct MatrixParallelConfig
{
    /** Multiply-add count above which the matmul family goes parallel. */
    std::size_t gemmGrain = 64 * 1024;

    /** Element count above which element-wise kernels go parallel. */
    std::size_t elementGrain = 256 * 1024;

    /**
     * Tile edge for the cache-blocked GEMM path (matmul and
     * transposedMatmul); 0 keeps the streaming i-k-j loop.  Blocking
     * regroups the loop nest but leaves every output element's
     * k-accumulation order untouched, so blocked and unblocked results
     * are bitwise identical (DESIGN.md §11); the knob only trades loop
     * overhead against cache reuse on shapes wider than the tile.
     */
    std::size_t gemmBlock = 0;
};

/** @return the active kernel-parallelism thresholds. */
MatrixParallelConfig matrixParallelConfig();

/**
 * Replace the kernel-parallelism thresholds (tests/benches force tiny
 * shapes onto the parallel path with {0, 0}).  Not synchronized: call
 * only from single-threaded setup code.
 */
void setMatrixParallelConfig(MatrixParallelConfig config);

namespace kernels
{

/**
 * Run `kernel(begin, end)` over [0, rows) — on the global ThreadPool
 * when `total_work` clears `grain`, inline on the caller otherwise.
 *
 * Templated on the kernel so the serial branch (small shapes — the
 * inference hot case) calls the body directly with no std::function
 * construction or indirect call; only the parallel branch pays the
 * type-erasure cost, where it is amortized over pool dispatch anyway.
 * Chunk boundaries come from ThreadPool's fixed partition rule and
 * depend only on `rows`, never on the thread count, so serial and
 * parallel execution stay bitwise identical (DESIGN.md §9).
 */
template <typename Kernel>
inline void
runRows(std::size_t rows, std::size_t total_work, std::size_t grain,
        Kernel &&kernel)
{
    if (rows == 0)
        return;
    if (rows > 1 && total_work >= grain)
        ThreadPool::global().parallelFor(rows, kernel);
    else
        kernel(0, rows);
}

} // namespace kernels

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** @param rows_ row count; @param cols_ column count (zero-filled). */
    Matrix(std::size_t rows_, std::size_t cols_);

    /** Construct with explicit contents (row-major, size rows*cols). */
    Matrix(std::size_t rows_, std::size_t cols_, std::vector<double> values);

    /** @return matrix filled with a constant. */
    static Matrix constant(std::size_t rows, std::size_t cols, double value);

    /** @return identity matrix of the given order. */
    static Matrix identity(std::size_t order);

    /** @return a 1 x n row vector wrapping the given values. */
    static Matrix rowVector(const std::vector<double> &values);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }
    std::size_t size() const { return data.size(); }
    bool empty() const { return data.empty(); }

    /**
     * Element access.  Bounds are checked only when ADRIAS_INVARIANT
     * checks are compiled in (the default outside Release); a
     * violation routes through the invariant handler, whose default
     * panics with std::logic_error.  Release builds index directly —
     * the hot kernels bypass at() through raw() either way.
     */
    double &
    at(std::size_t r, std::size_t c)
    {
        ADRIAS_INVARIANT(r < nRows && c < nCols,
                         "Matrix::at(" + std::to_string(r) + ", " +
                             std::to_string(c) + ") out of range " +
                             shape());
        return data[r * nCols + c];
    }

    /** Const element access; bounds-checked like the mutable form. */
    double
    at(std::size_t r, std::size_t c) const
    {
        ADRIAS_INVARIANT(r < nRows && c < nCols,
                         "Matrix::at(" + std::to_string(r) + ", " +
                             std::to_string(c) + ") out of range " +
                             shape());
        return data[r * nCols + c];
    }

    /** Raw row-major storage. */
    std::vector<double> &raw() { return data; }
    const std::vector<double> &raw() const { return data; }

    /**
     * Reshape to rows x cols, zero-filling every element.  Reuses the
     * existing allocation when capacity suffices — the workspace-reuse
     * primitive behind the allocation-free kernels.
     */
    void resize(std::size_t rows_, std::size_t cols_);

    /**
     * Reshape to rows x cols without clearing: surviving elements keep
     * their previous values and grown storage is zero-filled.  Only
     * for destinations the caller overwrites in full before reading —
     * anything else would leak stale values into results.
     */
    void resizeForOverwrite(std::size_t rows_, std::size_t cols_);

    /** Matrix product: (m x k) * (k x n) -> (m x n). */
    Matrix matmul(const Matrix &other) const;

    /**
     * Matrix product into a caller-owned destination (resized and
     * zeroed here).  Bitwise identical to matmul(); `out` must not
     * alias either operand.
     */
    void matmulInto(const Matrix &other, Matrix &out) const;

    /** this^T * other without materializing the transpose. */
    Matrix transposedMatmul(const Matrix &other) const;

    /** Into-destination form of transposedMatmul(); same contract as
     *  matmulInto(). */
    void transposedMatmulInto(const Matrix &other, Matrix &out) const;

    /** this * other^T without materializing the transpose. */
    Matrix matmulTransposed(const Matrix &other) const;

    /** Into-destination form of matmulTransposed(); same contract as
     *  matmulInto(). */
    void matmulTransposedInto(const Matrix &other, Matrix &out) const;

    /** @return transposed copy. */
    Matrix transposed() const;

    /** Element-wise sum; shapes must match. */
    Matrix operator+(const Matrix &other) const;

    /** Element-wise difference; shapes must match. */
    Matrix operator-(const Matrix &other) const;

    /** Element-wise (Hadamard) product; shapes must match. */
    Matrix hadamard(const Matrix &other) const;

    /** Scalar multiple. */
    Matrix operator*(double scalar) const;

    /** In-place element-wise accumulate. */
    Matrix &operator+=(const Matrix &other);

    /** In-place scalar scale. */
    Matrix &operator*=(double scalar);

    /** Add a 1 x cols row vector to every row (bias broadcast). */
    Matrix addRowBroadcast(const Matrix &row) const;

    /** In-place form of addRowBroadcast(); bitwise identical result. */
    void addRowBroadcastInPlace(const Matrix &row);

    /** Column-wise sum producing a 1 x cols row vector. */
    Matrix sumRows() const;

    /**
     * Accumulate the column-wise sums into an existing 1 x cols row
     * vector: dst += this->sumRows(), bitwise identical to that
     * two-step form but with no temporary.
     */
    void sumRowsAddTo(Matrix &dst) const;

    /**
     * Apply a scalar function to every element (returns a copy).
     * Always serial: `fn` may be stateful (e.g. draw from an Rng), so
     * it is never offloaded to the pool.
     */
    Matrix map(const std::function<double(double)> &fn) const;

    /** Concatenate horizontally: [this | other]; row counts must match. */
    Matrix hconcat(const Matrix &other) const;

    /** Slice of columns [begin, end). */
    Matrix colRange(std::size_t begin, std::size_t end) const;

    /** Into-destination form of colRange(); `dst` must not alias this. */
    void colRangeInto(std::size_t begin, std::size_t end,
                      Matrix &dst) const;

    /** Copy of one row as a 1 x cols matrix. */
    Matrix row(std::size_t r) const;

    /** Zero all elements in place. */
    void setZero();

    /** Frobenius norm. */
    double norm() const;

    /** Largest absolute element. */
    double maxAbs() const;

    /** Shape string "RxC" for diagnostics. */
    std::string shape() const;

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<double> data;

    void checkSameShape(const Matrix &other, const char *op) const;
    void checkNoAlias(const Matrix &out, const char *op) const;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_MATRIX_HH
