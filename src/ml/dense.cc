#include "ml/dense.hh"

#include <cmath>

#include "common/logging.hh"

namespace adrias::ml
{

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng &rng)
    : weight("dense.weight", Matrix(in_features, out_features)),
      bias("dense.bias", Matrix(1, out_features))
{
    // Glorot/Xavier uniform keeps activation variance stable through
    // the non-linear blocks.
    const double limit = std::sqrt(
        6.0 / static_cast<double>(in_features + out_features));
    for (double &w : weight.value.raw())
        w = rng.uniform(-limit, limit);
}

Matrix
Dense::forward(const Matrix &input)
{
    if (!isInference)
        lastInput = input;
    Matrix out;
    input.matmulInto(weight.value, out);
    out.addRowBroadcastInPlace(bias.value);
    return out;
}

Matrix
Dense::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("Dense::backward in inference mode");
    // Compute-then-accumulate via the staging buffer keeps the same
    // addition order as `grad += a.transposedMatmul(b)`.
    lastInput.transposedMatmulInto(grad_output, gradScratch);
    weight.grad += gradScratch;
    grad_output.sumRowsAddTo(bias.grad);
    return grad_output.matmulTransposed(weight.value);
}

std::vector<Param *>
Dense::params()
{
    return {&weight, &bias};
}

} // namespace adrias::ml
