#include "analyze/analyze.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "analyze/passes.hh"
#include "lint/source.hh"

namespace adrias::analyze
{

const std::vector<PassInfo> &
passes()
{
    static const std::vector<PassInfo> kPasses = {
        {"checkpoint-coverage",
         "every non-static data member of a saveState/restoreState "
         "class is referenced in both bodies or carries "
         "ADRIAS_NOT_CHECKPOINTED(reason)"},
        {"lock-discipline",
         "every mutable member of a Mutex-owning class is "
         "ADRIAS_GUARDED_BY-annotated or carries "
         "ADRIAS_LOCK_FREE(reason)"},
        {"determinism-hazard",
         "no unordered-container iteration into checkpoint/dataset "
         "sinks; no cross-chunk float accumulation inside "
         "parallelFor regions"},
    };
    return kPasses;
}

std::vector<Finding>
analyzeFiles(const std::vector<SourceFile> &files)
{
    const Index index = buildIndex(files);

    std::vector<Finding> raw;
    runCheckpointCoverage(index, raw);
    runLockDiscipline(index, raw);
    runDeterminismHazard(index, raw);

    // NOLINT escapes are parsed from the raw (comment-bearing) text,
    // per file, with pass ids as the rule names.
    std::map<std::string, lint::Suppressions> escapes;
    for (const SourceFile &file : files) {
        escapes.emplace(file.label,
                        lint::Suppressions(lint::splitLines(file.content)));
    }

    std::vector<Finding> findings;
    for (Finding &finding : raw) {
        const auto it = escapes.find(finding.file);
        if (it != escapes.end() && finding.line > 0 &&
            it->second.suppressed(finding.line - 1, finding.pass))
            continue;
        findings.push_back(std::move(finding));
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return findings;
}

std::vector<Finding>
analyzeTree(const std::string &repo_root)
{
    namespace fs = std::filesystem;

    std::vector<std::pair<std::string, std::string>> paths; // label, path
    const fs::path base = fs::path(repo_root) / "src";
    if (fs::exists(base)) {
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            std::string label =
                fs::relative(entry.path(), repo_root).generic_string();
            if (label.find("fixtures/") != std::string::npos)
                continue;
            paths.emplace_back(std::move(label), entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    std::vector<Finding> findings;
    for (const auto &[label, path] : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            findings.push_back({label, 0, "io", "cannot open " + path});
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        files.push_back({label, buffer.str()});
    }

    std::vector<Finding> analyzed = analyzeFiles(files);
    findings.insert(findings.end(),
                    std::make_move_iterator(analyzed.begin()),
                    std::make_move_iterator(analyzed.end()));
    return findings;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.pass + "] " + finding.detail;
}

} // namespace adrias::analyze
