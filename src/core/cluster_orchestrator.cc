#include "core/cluster_orchestrator.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "scenario/runner.hh"

namespace adrias::core
{

AdriasClusterOrchestrator::AdriasClusterOrchestrator(
    const models::PredictorBase &predictor_,
    scenario::SignatureStore &signatures_, AdriasConfig config_)
    : predictor(&predictor_), signatures(&signatures_), policy(config_)
{
    if (policy.beta <= 0.0 || policy.beta > 1.5)
        fatal("AdriasClusterOrchestrator: beta out of sensible range");
    if (!predictor->trained())
        fatal("AdriasClusterOrchestrator requires a trained Predictor");
}

std::string
AdriasClusterOrchestrator::name() const
{
    std::ostringstream out;
    out << "adrias-cluster-b" << formatDouble(policy.beta, 1);
    return out.str();
}

std::vector<AdriasClusterOrchestrator::Candidate>
AdriasClusterOrchestrator::predictAll(
    const workloads::WorkloadSpec &spec,
    const std::vector<scenario::NodeView> &nodes) const
{
    const auto &signature = signatures->get(spec.name);
    std::vector<Candidate> candidates;
    candidates.reserve(nodes.size() * 2);
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (nodes[n].watcher->sampleCount() == 0)
            continue;
        const auto history = nodes[n].watcher->binnedWindow(
            scenario::ScenarioRunner::kWindowSec,
            scenario::ScenarioRunner::kWindowBins);
        for (MemoryMode mode : {MemoryMode::Local, MemoryMode::Remote}) {
            Candidate candidate;
            candidate.node = n;
            candidate.mode = mode;
            candidate.running = nodes[n].running;
            candidate.predicted = predictor->predictPerformance(
                spec.cls, history, signature, mode);
            candidates.push_back(candidate);
        }
    }
    return candidates;
}

scenario::ClusterPlacement
AdriasClusterOrchestrator::place(
    const workloads::WorkloadSpec &spec,
    const std::vector<scenario::NodeView> &nodes, SimTime now)
{
    (void)now;
    if (nodes.empty())
        fatal("AdriasClusterOrchestrator: empty cluster");

    // Least-loaded node, used for bootstraps, cold starts and as the
    // iso-QoS tie-break (cluster-level efficiency, §VII).
    auto least_loaded = [&nodes]() {
        std::size_t best = 0;
        for (std::size_t n = 1; n < nodes.size(); ++n)
            if (nodes[n].running < nodes[best].running)
                best = n;
        return best;
    };

    // Unknown application: bootstrap on remote memory on the least
    // loaded node, mirroring the single-node rule.
    if (!signatures->has(spec.name))
        return {least_loaded(), MemoryMode::Remote};

    const auto candidates = predictAll(spec, nodes);
    if (candidates.empty())
        return {least_loaded(), MemoryMode::Local};

    if (spec.cls == WorkloadClass::BestEffort) {
        // Per node, apply the β rule; across nodes, prefer the best
        // predicted time, breaking near-ties by load.
        scenario::ClusterPlacement best{0, MemoryMode::Local};
        double best_time = std::numeric_limits<double>::infinity();
        std::size_t best_running = SIZE_MAX;
        for (std::size_t i = 0; i < candidates.size(); i += 2) {
            const Candidate &local = candidates[i];
            const Candidate &remote = candidates[i + 1];
            const bool go_local =
                AdriasOrchestrator::decideBestEffort(
                    local.predicted, remote.predicted, policy.beta) ==
                MemoryMode::Local;
            const Candidate &chosen = go_local ? local : remote;
            const bool better =
                chosen.predicted < best_time * (1.0 - kIsoMargin);
            const bool iso_tie =
                chosen.predicted <= best_time * (1.0 + kIsoMargin) &&
                chosen.running < best_running;
            if (better || iso_tie) {
                best_time = chosen.predicted;
                best_running = chosen.running;
                best = {chosen.node, chosen.mode};
            }
        }
        return best;
    }

    if (spec.cls == WorkloadClass::LatencyCritical) {
        const double qos = [&] {
            auto it = policy.qosP99Ms.find(spec.name);
            return it == policy.qosP99Ms.end() ? policy.defaultQosP99Ms
                                               : it->second;
        }();
        // Prefer a remote placement that meets QoS (most headroom,
        // least-loaded on iso-QoS); otherwise the safest local one.
        const Candidate *best_remote = nullptr;
        const Candidate *best_local = nullptr;
        for (const Candidate &candidate : candidates) {
            if (candidate.mode == MemoryMode::Remote) {
                // Same boundary as the shared LC rule: a remote
                // candidate is admissible iff p̂99 ≤ QoS.
                if (AdriasOrchestrator::decideLatencyCritical(
                        candidate.predicted, qos) != MemoryMode::Remote)
                    continue;
                if (!best_remote ||
                    candidate.predicted <
                        best_remote->predicted * (1.0 - kIsoMargin) ||
                    (candidate.predicted <=
                         best_remote->predicted * (1.0 + kIsoMargin) &&
                     candidate.running < best_remote->running)) {
                    best_remote = &candidate;
                }
            } else if (!best_local ||
                       candidate.predicted < best_local->predicted) {
                best_local = &candidate;
            }
        }
        if (best_remote)
            return {best_remote->node, MemoryMode::Remote};
        if (best_local)
            return {best_local->node, MemoryMode::Local};
        return {least_loaded(), MemoryMode::Local};
    }

    panic("AdriasClusterOrchestrator asked to place a trasher");
}

scenario::ClusterPlacement
AdriasClusterOrchestrator::placeRack(
    const workloads::WorkloadSpec &spec,
    const std::vector<scenario::NodeView> &nodes,
    const scenario::RackView &rack, SimTime now)
{
    const scenario::ClusterPlacement chosen = place(spec, nodes, now);
    if (chosen.mode != MemoryMode::Remote)
        return chosen;
    scenario::ClusterPlacement routed = routeOnRack(chosen, spec, rack);
    if (routed.mode == MemoryMode::Remote)
        return routed;

    // The predicted-best node cannot reach disaggregated memory any
    // more.  Keeping the mode matters more than keeping the node for a
    // remote-preferring decision, so retry the surviving nodes from
    // least loaded upward before degrading to the local pool.
    std::vector<std::size_t> order;
    order.reserve(nodes.size());
    for (std::size_t n = 0; n < nodes.size(); ++n)
        if (n != chosen.node)
            order.push_back(n);
    std::stable_sort(order.begin(), order.end(),
                     [&nodes](std::size_t a, std::size_t b) {
                         return nodes[a].running < nodes[b].running;
                     });
    for (std::size_t n : order) {
        scenario::ClusterPlacement alt = chosen;
        alt.node = n;
        alt = routeOnRack(alt, spec, rack);
        if (alt.mode == MemoryMode::Remote)
            return alt;
    }
    return routed;
}

void
AdriasClusterOrchestrator::onCompletion(
    std::size_t node, const scenario::DeploymentRecord &record)
{
    (void)node;
    if (record.cls == WorkloadClass::Interference)
        return;
    if (!signatures->has(record.name) && !record.executionWindow.empty())
        signatures->put(record.name, record.executionWindow);
}

} // namespace adrias::core
