/**
 * @file
 * determinism-hazard pass.  Two hazards, both of which silently break
 * the bit-reproducibility contract (DESIGN.md §9):
 *
 *  (a) Range-for iteration over an unordered container (or a
 *      pointer-keyed std::map — address order varies run to run)
 *      inside a function that feeds a reproducible sink: a
 *      checkpoint (saveState / BinaryWriter), a CSV dataset
 *      (CsvWriter / writeRow / save*Csv), or dataset structures.
 *      Iteration order would leak into persisted bytes.
 *
 *  (b) `x += ...` accumulation into a float/double declared *outside*
 *      a parallelFor/parallelForEach chunk region.  Cross-chunk
 *      accumulation races, and even when locked it reorders float
 *      addition.  The blessed pattern — per-chunk partial slots
 *      (`partials[chunk] += ...`) combined in chunk index order after
 *      the join — is recognized and not flagged, as are accumulators
 *      declared inside the region (chunk-local).  A region carrying an
 *      ADRIAS_VECTOR_TIER_OK(reason) waiver (ml/simd.hh) is skipped:
 *      the marker asserts the kernel belongs to the vector tier, whose
 *      relaxed-determinism contract is enforced by the tolerance-based
 *      equivalence suite (`ctest -L simd`) instead of bitwise
 *      reproduction.  The waiver is region-scoped — placing it outside
 *      the parallelFor argument list does not suppress the finding.
 *
 * The pass works on the indexed bodies (inline methods plus
 * out-of-line definitions), so member containers declared in the
 * header are seen when the loop lives in the .cc file.  The
 * ThreadPool's own implementation is exempt from (b): it is the
 * machinery the rule points everyone at.
 */

#include "analyze/passes.hh"

#include <cctype>

#include "lint/source.hh"

namespace adrias::analyze
{

namespace
{

using lint::identifiersIn;
using lint::isIdentChar;
using lint::splitLines;

/** Identifiers that mark a body as feeding a reproducible sink. */
const std::set<std::string> kSinkMarkers = {
    "saveState",          "exportState", "BinaryWriter",
    "CsvWriter",          "writeRow",    "saveSystemStateCsv",
    "savePerformanceCsv", "writeCsv",    "Dataset",
};

/** One function body with its location and class context. */
struct BodyRef
{
    std::string name;
    const std::string *head = nullptr;
    const std::string *body = nullptr;
    std::string file;
    std::size_t bodyLine = 0; ///< 1-based line of the body's '{'
    const Class *cls = nullptr;
};

/** Matching '>' for the '<' at `open`, or npos. */
std::size_t
matchAngle(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '<')
            ++depth;
        else if (text[i] == '>' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/**
 * Hazard-container detection in one declaration-ish text: true for
 * unordered_map/unordered_set, and for map/multimap whose key type
 * segment contains a pointer.
 */
bool
isHazardContainerType(const std::string &text)
{
    for (const auto &[id, col] : identifiersIn(text)) {
        const bool unordered =
            id == "unordered_map" || id == "unordered_set" ||
            id == "unordered_multimap" || id == "unordered_multiset";
        const bool orderedMap = id == "map" || id == "multimap";
        if (!unordered && !orderedMap)
            continue;
        const std::size_t open = text.find('<', col + id.size());
        if (open == std::string::npos || open != text.find_first_not_of(
                                                     ' ', col + id.size()))
            continue;
        if (unordered)
            return true;
        // Pointer-keyed ordered map: '*' before the first top-level
        // comma inside the angle brackets.
        int angle = 0;
        for (std::size_t i = open; i < text.size(); ++i) {
            const char c = text[i];
            if (c == '<')
                ++angle;
            else if (c == '>') {
                if (--angle == 0)
                    break;
            } else if (c == ',' && angle == 1)
                break;
            else if (c == '*' && angle >= 1)
                return true;
        }
    }
    return false;
}

/**
 * Variables declared with a hazard container type in `text`: the
 * identifier following the closing '>' of the container's template
 * argument list (skipping &, *, and whitespace).
 */
std::set<std::string>
hazardVariablesIn(const std::string &text)
{
    std::set<std::string> vars;
    for (const std::string &line : splitLines(text)) {
        for (const auto &[id, col] : identifiersIn(line)) {
            const bool unordered =
                id == "unordered_map" || id == "unordered_set" ||
                id == "unordered_multimap" || id == "unordered_multiset";
            const bool orderedMap = id == "map" || id == "multimap";
            if (!unordered && !orderedMap)
                continue;
            const std::size_t open = line.find('<', col + id.size());
            if (open == std::string::npos)
                continue;
            const std::size_t close = matchAngle(line, open);
            if (close == std::string::npos)
                continue;
            if (!isHazardContainerType(line.substr(col, close - col + 1)))
                continue;
            std::size_t at = close + 1;
            while (at < line.size() &&
                   (std::isspace(static_cast<unsigned char>(line[at])) ||
                    line[at] == '&' || line[at] == '*'))
                ++at;
            std::size_t end = at;
            while (end < line.size() && isIdentChar(line[end]))
                ++end;
            if (end > at &&
                !std::isdigit(static_cast<unsigned char>(line[at])))
                vars.insert(line.substr(at, end - at));
        }
    }
    return vars;
}

/** The sink marker referenced by head+body, or "" when none. */
std::string
sinkMarkerIn(const BodyRef &ref)
{
    std::set<std::string> ids = identifierSet(*ref.body);
    const std::set<std::string> headIds = identifierSet(*ref.head);
    ids.insert(headIds.begin(), headIds.end());
    if (kSinkMarkers.count(ref.name))
        return ref.name;
    for (const std::string &marker : kSinkMarkers) {
        if (ids.count(marker))
            return marker;
    }
    return "";
}

/**
 * Does `line` look like it declares `name` — an identifier, '&' or
 * '*' directly before it (a type), and '=', '{', ';', ',' or ')'
 * after it?  Token-level approximation, good enough to separate
 * `double total` from `total = x` and `f(total)`.
 */
bool
declaresName(const std::string &line, const std::string &name)
{
    const auto ids = identifiersIn(line);
    for (std::size_t k = 0; k < ids.size(); ++k) {
        if (ids[k].first != name || k == 0)
            continue;
        const std::string &prevTok = ids[k - 1].first;
        if (prevTok == "return" || prevTok == "if" || prevTok == "while" ||
            prevTok == "else" || prevTok == "do")
            continue;
        // The previous token must end just before `name` modulo
        // whitespace and declarator decoration.
        std::size_t between = ids[k - 1].second + prevTok.size();
        bool clean = true;
        for (std::size_t i = between; i < ids[k].second; ++i) {
            const char c = line[i];
            if (!std::isspace(static_cast<unsigned char>(c)) &&
                c != '&' && c != '*' && c != ':' && c != '<' &&
                c != '>') {
                clean = false;
                break;
            }
        }
        if (!clean)
            continue;
        const char after =
            lint::nextNonSpace(line, ids[k].second + name.size());
        if (after == '=' || after == '{' || after == ';' ||
            after == ',' || after == ')' || after == '\0')
            return true;
    }
    return false;
}

bool
declaresNameAnywhere(const std::string &text, const std::string &name)
{
    for (const std::string &line : splitLines(text)) {
        if (declaresName(line, name))
            return true;
    }
    return false;
}

bool
declaredAsFloat(const std::string &text, const std::string &name)
{
    for (const std::string &line : splitLines(text)) {
        if (!declaresName(line, name))
            continue;
        const std::set<std::string> ids = identifierSet(line);
        if (ids.count("double") || ids.count("float"))
            return true;
    }
    return false;
}

/** 1-based source line of position `pos` inside `ref`'s body. */
std::size_t
lineOfBodyPos(const BodyRef &ref, std::size_t pos)
{
    std::size_t line = ref.bodyLine;
    for (std::size_t i = 0; i < pos && i < ref.body->size(); ++i) {
        if ((*ref.body)[i] == '\n')
            ++line;
    }
    return line;
}

/** Check one body for hazard (a): unordered iteration into a sink. */
void
checkUnorderedIteration(const BodyRef &ref,
                        std::vector<Finding> &findings)
{
    const std::string marker = sinkMarkerIn(ref);
    if (marker.empty())
        return;

    std::set<std::string> hazards = hazardVariablesIn(*ref.body);
    {
        const std::set<std::string> headHazards =
            hazardVariablesIn(*ref.head);
        hazards.insert(headHazards.begin(), headHazards.end());
    }
    if (ref.cls != nullptr) {
        for (const Member &member : ref.cls->members) {
            if (isHazardContainerType(member.type))
                hazards.insert(member.name);
        }
    }
    if (hazards.empty())
        return;

    const std::vector<std::string> lines = splitLines(*ref.body);
    std::size_t offset = 0;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        for (const auto &[id, col] : identifiersIn(line)) {
            if (id != "for")
                continue;
            const std::size_t open = line.find('(', col + 3);
            if (open == std::string::npos)
                continue;
            // The range-for ':' at depth >= 1, not part of '::'.
            int depth = 0;
            std::size_t colon = std::string::npos;
            std::size_t close = std::string::npos;
            for (std::size_t i = open; i < line.size(); ++i) {
                const char c = line[i];
                if (c == '(')
                    ++depth;
                else if (c == ')') {
                    if (--depth == 0) {
                        close = i;
                        break;
                    }
                } else if (c == ':' && depth >= 1 &&
                           colon == std::string::npos &&
                           (i + 1 >= line.size() || line[i + 1] != ':') &&
                           (i == 0 || line[i - 1] != ':')) {
                    colon = i;
                }
            }
            if (colon == std::string::npos)
                continue;
            const std::string rangeExpr = line.substr(
                colon + 1, (close == std::string::npos ? line.size()
                                                       : close) -
                               colon - 1);
            for (const auto &[rangeId, rc] : identifiersIn(rangeExpr)) {
                (void)rc;
                if (!hazards.count(rangeId))
                    continue;
                findings.push_back(
                    {ref.file, lineOfBodyPos(ref, offset + col),
                     "determinism-hazard",
                     "iteration over unordered/pointer-keyed container '" +
                         rangeId + "' in '" + ref.name +
                         "', which feeds a reproducible sink ('" + marker +
                         "'); iterate a sorted view instead"});
                break;
            }
        }
        offset += line.size() + 1;
    }
}

/** Check one body for hazard (b): cross-chunk float accumulation. */
void
checkFloatAccumulation(const BodyRef &ref,
                       std::vector<Finding> &findings)
{
    const std::string &body = *ref.body;
    std::size_t search = 0;
    while (search < body.size()) {
        // Locate a parallelFor / parallelForEach call region.
        std::size_t at = std::string::npos;
        for (std::size_t i = search; i + 11 < body.size(); ++i) {
            if (body.compare(i, 11, "parallelFor") != 0)
                continue;
            if (i > 0 && isIdentChar(body[i - 1]))
                continue;
            std::size_t end = i + 11;
            while (end < body.size() && isIdentChar(body[end]))
                ++end;
            const std::string name = body.substr(i, end - i);
            if (name != "parallelFor" && name != "parallelForEach")
                continue;
            at = end;
            break;
        }
        if (at == std::string::npos)
            return;
        const std::size_t open = body.find('(', at);
        if (open == std::string::npos)
            return;
        int depth = 0;
        std::size_t close = body.size();
        for (std::size_t i = open; i < body.size(); ++i) {
            if (body[i] == '(')
                ++depth;
            else if (body[i] == ')' && --depth == 0) {
                close = i;
                break;
            }
        }
        const std::string region = body.substr(open, close - open);
        search = close + 1;

        // Vector-tier waiver: the author asserts this region's
        // numerics are covered by the simd equivalence suite rather
        // than the bitwise contract.  Must appear inside the call's
        // argument list to count.
        if (region.find("ADRIAS_VECTOR_TIER_OK") != std::string::npos)
            continue;

        // `ident +=` inside the region, target not subscripted.
        for (std::size_t i = 0; i + 1 < region.size(); ++i) {
            if (region[i] != '+' || region[i + 1] != '=')
                continue;
            std::size_t end = i;
            while (end > 0 && std::isspace(static_cast<unsigned char>(
                                  region[end - 1])))
                --end;
            if (end == 0 || !isIdentChar(region[end - 1]))
                continue; // `arr[k] +=` or `*p +=`: per-slot, blessed
            std::size_t begin = end;
            while (begin > 0 && isIdentChar(region[begin - 1]))
                --begin;
            const std::string target =
                region.substr(begin, end - begin);
            if (declaresNameAnywhere(region, target))
                continue; // chunk-local accumulator
            const bool floatOuter =
                declaredAsFloat(*ref.head + "\n" + body, target);
            bool floatMember = false;
            if (ref.cls != nullptr) {
                for (const Member &member : ref.cls->members) {
                    if (member.name != target)
                        continue;
                    const std::set<std::string> ids =
                        identifierSet(member.type);
                    floatMember =
                        ids.count("double") || ids.count("float");
                    break;
                }
            }
            if (!floatOuter && !floatMember)
                continue;
            findings.push_back(
                {ref.file, lineOfBodyPos(ref, open + begin),
                 "determinism-hazard",
                 "float accumulation into '" + target +
                     "' declared outside the parallelFor chunk region "
                     "in '" + ref.name +
                     "'; accumulate into per-chunk slots and combine "
                     "in chunk index order"});
        }
    }
}

} // namespace

void
runDeterminismHazard(const Index &index, std::vector<Finding> &findings)
{
    std::vector<BodyRef> bodies;
    for (const Class &cls : index.classes) {
        for (const Method &method : cls.methods) {
            if (method.body.empty())
                continue;
            bodies.push_back({method.name, &method.head, &method.body,
                              method.file, method.bodyLine, &cls});
        }
    }
    for (const Function &fn : index.functions) {
        const Class *cls =
            fn.className.empty() ? nullptr : index.findClass(fn.className);
        bodies.push_back(
            {fn.name, &fn.head, &fn.body, fn.file, fn.bodyLine, cls});
    }

    for (const BodyRef &ref : bodies) {
        checkUnorderedIteration(ref, findings);
        const bool poolItself =
            ref.file.find("src/common/threadpool.") != std::string::npos;
        if (!poolItself)
            checkFloatAccumulation(ref, findings);
    }
}

} // namespace adrias::analyze
