# Empty compiler generated dependencies file for fig04_be_isolation.
# This may be replaced when dependencies are built.
