#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/invariant.hh"
#include "common/logging.hh"

namespace adrias::workloads
{

WorkloadInstance::WorkloadInstance(DeploymentId id, const WorkloadSpec &spec,
                                   MemoryMode mode, SimTime arrival_,
                                   std::uint64_t seed, double load_factor)
    : deploymentId(id), specification(&spec), arrival(arrival_),
      loadFactor(load_factor), memoryMode(mode), rng(seed)
{
    if (load_factor <= 0.0)
        fatal("WorkloadInstance: load factor must be positive");
}

WorkloadInstance::WorkloadInstance(WorkloadInstance &&other) noexcept
    : deploymentId(other.deploymentId),
      specification(other.specification), arrival(other.arrival),
      loadFactor(other.loadFactor), memoryMode(other.memoryMode),
      rng(other.rng), done(other.done), completion(other.completion),
      progressSec(other.progressSec), elapsedSec(other.elapsedSec),
      requestsServed(other.requestsServed),
      latencies(std::move(other.latencies)),
      slowdownSum(other.slowdownSum), ticks(other.ticks),
      remoteGb(other.remoteGb),
      migrationRemaining(other.migrationRemaining),
      migrationPauseTotal(other.migrationPauseTotal),
      migrationTarget(other.migrationTarget),
      migrationsDone(other.migrationsDone)
{
}

WorkloadInstance &
WorkloadInstance::operator=(WorkloadInstance &&other) noexcept
{
    if (this == &other)
        return *this;
    deploymentId = other.deploymentId;
    specification = other.specification;
    arrival = other.arrival;
    loadFactor = other.loadFactor;
    memoryMode = other.memoryMode;
    rng = other.rng;
    done = other.done;
    completion = other.completion;
    progressSec = other.progressSec;
    elapsedSec = other.elapsedSec;
    requestsServed = other.requestsServed;
    latencies = std::move(other.latencies);
    slowdownSum = other.slowdownSum;
    ticks = other.ticks;
    remoteGb = other.remoteGb;
    migrationRemaining = other.migrationRemaining;
    migrationPauseTotal = other.migrationPauseTotal;
    migrationTarget = other.migrationTarget;
    migrationsDone = other.migrationsDone;
    return *this;
}

void
WorkloadInstance::saveState(io::BinaryWriter &out) const
{
    MutexLock lock(mu);
    out.writeU64(deploymentId);
    out.writeString(specification->name);
    out.writeI64(arrival);
    out.writeF64(loadFactor);
    out.writeU8(static_cast<std::uint8_t>(memoryMode));
    rng.saveState(out);
    out.writeBool(done);
    out.writeI64(completion);
    out.writeF64(progressSec);
    out.writeF64(elapsedSec);
    out.writeF64(requestsServed);
    out.writeF64Vector(latencies.values());
    out.writeF64(slowdownSum);
    out.writeU64(ticks);
    out.writeF64(remoteGb);
    out.writeF64(migrationRemaining);
    out.writeF64(migrationPauseTotal);
    out.writeU8(static_cast<std::uint8_t>(migrationTarget));
    out.writeU64(migrationsDone);
}

Result<std::unique_ptr<WorkloadInstance>>
WorkloadInstance::restoreFromState(io::BinaryReader &in)
{
    const DeploymentId id = in.readU64();
    const std::string specName = in.readString();
    const SimTime arrival = in.readI64();
    const double loadFactor = in.readF64();
    const std::uint8_t rawMode = in.readU8();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "WorkloadInstance: truncated identity fields");
    const WorkloadSpec *spec = findSpec(specName);
    if (spec == nullptr)
        return makeError(ErrorCode::BadToken,
                         "WorkloadInstance: unknown spec '" + specName +
                             "' in snapshot");
    if (rawMode > static_cast<std::uint8_t>(MemoryMode::Remote))
        return makeError(ErrorCode::BadNumber,
                         "WorkloadInstance: invalid memory mode");
    if (loadFactor <= 0.0)
        return makeError(ErrorCode::BadNumber,
                         "WorkloadInstance: non-positive load factor");

    const MemoryMode memoryMode = static_cast<MemoryMode>(rawMode);
    auto instance = std::make_unique<WorkloadInstance>(
        id, *spec, memoryMode, arrival,
        /*seed=*/0, loadFactor);
    MutexLock lock(instance->mu);
    instance->rng.restoreState(in);
    instance->done = in.readBool();
    instance->completion = in.readI64();
    instance->progressSec = in.readF64();
    instance->elapsedSec = in.readF64();
    instance->requestsServed = in.readF64();
    for (double sample : in.readF64Vector())
        instance->latencies.add(sample);
    instance->slowdownSum = in.readF64();
    instance->ticks = in.readU64();
    instance->remoteGb = in.readF64();
    instance->migrationRemaining = in.readF64();
    instance->migrationPauseTotal = in.readF64();
    const std::uint8_t rawTarget = in.readU8();
    instance->migrationsDone = in.readU64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "WorkloadInstance: truncated run state");
    if (rawTarget > static_cast<std::uint8_t>(MemoryMode::Remote))
        return makeError(ErrorCode::BadNumber,
                         "WorkloadInstance: invalid migration target");
    instance->migrationTarget = static_cast<MemoryMode>(rawTarget);
    return instance;
}

testbed::LoadDescriptor
WorkloadInstance::load() const
{
    MutexLock lock(mu);
    testbed::LoadDescriptor descriptor =
        specification->toLoad(deploymentId, memoryMode);
    if (specification->cls == WorkloadClass::LatencyCritical) {
        // Heavier client load raises both CPU and memory pressure.
        descriptor.cpuCores *= loadFactor;
        descriptor.memDemandGBps *= loadFactor;
        descriptor.llcAccessGBps *= loadFactor;
    }
    return descriptor;
}

void
WorkloadInstance::advance(const testbed::LoadOutcome &outcome, SimTime now)
{
    MutexLock lock(mu);
    if (done)
        panic("WorkloadInstance::advance after completion");
    if (outcome.id != deploymentId)
        panic("WorkloadInstance::advance got another instance's outcome");

    const double slowdown = std::max(1.0, outcome.slowdown);
    slowdownSum += slowdown;
    ++ticks;
    elapsedSec += 1.0;
    if (memoryMode == MemoryMode::Remote)
        remoteGb += outcome.achievedGBps; // GB/s over a 1 s tick

    // A migration pause stalls progress while the pool copy runs.
    if (migrationRemaining > 0.0) {
        migrationRemaining -= 1.0;
        // The copy itself crosses the channel, spread over the pause.
        remoteGb +=
            specification->memoryFootprintGb / migrationPauseTotal;
        if (migrationRemaining <= 0.0) {
            memoryMode = migrationTarget;
            ++migrationsDone;
        }
        return;
    }

    switch (specification->cls) {
      case WorkloadClass::BestEffort:
        progressSec += 1.0 / slowdown;
        if (progressSec >= specification->baseDurationSec) {
            done = true;
            completion = now;
        }
        break;
      case WorkloadClass::LatencyCritical:
        advanceLatencyCritical(outcome);
        if (requestsServed >= specification->totalRequests) {
            done = true;
            completion = now;
        }
        break;
      case WorkloadClass::Interference:
        // Trashers run for fixed wall-clock time regardless of their
        // own slowdown.
        if (elapsedSec >= specification->baseDurationSec) {
            done = true;
            completion = now;
        }
        break;
    }
}

void
WorkloadInstance::advanceLatencyCritical(const testbed::LoadOutcome &outcome)
{
    const double slowdown = std::max(1.0, outcome.slowdown);

    // Closed-loop clients: the server drains its nominal rate divided
    // by the slowdown; heavier client load raises utilization and the
    // queueing tail (M/M/1-flavoured inflation, normalized so nominal
    // isolated load gives multiplier 1).
    const double utilization = std::min(
        0.98, kBaseUtilization * loadFactor * slowdown);
    const double queue_mult =
        (1.0 - kBaseUtilization) / (1.0 - utilization);

    // Queueing sanity: a stable server (utilization < 1) implies a
    // finite, non-negative queue depth and latency inflation.
    ADRIAS_INVARIANT_GE(utilization, 0.0);
    ADRIAS_INVARIANT(utilization < 1.0,
                     "utilization=" + std::to_string(utilization));
    ADRIAS_INVARIANT_GE(queue_mult, 0.0);

    // Requests drained this one-second tick.
    requestsServed +=
        specification->serviceRatePerSec * loadFactor / slowdown;
    ADRIAS_INVARIANT_GE(requestsServed, 0.0);

    const double sigma = specification->latencySigma;
    for (int i = 0; i < kSamplesPerTick; ++i) {
        const double noise =
            std::exp(sigma * rng.gaussian() - 0.5 * sigma * sigma);
        const double latency_ms = specification->baseLatencyMs * slowdown *
                                  queue_mult * noise;
        ADRIAS_INVARIANT_FINITE(latency_ms);
        ADRIAS_INVARIANT_GE(latency_ms, 0.0);
        latencies.add(latency_ms);
    }
}

double
WorkloadInstance::executionTimeSec() const
{
    MutexLock lock(mu);
    if (!done)
        return elapsedSec;
    return static_cast<double>(completion - arrival);
}

double
WorkloadInstance::tailLatencyMs(double q) const
{
    MutexLock lock(mu);
    return latencies.quantile(q);
}

double
WorkloadInstance::meanLatencyMs() const
{
    MutexLock lock(mu);
    return latencies.mean();
}

double
WorkloadInstance::meanSlowdown() const
{
    MutexLock lock(mu);
    return ticks == 0 ? 1.0 : slowdownSum / static_cast<double>(ticks);
}

bool
WorkloadInstance::requestMigration(MemoryMode target, double pause_sec)
{
    if (pause_sec <= 0.0)
        fatal("WorkloadInstance::requestMigration: pause must be "
              "positive");
    MutexLock lock(mu);
    if (done)
        panic("WorkloadInstance::requestMigration after completion");
    if (memoryMode == target || migratingLocked())
        return false;
    migrationTarget = target;
    migrationRemaining = pause_sec;
    migrationPauseTotal = pause_sec;
    return true;
}

double
WorkloadInstance::progressFraction() const
{
    MutexLock lock(mu);
    switch (specification->cls) {
      case WorkloadClass::BestEffort:
        return std::min(1.0, progressSec / specification->baseDurationSec);
      case WorkloadClass::LatencyCritical:
        return specification->totalRequests <= 0.0
                   ? 1.0
                   : std::min(1.0, requestsServed /
                                       specification->totalRequests);
      case WorkloadClass::Interference:
        return std::min(1.0, elapsedSec / specification->baseDurationSec);
    }
    return 0.0;
}

} // namespace adrias::workloads
