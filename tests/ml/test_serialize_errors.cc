/** @file Negative-path tests for checkpoint (de)serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "ml/scaler.hh"
#include "ml/serialize.hh"

namespace adrias::ml
{
namespace
{

std::vector<Param>
makeParams()
{
    std::vector<Param> params;
    Matrix w(2, 3);
    for (std::size_t i = 0; i < w.raw().size(); ++i)
        w.raw()[i] = 0.5 * static_cast<double>(i);
    params.emplace_back("w", w);
    params.emplace_back("b", Matrix(1, 3));
    return params;
}

std::vector<Param *>
pointersTo(std::vector<Param> &params)
{
    std::vector<Param *> ptrs;
    for (Param &p : params)
        ptrs.push_back(&p);
    return ptrs;
}

std::string
savedParamsText()
{
    std::vector<Param> params = makeParams();
    std::ostringstream out;
    saveParams(out, pointersTo(params));
    return out.str();
}

TEST(TryLoadParams, RoundTripsHappyPath)
{
    std::istringstream in(savedParamsText());
    std::vector<Param> fresh = makeParams();
    for (Param &p : fresh)
        p.value.setZero();
    const auto ptrs = pointersTo(fresh);
    const Result<void> loaded = tryLoadParams(in, ptrs);
    ASSERT_TRUE(loaded.ok());
    EXPECT_DOUBLE_EQ(fresh[0].value.at(1, 2), 2.5);
}

TEST(TryLoadParams, BadMagicIsBadHeader)
{
    std::istringstream in("not-a-checkpoint v1\n");
    std::vector<Param> params = makeParams();
    const auto ptrs = pointersTo(params);
    const Result<void> loaded = tryLoadParams(in, ptrs);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::BadHeader);
}

TEST(TryLoadParams, CountMismatchIsGeometry)
{
    std::istringstream in(savedParamsText());
    std::vector<Param> params = makeParams();
    params.pop_back();
    const auto ptrs = pointersTo(params);
    const Result<void> loaded = tryLoadParams(in, ptrs);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Geometry);
}

TEST(TryLoadParams, ShapeMismatchIsGeometry)
{
    std::istringstream in(savedParamsText());
    std::vector<Param> params;
    params.emplace_back("w", Matrix(3, 3)); // saved as 2x3
    params.emplace_back("b", Matrix(1, 3));
    const auto ptrs = pointersTo(params);
    const Result<void> loaded = tryLoadParams(in, ptrs);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Geometry);
}

TEST(TryLoadParams, TruncatedPayloadIsTruncated)
{
    const std::string text = savedParamsText();
    std::istringstream in(text.substr(0, text.size() * 2 / 3));
    std::vector<Param> params = makeParams();
    const auto ptrs = pointersTo(params);
    const Result<void> loaded = tryLoadParams(in, ptrs);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Truncated);
}

TEST(TryLoadParams, GarbageTensorValueIsBadNumber)
{
    std::string text = savedParamsText();
    text.replace(text.find("0.5"), 3, "x.y");
    std::istringstream in(text);
    std::vector<Param> params = makeParams();
    const auto ptrs = pointersTo(params);
    const Result<void> loaded = tryLoadParams(in, ptrs);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::BadNumber);
}

TEST(LegacyLoadParams, StillThrowsOnMalformedInput)
{
    std::istringstream in("junk\n");
    std::vector<Param> params = makeParams();
    const auto ptrs = pointersTo(params);
    EXPECT_THROW(loadParams(in, ptrs), std::runtime_error);
}

TEST(TryLoadScaler, RoundTripsHappyPath)
{
    StandardScaler scaler;
    scaler.restore({1.0, 2.0}, {0.5, 0.25});
    std::ostringstream out;
    saveScaler(out, scaler);

    StandardScaler restored;
    std::istringstream in(out.str());
    ASSERT_TRUE(tryLoadScaler(in, restored).ok());
    EXPECT_EQ(restored.mean(), scaler.mean());
    EXPECT_EQ(restored.stddev(), scaler.stddev());
}

TEST(TryLoadScaler, ImplausibleWidthIsGeometryNotBadAlloc)
{
    // A corrupt header must not be trusted as an allocation size.
    std::istringstream in("adrias-scaler v1\n18446744073709551615\n");
    StandardScaler scaler;
    const Result<void> loaded = tryLoadScaler(in, scaler);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Geometry);
    EXPECT_FALSE(scaler.fitted());
}

TEST(TryLoadScaler, TruncatedStatsIsTruncated)
{
    std::istringstream in("adrias-scaler v1\n4\n1.0 2.0\n");
    StandardScaler scaler;
    const Result<void> loaded = tryLoadScaler(in, scaler);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Truncated);
    EXPECT_FALSE(scaler.fitted());
}

TEST(TryLoadScaler, BadMagicIsBadHeader)
{
    std::istringstream in("adrias-params v1\n2\n");
    StandardScaler scaler;
    const Result<void> loaded = tryLoadScaler(in, scaler);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::BadHeader);
}

TEST(TryLoadStateTensors, DiagnosesHeaderShapeAndTruncation)
{
    Matrix m(2, 2);
    m.raw() = {1.0, 2.0, 3.0, 4.0};
    std::ostringstream out;
    saveStateTensors(out, {&m});
    const std::string text = out.str();

    {
        Matrix fresh(2, 2);
        std::istringstream in(text);
        ASSERT_TRUE(tryLoadStateTensors(in, {&fresh}).ok());
        EXPECT_DOUBLE_EQ(fresh.at(1, 1), 4.0);
    }
    {
        Matrix wrong(3, 2);
        std::istringstream in(text);
        const Result<void> loaded = tryLoadStateTensors(in, {&wrong});
        ASSERT_FALSE(loaded.ok());
        EXPECT_EQ(loaded.error().code, ErrorCode::Geometry);
    }
    {
        Matrix fresh(2, 2);
        std::istringstream in(text.substr(0, text.size() - 6));
        const Result<void> loaded = tryLoadStateTensors(in, {&fresh});
        ASSERT_FALSE(loaded.ok());
        EXPECT_EQ(loaded.error().code, ErrorCode::Truncated);
    }
    {
        Matrix fresh(2, 2);
        std::istringstream in("wrong v1\n1\n");
        const Result<void> loaded = tryLoadStateTensors(in, {&fresh});
        ASSERT_FALSE(loaded.ok());
        EXPECT_EQ(loaded.error().code, ErrorCode::BadHeader);
    }
}

} // namespace
} // namespace adrias::ml
