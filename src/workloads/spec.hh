/**
 * @file
 * Static workload descriptions (behaviour models).
 *
 * Each spec parameterizes the contention model of src/testbed for one
 * application: compute share, memory demand, pointer-chasing fraction,
 * LLC behaviour — plus the run model (best-effort work amount or
 * latency-critical request service).  Parameter values are calibrated
 * so the paper's characterization (Figs. 2-5) is reproduced: nweight
 * and lr lose ~2x on remote memory in isolation, gmm/pca lose <10%,
 * the Spark mean is ~20-25%, and in-memory stores are latency-bound
 * but bandwidth-light (R4, R6).
 */

#ifndef ADRIAS_WORKLOADS_SPEC_HH
#define ADRIAS_WORKLOADS_SPEC_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "testbed/load.hh"

namespace adrias::workloads
{

/** iBench resource-trashing microbenchmark flavours (paper §IV). */
enum class IBenchKind
{
    Cpu,
    L2,
    L3,
    MemBw,
};

/** @return canonical name ("cpu", "l2", "l3", "memBw"). */
std::string toString(IBenchKind kind);

/** Static behaviour model of one application. */
struct WorkloadSpec
{
    std::string name;
    WorkloadClass cls = WorkloadClass::BestEffort;

    // --- contention-model knobs (see testbed::LoadDescriptor) ---------
    double cpuCores = 8.0;
    double cpuFraction = 0.6;
    double memDemandGBps = 0.3;
    double latencyBoundFraction = 0.1;
    double llcAccessGBps = 4.0;
    double baseHitRate = 0.85;
    double cacheFootprintMb = 3.0;

    /**
     * Resident memory footprint, GB — the data an L2 runtime mechanism
     * must copy when migrating the app between memory pools.
     */
    double memoryFootprintGb = 2.0;

    // --- best-effort run model ----------------------------------------
    /** Unimpeded execution time of the job, seconds. */
    double baseDurationSec = 60.0;

    // --- latency-critical run model -----------------------------------
    /** Requests served per second when unimpeded. */
    double serviceRatePerSec = 0.0;
    /** Total requests one deployment must serve. */
    double totalRequests = 0.0;
    /** Unimpeded mean request latency, ms. */
    double baseLatencyMs = 0.0;
    /** Lognormal sigma of per-request latency noise. */
    double latencySigma = 0.25;

    /** Build the per-tick load this app presents to the testbed. */
    testbed::LoadDescriptor
    toLoad(DeploymentId id, MemoryMode mode) const
    {
        testbed::LoadDescriptor load;
        load.id = id;
        load.mode = mode;
        load.cpuCores = cpuCores;
        load.cpuFraction = cpuFraction;
        load.memDemandGBps = memDemandGBps;
        load.latencyBoundFraction = latencyBoundFraction;
        load.llcAccessGBps = llcAccessGBps;
        load.baseHitRate = baseHitRate;
        load.cacheFootprintMb = cacheFootprintMb;
        return load;
    }
};

/** @return the 17 HiBench Spark benchmark specs (best-effort). */
const std::vector<WorkloadSpec> &sparkBenchmarks();

/** Look up a Spark benchmark by name. @throws on unknown name. */
const WorkloadSpec &sparkBenchmark(const std::string &name);

/** @return the Redis spec (latency-critical, ~30k ops/s). */
const WorkloadSpec &redisSpec();

/** @return the Memcached spec (latency-critical, ~100k ops/s). */
const WorkloadSpec &memcachedSpec();

/** @return the iBench microbenchmark spec of the given kind. */
const WorkloadSpec &ibenchSpec(IBenchKind kind);

/** @return all LC specs (Redis, Memcached). */
const std::vector<WorkloadSpec> &latencyCriticalBenchmarks();

/**
 * Look up any registered spec (Spark, LC or iBench) by its canonical
 * name — the reverse mapping used when restoring checkpointed workload
 * instances, which serialize the spec by name only.
 *
 * @return pointer into the static registry, or nullptr when unknown.
 */
const WorkloadSpec *findSpec(const std::string &name);

} // namespace adrias::workloads

#endif // ADRIAS_WORKLOADS_SPEC_HH
