/** @file Unit tests for the workload runtime (WorkloadInstance). */

#include <gtest/gtest.h>

#include "testbed/testbed.hh"
#include "workloads/memtier.hh"
#include "workloads/workload.hh"

namespace adrias::workloads
{
namespace
{

testbed::LoadOutcome
outcomeWithSlowdown(DeploymentId id, double slowdown,
                    double achieved = 0.1)
{
    testbed::LoadOutcome outcome;
    outcome.id = id;
    outcome.slowdown = slowdown;
    outcome.achievedGBps = achieved;
    return outcome;
}

TEST(WorkloadInstance, BeFinishesAtBaseDurationWhenUnimpeded)
{
    WorkloadSpec spec = sparkBenchmark("wordcount"); // 45 s
    WorkloadInstance app(1, spec, MemoryMode::Local, 100, 1);
    SimTime now = 100;
    while (!app.finished())
        app.advance(outcomeWithSlowdown(1, 1.0), ++now);
    EXPECT_EQ(app.executionTimeSec(), 45.0);
    EXPECT_DOUBLE_EQ(app.progressFraction(), 1.0);
}

TEST(WorkloadInstance, BeSlowdownStretchesExecution)
{
    WorkloadSpec spec = sparkBenchmark("wordcount");
    WorkloadInstance app(2, spec, MemoryMode::Remote, 0, 1);
    SimTime now = 0;
    while (!app.finished())
        app.advance(outcomeWithSlowdown(2, 1.5), ++now);
    EXPECT_NEAR(app.executionTimeSec(), 45.0 * 1.5, 1.5);
    EXPECT_NEAR(app.meanSlowdown(), 1.5, 1e-9);
}

TEST(WorkloadInstance, AdvanceAfterFinishPanics)
{
    WorkloadSpec spec = sparkBenchmark("wordcount");
    WorkloadInstance app(1, spec, MemoryMode::Local, 0, 1);
    SimTime now = 0;
    while (!app.finished())
        app.advance(outcomeWithSlowdown(1, 1.0), ++now);
    EXPECT_THROW(app.advance(outcomeWithSlowdown(1, 1.0), ++now),
                 std::logic_error);
}

TEST(WorkloadInstance, WrongOutcomeIdPanics)
{
    WorkloadInstance app(1, sparkBenchmark("sort"), MemoryMode::Local, 0,
                         1);
    EXPECT_THROW(app.advance(outcomeWithSlowdown(2, 1.0), 1),
                 std::logic_error);
}

TEST(WorkloadInstance, RemoteTrafficAccumulatesOnlyWhenRemote)
{
    WorkloadInstance local_app(1, sparkBenchmark("sort"),
                               MemoryMode::Local, 0, 1);
    WorkloadInstance remote_app(2, sparkBenchmark("sort"),
                                MemoryMode::Remote, 0, 1);
    for (SimTime t = 1; t <= 10; ++t) {
        local_app.advance(outcomeWithSlowdown(1, 1.0, 0.5), t);
        remote_app.advance(outcomeWithSlowdown(2, 1.0, 0.5), t);
    }
    EXPECT_DOUBLE_EQ(local_app.remoteTrafficGB(), 0.0);
    EXPECT_NEAR(remote_app.remoteTrafficGB(), 5.0, 1e-9);
}

TEST(WorkloadInstance, InterferenceRunsWallClockDuration)
{
    WorkloadSpec spec = ibenchSpec(IBenchKind::L3); // 120 s
    WorkloadInstance trasher(3, spec, MemoryMode::Local, 50, 1);
    SimTime now = 50;
    // Even with huge slowdown a trasher ends after its wall-clock time.
    while (!trasher.finished())
        trasher.advance(outcomeWithSlowdown(3, 10.0), ++now);
    EXPECT_EQ(trasher.executionTimeSec(), 120.0);
}

TEST(WorkloadInstance, LcServesRequestsAndTracksTail)
{
    WorkloadSpec spec = redisSpec();
    WorkloadInstance server(4, spec, MemoryMode::Local, 0, 42);
    SimTime now = 0;
    while (!server.finished() && now < 1000)
        server.advance(outcomeWithSlowdown(4, 1.0), ++now);
    EXPECT_TRUE(server.finished());
    // 8M requests at 30k/s -> ~267 s.
    EXPECT_NEAR(server.executionTimeSec(), 267.0, 3.0);
    EXPECT_GT(server.tailLatencyMs(0.99), server.meanLatencyMs());
    EXPECT_GT(server.tailLatencyMs(0.999), server.tailLatencyMs(0.99));
}

TEST(WorkloadInstance, LcSlowdownInflatesTailSuperlinearly)
{
    WorkloadSpec spec = redisSpec();
    WorkloadInstance fast(5, spec, MemoryMode::Local, 0, 7);
    WorkloadInstance slow(6, spec, MemoryMode::Local, 0, 7);
    for (SimTime t = 1; t <= 60; ++t) {
        fast.advance(outcomeWithSlowdown(5, 1.0), t);
        slow.advance(outcomeWithSlowdown(6, 1.4), t);
    }
    // Queueing makes the tail grow faster than the raw slowdown.
    EXPECT_GT(slow.tailLatencyMs(0.99) / fast.tailLatencyMs(0.99), 1.4);
}

TEST(WorkloadInstance, LcLoadFactorScalesPressureAndLatency)
{
    WorkloadSpec spec = memcachedSpec();
    WorkloadInstance nominal(7, spec, MemoryMode::Local, 0, 9, 1.0);
    WorkloadInstance heavy(8, spec, MemoryMode::Local, 0, 9, 1.5);

    const auto nominal_load = nominal.load();
    const auto heavy_load = heavy.load();
    EXPECT_NEAR(heavy_load.memDemandGBps / nominal_load.memDemandGBps,
                1.5, 1e-9);

    for (SimTime t = 1; t <= 60; ++t) {
        nominal.advance(outcomeWithSlowdown(7, 1.0), t);
        heavy.advance(outcomeWithSlowdown(8, 1.0), t);
    }
    EXPECT_GT(heavy.tailLatencyMs(0.99), nominal.tailLatencyMs(0.99));
}

TEST(WorkloadInstance, RejectsNonPositiveLoadFactor)
{
    EXPECT_THROW(WorkloadInstance(1, redisSpec(), MemoryMode::Local, 0, 1,
                                  0.0),
                 std::runtime_error);
}

TEST(WorkloadInstance, BeLoadIgnoresLoadFactor)
{
    WorkloadInstance app(9, sparkBenchmark("sort"), MemoryMode::Local, 0,
                         1, 2.0);
    EXPECT_DOUBLE_EQ(app.load().memDemandGBps,
                     sparkBenchmark("sort").memDemandGBps);
}

TEST(Memtier, DefaultsMatchPaperSetup)
{
    MemtierConfig config;
    EXPECT_EQ(config.totalClients(), 800u);
    EXPECT_EQ(config.totalRequests(), 8000000u);
    EXPECT_NEAR(config.loadFactor(), 1.0, 1e-9);
    EXPECT_NEAR(config.setFraction, 1.0 / 11.0, 1e-12);
}

TEST(Memtier, LoadFactorScalesWithClients)
{
    MemtierConfig config;
    config.clientsPerThread = 100;
    EXPECT_NEAR(config.loadFactor(), 0.5, 1e-9);
}

TEST(EndToEnd, IsolatedRemoteVsLocalExecutionTimes)
{
    // Drive two full runs through the real testbed: the remote run of a
    // bandwidth-hungry app must take noticeably longer.
    testbed::Testbed bed;
    bed.setNoise(0.0);
    auto run = [&](MemoryMode mode) {
        WorkloadInstance app(1, sparkBenchmark("lr"), mode, 0, 3);
        SimTime now = 0;
        while (!app.finished()) {
            const auto result = bed.tick({app.load()});
            app.advance(result.outcomes.at(0), ++now);
        }
        return app.executionTimeSec();
    };
    const double local = run(MemoryMode::Local);
    const double remote = run(MemoryMode::Remote);
    EXPECT_NEAR(local, 65.0, 3.0);
    EXPECT_GT(remote / local, 1.5);
}

} // namespace
} // namespace adrias::workloads
