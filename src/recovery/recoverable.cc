#include "recovery/recoverable.hh"

#include <algorithm>
#include <filesystem>
#include <string_view>
#include <utility>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace adrias::recovery
{

namespace
{

constexpr const char *kJournalPrefix = "journal-";
constexpr const char *kJournalSuffix = ".adj";

/** Parse the epoch out of "journal-<tick>.adj"; -1 when not one. */
SimTime
parseJournalTick(const std::string &filename)
{
    const std::string prefix(kJournalPrefix);
    const std::string suffix(kJournalSuffix);
    if (filename.size() <= prefix.size() + suffix.size() ||
        filename.compare(0, prefix.size(), prefix) != 0 ||
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
        return -1;
    const std::string digits = filename.substr(
        prefix.size(), filename.size() - prefix.size() - suffix.size());
    SimTime tick = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return -1;
        tick = tick * 10 + (c - '0');
    }
    return tick;
}

} // namespace

RecoverableScenario::RecoverableScenario(scenario::ScenarioConfig config_,
                                         testbed::TestbedParams params,
                                         RecoveryConfig recovery_)
    : config(config_), recovery(std::move(recovery_)),
      manager(CheckpointConfig{recovery.dir, recovery.checkpointEverySec,
                               recovery.keepSnapshots}),
      engineState(std::make_unique<scenario::ScenarioEngine>(config_,
                                                             params))
{
    manager.attach(*engineState);
}

void
RecoverableScenario::attachSection(io::Checkpointable &section)
{
    if (started)
        panic("RecoverableScenario: attachSection after start()");
    manager.attach(section);
}

void
RecoverableScenario::setCrashInjector(fault::CrashInjector *injector)
{
    crash = injector;
    wireJournalChaos();
}

std::string
RecoverableScenario::journalPath(SimTime epochTick) const
{
    return recovery.dir + "/" + kJournalPrefix +
           std::to_string(epochTick) + kJournalSuffix;
}

std::vector<SimTime>
RecoverableScenario::journalTicks() const
{
    std::vector<SimTime> ticks;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(recovery.dir, ec)) {
        const SimTime tick =
            parseJournalTick(entry.path().filename().string());
        if (tick >= 0)
            ticks.push_back(tick);
    }
    std::sort(ticks.begin(), ticks.end());
    return ticks;
}

Result<RecoveryReport>
RecoverableScenario::start()
{
    if (started)
        panic("RecoverableScenario::start called twice");
    started = true;

    std::error_code ec;
    std::filesystem::create_directories(recovery.dir, ec);
    manager.removeOrphanTempFiles();

    Result<RestoreOutcome> outcome = manager.restoreLatest();
    if (!outcome.ok())
        return outcome.error();

    RecoveryReport report;
    report.restored = outcome.value().restored;
    report.snapshotTick = outcome.value().snapshotTick;
    report.rejectedSnapshots = outcome.value().rejectedSnapshots;

    // Replay every journal epoch at or after the restored snapshot, in
    // epoch order.  Older epochs describe ticks the snapshot already
    // contains and are skipped whole.
    const SimTime snapTick = report.snapshotTick;
    SimTime currentEpoch = snapTick;
    for (SimTime epoch : journalTicks()) {
        if (epoch < snapTick)
            continue;
        Result<DecisionJournal::LoadResult> loaded =
            DecisionJournal::loadAndCompact(journalPath(epoch));
        if (!loaded.ok())
            return loaded.error();
        if (loaded.value().tornTail)
            ++report.tornTails;
        for (const scenario::PlacementDecision &decision :
             loaded.value().decisions) {
            engineState->queueReplayDecision(decision);
            ++report.replayedDecisions;
        }
        currentEpoch = epoch;
    }

    // Appends continue in the NEWEST epoch on disk even when recovery
    // fell back to an older snapshot — epoch files must stay
    // tick-ordered for the next recovery's ascending replay.
    const std::string path = journalPath(currentEpoch);
    const bool resume = std::filesystem::exists(path);
    if (Result<void> opened = journal.open(path, resume); !opened.ok())
        return opened.error();
    wireJournalChaos();
    engineState->setDecisionSink(&journal);

#if ADRIAS_OBS_ENABLED
    if (obs::enabled() && report.replayedDecisions > 0) {
        static obs::Counter &replayed_c =
            obs::MetricsRegistry::global().counter(
                "recovery.decisions_replayed");
        replayed_c.add(report.replayedDecisions);
    }
#endif

    lastReport = report;
    return report;
}

scenario::ScenarioResult
RecoverableScenario::run(scenario::PlacementPolicy &policy,
                         scenario::RuntimePolicy *runtime)
{
    if (!journal.isOpen())
        panic("RecoverableScenario::run before successful start()");
    while (!engineState->finished()) {
        if (crash)
            crash->maybeCrash(fault::CrashSite::BetweenTicks,
                              engineState->now());
        engineState->stepTick(policy, runtime);
        maybeCheckpoint();
    }
    journal.close();
    return engineState->finish();
}

void
RecoverableScenario::maybeCheckpoint()
{
    // Decisions still queued for replay belong to the previous journal
    // epoch; snapshotting mid-replay would tear the epoch boundary.
    if (engineState->pendingReplay() > 0)
        return;
    const SimTime now = engineState->now();
    if (!manager.due(now))
        return;

    manager.setChaosHook(
        [this, now](const char *stage, std::size_t) {
            if (!crash)
                return;
            const std::string_view s(stage);
            if (s == "payload-half")
                crash->maybeCrash(fault::CrashSite::MidCheckpoint, now);
            else if (s == "pre-rename")
                crash->maybeCrash(
                    fault::CrashSite::BeforeCheckpointRename, now);
        });
    if (Result<void> written = manager.checkpointNow(now);
        !written.ok()) {
        // A failed snapshot costs durability, not correctness: the
        // previous snapshot plus a longer journal still recover this
        // run, so keep simulating.
        logWarn("RecoverableScenario: checkpoint at t=" +
                std::to_string(now) +
                " failed: " + written.error().toString());
        return;
    }
    rotateJournal(now);
}

void
RecoverableScenario::rotateJournal(SimTime snapTick)
{
    journal.close();
    if (Result<void> opened = journal.open(journalPath(snapTick));
        !opened.ok())
        fatal("RecoverableScenario: cannot open journal epoch '" +
              journalPath(snapTick) +
              "': " + opened.error().toString());
    wireJournalChaos();

    // Journals older than the oldest kept snapshot can never be
    // replayed again.
    const SimTime oldest = manager.oldestKeptTick();
    for (SimTime epoch : journalTicks()) {
        if (epoch >= oldest)
            continue;
        std::error_code ec;
        std::filesystem::remove(journalPath(epoch), ec);
    }
}

void
RecoverableScenario::wireJournalChaos()
{
    journal.setChaosHook([this](const char *stage, std::size_t) {
        if (crash && std::string_view(stage) == "record-half")
            crash->maybeCrash(fault::CrashSite::MidJournalAppend,
                              engineState->now());
    });
}

} // namespace adrias::recovery
