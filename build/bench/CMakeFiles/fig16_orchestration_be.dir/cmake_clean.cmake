file(REMOVE_RECURSE
  "CMakeFiles/fig16_orchestration_be.dir/fig16_orchestration_be.cc.o"
  "CMakeFiles/fig16_orchestration_be.dir/fig16_orchestration_be.cc.o.d"
  "fig16_orchestration_be"
  "fig16_orchestration_be.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_orchestration_be.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
