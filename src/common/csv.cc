#include "common/csv.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace adrias
{

CsvWriter::CsvWriter(const std::string &path) : out(path)
{
    if (!out)
        fatal("CsvWriter: cannot open '" + path + "' for writing");
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out << escape(cells[i]);
        if (i + 1 < cells.size())
            out << ',';
    }
    out << '\n';
    ++rowsWritten;
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, 6));
    writeRow(cells);
}

void
CsvWriter::close()
{
    out.close();
}

} // namespace adrias
