#include "scenario/dataset_io.hh"

#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/table.hh"
#include "common/logging.hh"
#include "testbed/counters.hh"

namespace adrias::scenario
{

using testbed::kNumPerfEvents;

namespace
{

constexpr std::size_t kBins = ScenarioRunner::kWindowBins;

/** Append a time-major sequence's cells to a flat row. */
void
appendSequence(std::vector<double> &row,
               const std::vector<ml::Matrix> &sequence)
{
    if (sequence.size() != kBins)
        fatal("dataset_io: sequence length mismatch");
    for (const ml::Matrix &step : sequence)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(step.at(0, e));
}

/** Read a sequence back from a flat cell span. */
std::vector<ml::Matrix>
readSequence(const std::vector<std::string> &cells, std::size_t &cursor)
{
    std::vector<ml::Matrix> sequence;
    sequence.reserve(kBins);
    for (std::size_t b = 0; b < kBins; ++b) {
        ml::Matrix step(1, kNumPerfEvents);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
            if (cursor >= cells.size())
                fatal("dataset_io: truncated row");
            step.at(0, e) = std::stod(cells[cursor++]);
        }
        sequence.push_back(std::move(step));
    }
    return sequence;
}

ml::Matrix
readRowVector(const std::vector<std::string> &cells, std::size_t &cursor)
{
    ml::Matrix vec(1, kNumPerfEvents);
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
        if (cursor >= cells.size())
            fatal("dataset_io: truncated row");
        vec.at(0, e) = std::stod(cells[cursor++]);
    }
    return vec;
}

/** Split one CSV line (fields are numbers/identifiers, no quoting). */
std::vector<std::string>
splitLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream in(line);
    while (std::getline(in, cell, ','))
        cells.push_back(cell);
    return cells;
}

std::string
classToken(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::BestEffort:
        return "be";
      case WorkloadClass::LatencyCritical:
        return "lc";
      case WorkloadClass::Interference:
        return "ib";
    }
    panic("unknown WorkloadClass");
}

WorkloadClass
classFromToken(const std::string &token)
{
    if (token == "be")
        return WorkloadClass::BestEffort;
    if (token == "lc")
        return WorkloadClass::LatencyCritical;
    if (token == "ib")
        return WorkloadClass::Interference;
    fatal("dataset_io: unknown class token '" + token + "'");
}

} // namespace

void
saveSystemStateCsv(const std::string &path,
                   const std::vector<SystemStateSample> &samples)
{
    CsvWriter csv(path);
    csv.writeRow({"# adrias-system-state-v1",
                  std::to_string(kBins),
                  std::to_string(kNumPerfEvents)});
    for (const SystemStateSample &sample : samples) {
        std::vector<double> row;
        row.reserve(kBins * kNumPerfEvents + kNumPerfEvents);
        appendSequence(row, sample.history);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(sample.target.at(0, e));
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (double v : row)
            cells.push_back(formatDouble(v, 9));
        csv.writeRow(cells);
    }
}

std::vector<SystemStateSample>
loadSystemStateCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadSystemStateCsv: cannot open '" + path + "'");
    std::string line;
    if (!std::getline(in, line) ||
        line.find("# adrias-system-state-v1") != 0)
        fatal("loadSystemStateCsv: bad header");
    const auto header = splitLine(line);
    if (header.size() != 3 ||
        std::stoul(header[1]) != kBins ||
        std::stoul(header[2]) != kNumPerfEvents)
        fatal("loadSystemStateCsv: geometry mismatch");

    std::vector<SystemStateSample> samples;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto cells = splitLine(line);
        std::size_t cursor = 0;
        SystemStateSample sample;
        sample.history = readSequence(cells, cursor);
        sample.target = readRowVector(cells, cursor);
        if (cursor != cells.size())
            fatal("loadSystemStateCsv: trailing cells");
        samples.push_back(std::move(sample));
    }
    return samples;
}

void
savePerformanceCsv(const std::string &path,
                   const std::vector<PerformanceSample> &samples)
{
    CsvWriter csv(path);
    csv.writeRow({"# adrias-performance-v1",
                  std::to_string(kBins),
                  std::to_string(kNumPerfEvents)});
    for (const PerformanceSample &sample : samples) {
        std::vector<std::string> cells;
        cells.push_back(sample.name);
        cells.push_back(classToken(sample.cls));
        cells.push_back(toString(sample.mode));
        cells.push_back(formatDouble(sample.target, 9));
        std::vector<double> row;
        appendSequence(row, sample.history);
        appendSequence(row, sample.signature);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(sample.futureWindow.at(0, e));
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(sample.futureExec.at(0, e));
        for (double v : row)
            cells.push_back(formatDouble(v, 9));
        csv.writeRow(cells);
    }
}

std::vector<PerformanceSample>
loadPerformanceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadPerformanceCsv: cannot open '" + path + "'");
    std::string line;
    if (!std::getline(in, line) ||
        line.find("# adrias-performance-v1") != 0)
        fatal("loadPerformanceCsv: bad header");
    const auto header = splitLine(line);
    if (header.size() != 3 ||
        std::stoul(header[1]) != kBins ||
        std::stoul(header[2]) != kNumPerfEvents)
        fatal("loadPerformanceCsv: geometry mismatch");

    std::vector<PerformanceSample> samples;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto cells = splitLine(line);
        if (cells.size() < 4)
            fatal("loadPerformanceCsv: short row");
        PerformanceSample sample;
        sample.name = cells[0];
        sample.cls = classFromToken(cells[1]);
        sample.mode = memoryModeFromString(cells[2]);
        sample.target = std::stod(cells[3]);
        std::size_t cursor = 4;
        sample.history = readSequence(cells, cursor);
        sample.signature = readSequence(cells, cursor);
        sample.futureWindow = readRowVector(cells, cursor);
        sample.futureExec = readRowVector(cells, cursor);
        if (cursor != cells.size())
            fatal("loadPerformanceCsv: trailing cells");
        samples.push_back(std::move(sample));
    }
    return samples;
}

} // namespace adrias::scenario
