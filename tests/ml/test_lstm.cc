/** @file Gradient-checked and behavioural tests for the LSTM layer. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/loss.hh"
#include "ml/lstm.hh"
#include "gradient_check.hh"

namespace adrias::ml
{
namespace
{

std::vector<Matrix>
randomSequence(std::size_t steps, std::size_t batch, std::size_t features,
               Rng &rng)
{
    std::vector<Matrix> seq;
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix m(batch, features);
        for (double &x : m.raw())
            x = rng.gaussian();
        seq.push_back(std::move(m));
    }
    return seq;
}

TEST(Lstm, OutputShapes)
{
    Rng rng(1);
    Lstm lstm(5, 7, rng);
    const auto out = lstm.forwardSequence(randomSequence(4, 3, 5, rng));
    ASSERT_EQ(out.size(), 4u);
    for (const auto &h : out) {
        EXPECT_EQ(h.rows(), 3u);
        EXPECT_EQ(h.cols(), 7u);
    }
}

TEST(Lstm, EmptySequenceIsFatal)
{
    Rng rng(2);
    Lstm lstm(2, 2, rng);
    EXPECT_THROW(lstm.forwardSequence({}), std::runtime_error);
}

TEST(Lstm, InconsistentStepShapePanics)
{
    Rng rng(3);
    Lstm lstm(2, 2, rng);
    std::vector<Matrix> seq{Matrix(1, 2), Matrix(1, 3)};
    EXPECT_THROW(lstm.forwardSequence(seq), std::logic_error);
}

TEST(Lstm, HiddenStateIsBounded)
{
    // h = o * tanh(c) with o in (0,1) implies |h| < 1.
    Rng rng(4);
    Lstm lstm(3, 6, rng);
    const auto out = lstm.forwardSequence(randomSequence(50, 2, 3, rng));
    for (const auto &h : out)
        EXPECT_LT(h.maxAbs(), 1.0);
}

TEST(Lstm, DeterministicGivenWeights)
{
    Rng rng_a(5), rng_b(5), rng_data(6);
    Lstm a(3, 4, rng_a);
    Lstm b(3, 4, rng_b);
    const auto seq = randomSequence(5, 2, 3, rng_data);
    const auto out_a = a.forwardSequence(seq);
    const auto out_b = b.forwardSequence(seq);
    for (std::size_t t = 0; t < out_a.size(); ++t)
        EXPECT_DOUBLE_EQ((out_a[t] - out_b[t]).maxAbs(), 0.0);
}

TEST(Lstm, BackwardLengthMismatchPanics)
{
    Rng rng(7);
    Lstm lstm(2, 3, rng);
    lstm.forwardSequence(randomSequence(3, 1, 2, rng));
    std::vector<Matrix> wrong(2, Matrix(1, 3));
    EXPECT_THROW(lstm.backwardSequence(wrong), std::logic_error);
}

/** Scalar loss: MSE of the last hidden state against a fixed target. */
double
lastHiddenLoss(Lstm &lstm, const std::vector<Matrix> &seq,
               const Matrix &target)
{
    const auto out = lstm.forwardSequence(seq);
    return mseLoss(out.back(), target);
}

TEST(Lstm, InputGradientMatchesNumerical)
{
    Rng rng(8);
    Lstm lstm(3, 4, rng);
    auto seq = randomSequence(4, 2, 3, rng);
    Matrix target(2, 4);
    for (double &x : target.raw())
        x = rng.gaussian();

    const auto out = lstm.forwardSequence(seq);
    std::vector<Matrix> grad_hidden(seq.size(), Matrix(2, 4));
    mseLoss(out.back(), target, &grad_hidden.back());
    const auto grad_inputs = lstm.backwardSequence(grad_hidden);

    for (std::size_t t = 0; t < seq.size(); ++t) {
        Matrix &step = seq[t];
        const double err = testutil::maxGradientError(
            step, grad_inputs[t],
            [&] { return lastHiddenLoss(lstm, seq, target); });
        EXPECT_LT(err, 1e-4) << "timestep " << t;
    }
}

TEST(Lstm, ParameterGradientsMatchNumerical)
{
    Rng rng(9);
    Lstm lstm(2, 3, rng);
    auto seq = randomSequence(5, 2, 2, rng);
    Matrix target(2, 3);
    for (double &x : target.raw())
        x = rng.gaussian();

    for (Param *p : lstm.params())
        p->zeroGrad();
    const auto out = lstm.forwardSequence(seq);
    std::vector<Matrix> grad_hidden(seq.size(), Matrix(2, 3));
    mseLoss(out.back(), target, &grad_hidden.back());
    lstm.backwardSequence(grad_hidden);

    for (Param *p : lstm.params()) {
        const double err = testutil::maxGradientError(
            p->value, p->grad,
            [&] { return lastHiddenLoss(lstm, seq, target); });
        EXPECT_LT(err, 1e-4) << "param " << p->name;
    }
}

TEST(Lstm, GradientWithFullSequenceSupervision)
{
    // Supervise every timestep, not just the last one.
    Rng rng(10);
    Lstm lstm(2, 3, rng);
    auto seq = randomSequence(3, 1, 2, rng);
    std::vector<Matrix> targets;
    for (std::size_t t = 0; t < 3; ++t) {
        Matrix m(1, 3);
        for (double &x : m.raw())
            x = rng.gaussian();
        targets.push_back(std::move(m));
    }

    auto full_loss = [&] {
        const auto out = lstm.forwardSequence(seq);
        double total = 0.0;
        for (std::size_t t = 0; t < out.size(); ++t)
            total += mseLoss(out[t], targets[t]);
        return total;
    };

    for (Param *p : lstm.params())
        p->zeroGrad();
    const auto out = lstm.forwardSequence(seq);
    std::vector<Matrix> grad_hidden;
    for (std::size_t t = 0; t < out.size(); ++t) {
        Matrix g;
        mseLoss(out[t], targets[t], &g);
        grad_hidden.push_back(std::move(g));
    }
    lstm.backwardSequence(grad_hidden);

    for (Param *p : lstm.params()) {
        const double err =
            testutil::maxGradientError(p->value, p->grad, full_loss);
        EXPECT_LT(err, 1e-4) << "param " << p->name;
    }
}

TEST(Lstm, ForgetBiasInitializedToOne)
{
    Rng rng(11);
    Lstm lstm(2, 4, rng);
    Param *bias = lstm.params()[2];
    for (std::size_t c = 4; c < 8; ++c)
        EXPECT_DOUBLE_EQ(bias->value.at(0, c), 1.0);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(bias->value.at(0, c), 0.0);
}

} // namespace
} // namespace adrias::ml
