/**
 * @file
 * checkpoint-coverage pass: every non-static data member of a class
 * implementing the Checkpointable saveState/restoreState pair must be
 * referenced in *both* bodies, or carry ADRIAS_NOT_CHECKPOINTED.
 *
 * Mechanics: the save side is the transitive closure of `saveState`
 * over same-class calls (a saveState that delegates to exportState()
 * still covers the members exportState touches); the restore side
 * closes over `restoreState` and `restoreFromState` (the static
 * factory-style spelling).  Classes where either side has no body in
 * the indexed tree — pure interfaces, forward declarations — are
 * skipped.  Mutex members are synchronization, not state, and are
 * exempt, as are static members (shared, not per-instance state).
 */

#include "analyze/passes.hh"

#include "lint/source.hh"

namespace adrias::analyze
{

void
runCheckpointCoverage(const Index &index, std::vector<Finding> &findings)
{
    for (const Class &cls : index.classes) {
        const std::string save =
            index.transitiveBodies(cls, {"saveState"});
        const std::string restore = index.transitiveBodies(
            cls, {"restoreState", "restoreFromState"});
        if (lint::trimmed(save).empty() ||
            lint::trimmed(restore).empty())
            continue; // not a (concrete) checkpointable class

        const std::set<std::string> saveIds = identifierSet(save);
        const std::set<std::string> restoreIds = identifierSet(restore);
        for (const Member &member : cls.members) {
            if (member.isStatic || member.notCheckpointed)
                continue;
            const std::set<std::string> typeIds =
                identifierSet(member.type);
            if (typeIds.count("Mutex") || typeIds.count("mutex"))
                continue; // synchronization primitive, not state
            const bool inSave = saveIds.count(member.name) > 0;
            const bool inRestore = restoreIds.count(member.name) > 0;
            if (inSave && inRestore)
                continue;
            const std::string missing =
                (!inSave && !inRestore) ? "saveState or restoreState"
                : !inSave               ? "saveState"
                                        : "restoreState";
            findings.push_back(
                {member.file, member.line, "checkpoint-coverage",
                 "member '" + member.name + "' of checkpointable class '" +
                     cls.name + "' is not referenced in " + missing +
                     "; serialize it in both, or mark it "
                     "ADRIAS_NOT_CHECKPOINTED(reason)"});
        }
    }
}

} // namespace adrias::analyze
