/** @file Unit tests for the ThymesisFlow testbed contention model. */

#include <gtest/gtest.h>

#include "testbed/testbed.hh"
#include "workloads/spec.hh"

namespace adrias::testbed
{
namespace
{

using workloads::IBenchKind;
using workloads::ibenchSpec;

Testbed
quietTestbed()
{
    Testbed testbed;
    testbed.setNoise(0.0);
    return testbed;
}

TEST(LlcModel, NoContentionKeepsBaseHitRate)
{
    EXPECT_DOUBLE_EQ(llcEffectiveHitRate(0.9, 5.0, 15.0, 20.0), 0.9);
    EXPECT_DOUBLE_EQ(llcEffectiveHitRate(0.9, 5.0, 20.0, 20.0), 0.9);
}

TEST(LlcModel, OversubscriptionDegradesProportionally)
{
    // 40 MB competing for 20 MB -> half the hot set resident.
    EXPECT_DOUBLE_EQ(llcEffectiveHitRate(0.9, 5.0, 40.0, 20.0), 0.45);
}

TEST(LlcModel, Monotonic)
{
    double prev = 1.0;
    for (double total = 10.0; total <= 200.0; total += 10.0) {
        const double h = llcEffectiveHitRate(0.85, 5.0, total, 20.0);
        EXPECT_LE(h, prev);
        prev = h;
    }
}

TEST(LlcModel, InputValidation)
{
    EXPECT_THROW(llcEffectiveHitRate(0.9, 1.0, 2.0, 0.0),
                 std::runtime_error);
    EXPECT_THROW(llcEffectiveHitRate(0.9, 5.0, 2.0, 20.0),
                 std::logic_error);
}

TEST(ChannelLatency, SteadyBelowRampStart)
{
    TestbedParams params;
    EXPECT_DOUBLE_EQ(channelLatencyCycles(params, 0.0), 350.0);
    EXPECT_DOUBLE_EQ(channelLatencyCycles(params, 1.0), 350.0);
    EXPECT_DOUBLE_EQ(channelLatencyCycles(params, params.channelRampStart),
                     350.0);
}

TEST(ChannelLatency, PlateauAboveRampEnd)
{
    TestbedParams params;
    EXPECT_DOUBLE_EQ(channelLatencyCycles(params, params.channelRampEnd),
                     900.0);
    EXPECT_DOUBLE_EQ(channelLatencyCycles(params, 10.0), 900.0);
}

TEST(ChannelLatency, MonotoneRampBetween)
{
    TestbedParams params;
    double prev = 0.0;
    for (double p = 0.0; p < 4.0; p += 0.1) {
        const double lat = channelLatencyCycles(params, p);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
}

TEST(ChannelLatency, NegativePressurePanics)
{
    TestbedParams params;
    EXPECT_THROW(channelLatencyCycles(params, -0.1), std::logic_error);
}

TEST(Testbed, RejectsBadParams)
{
    TestbedParams bad;
    bad.remoteBwGBps = 0.0;
    EXPECT_THROW(Testbed{bad}, std::runtime_error);
    TestbedParams bad2;
    bad2.llcCapacityMb = -1.0;
    EXPECT_THROW(Testbed{bad2}, std::runtime_error);
}

TEST(Testbed, EmptyTickIsQuiet)
{
    Testbed testbed = quietTestbed();
    const TickResult result = testbed.tick({});
    EXPECT_TRUE(result.outcomes.empty());
    EXPECT_DOUBLE_EQ(result.remoteTrafficGBps, 0.0);
    EXPECT_DOUBLE_EQ(result.channelLatencyCycles, 350.0);
    for (double c : result.counters)
        EXPECT_GE(c, 0.0);
    EXPECT_DOUBLE_EQ(
        result.counters[static_cast<std::size_t>(PerfEvent::RemoteTx)],
        0.0);
}

TEST(Testbed, SingleLocalAppRunsUnimpeded)
{
    Testbed testbed = quietTestbed();
    LoadDescriptor load = workloads::sparkBenchmark("gmm").toLoad(
        1, MemoryMode::Local);
    const TickResult result = testbed.tick({load});
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_NEAR(result.outcomes[0].slowdown, 1.0, 0.02);
    EXPECT_DOUBLE_EQ(result.remoteTrafficGBps, 0.0);
}

TEST(Testbed, LocalOnlyTickProducesNoFlits)
{
    Testbed testbed = quietTestbed();
    std::vector<LoadDescriptor> loads;
    for (int i = 0; i < 4; ++i)
        loads.push_back(workloads::sparkBenchmark("sort").toLoad(
            i, MemoryMode::Local));
    const TickResult result = testbed.tick(loads);
    EXPECT_DOUBLE_EQ(
        result.counters[static_cast<std::size_t>(PerfEvent::RemoteTx)],
        0.0);
    EXPECT_DOUBLE_EQ(
        result.counters[static_cast<std::size_t>(PerfEvent::RemoteRx)],
        0.0);
}

TEST(Testbed, RemoteTrafficBoundedByChannelCap)
{
    // Observation R1: no matter the offered load, achieved remote
    // traffic never exceeds ~2.5 Gbps.
    Testbed testbed = quietTestbed();
    std::vector<LoadDescriptor> loads;
    for (int i = 0; i < 32; ++i)
        loads.push_back(ibenchSpec(IBenchKind::MemBw)
                            .toLoad(i, MemoryMode::Remote));
    const TickResult result = testbed.tick(loads);
    EXPECT_LE(result.remoteTrafficGBps,
              testbed.params().remoteBwGBps + 1e-9);
    EXPECT_GT(result.remoteTrafficGBps,
              0.9 * testbed.params().remoteBwGBps);
}

TEST(Testbed, ChannelFaultDeratesBandwidthAndLatency)
{
    Testbed testbed = quietTestbed();
    std::vector<LoadDescriptor> loads;
    for (int i = 0; i < 32; ++i)
        loads.push_back(ibenchSpec(IBenchKind::MemBw)
                            .toLoad(i, MemoryMode::Remote));

    const TickResult healthy = testbed.tick(loads);
    EXPECT_FALSE(testbed.channelFaulted());

    testbed.setChannelFault(0.25, 2.0);
    EXPECT_TRUE(testbed.channelFaulted());
    const TickResult degraded = testbed.tick(loads);
    // Achieved traffic tracks the derated cap...
    EXPECT_LE(degraded.remoteTrafficGBps,
              0.25 * testbed.params().remoteBwGBps + 1e-9);
    // ...and latency reflects both the scale and the extra pressure.
    EXPECT_GT(degraded.channelLatencyCycles,
              healthy.channelLatencyCycles);
    EXPECT_GT(degraded.channelPressure, healthy.channelPressure);

    testbed.clearChannelFault();
    EXPECT_FALSE(testbed.channelFaulted());
    const TickResult recovered = testbed.tick(loads);
    EXPECT_NEAR(recovered.remoteTrafficGBps, healthy.remoteTrafficGBps,
                1e-9);
}

TEST(Testbed, ChannelFaultValidatesArguments)
{
    Testbed testbed = quietTestbed();
    EXPECT_THROW(testbed.setChannelFault(0.0, 1.0), std::runtime_error);
    EXPECT_THROW(testbed.setChannelFault(1.5, 1.0), std::runtime_error);
    EXPECT_THROW(testbed.setChannelFault(0.5, 0.5), std::runtime_error);
}

TEST(Testbed, Fig2LatencyStepUnderSaturation)
{
    // Observation R2: ~350 cycles for 1-4 memBw trashers, ~900 for 8+.
    Testbed testbed = quietTestbed();
    auto latency_for = [&](int n) {
        std::vector<LoadDescriptor> loads;
        for (int i = 0; i < n; ++i)
            loads.push_back(ibenchSpec(IBenchKind::MemBw)
                                .toLoad(i, MemoryMode::Remote));
        return testbed.tick(loads).channelLatencyCycles;
    };
    EXPECT_NEAR(latency_for(1), 350.0, 1.0);
    EXPECT_NEAR(latency_for(2), 350.0, 1.0);
    EXPECT_LT(latency_for(4), 500.0);
    EXPECT_NEAR(latency_for(8), 900.0, 60.0);
    EXPECT_NEAR(latency_for(16), 900.0, 1.0);
    EXPECT_NEAR(latency_for(32), 900.0, 1.0);
}

TEST(Testbed, Fig2ThroughputRisesThenPlateaus)
{
    Testbed testbed = quietTestbed();
    auto traffic_for = [&](int n) {
        std::vector<LoadDescriptor> loads;
        for (int i = 0; i < n; ++i)
            loads.push_back(ibenchSpec(IBenchKind::MemBw)
                                .toLoad(i, MemoryMode::Remote));
        return testbed.tick(loads).remoteTrafficGBps;
    };
    const double t1 = traffic_for(1);
    const double t2 = traffic_for(2);
    const double t8 = traffic_for(8);
    const double t32 = traffic_for(32);
    EXPECT_GT(t2, 1.8 * t1); // near-linear ramp below saturation
    EXPECT_NEAR(t8, t32, 1e-9); // plateau
    EXPECT_LT(t1, t8);
}

TEST(Testbed, CpuOversubscriptionSlowsComputeBoundApps)
{
    Testbed testbed = quietTestbed();
    std::vector<LoadDescriptor> loads;
    LoadDescriptor app;
    app.id = 0;
    app.cpuCores = 8.0;
    app.cpuFraction = 1.0;
    app.memDemandGBps = 0.0;
    loads.push_back(app);
    for (int i = 1; i <= 30; ++i)
        loads.push_back(ibenchSpec(IBenchKind::Cpu)
                            .toLoad(i, MemoryMode::Local));
    const TickResult result = testbed.tick(loads);
    // 8 + 30*4 = 128 demanded cores on a 64-core node -> ~2x.
    EXPECT_NEAR(result.outcomes[0].slowdown, 2.0, 0.1);
}

TEST(Testbed, RemoteLatencyReportedPerPool)
{
    Testbed testbed = quietTestbed();
    LoadDescriptor local_app = workloads::sparkBenchmark("gmm").toLoad(
        0, MemoryMode::Local);
    LoadDescriptor remote_app = workloads::sparkBenchmark("gmm").toLoad(
        1, MemoryMode::Remote);
    const TickResult result = testbed.tick({local_app, remote_app});
    EXPECT_NEAR(result.outcomes[0].latencyNs, 80.0, 10.0);
    EXPECT_GE(result.outcomes[1].latencyNs, 900.0 - 1.0);
}

TEST(Testbed, SlowdownNeverBelowOne)
{
    Testbed testbed = quietTestbed();
    std::vector<LoadDescriptor> loads;
    for (int i = 0; i < 10; ++i)
        loads.push_back(workloads::sparkBenchmark("pca").toLoad(
            i, i % 2 ? MemoryMode::Remote : MemoryMode::Local));
    for (const auto &outcome : testbed.tick(loads).outcomes)
        EXPECT_GE(outcome.slowdown, 1.0);
}

TEST(Testbed, CounterNoiseIsBounded)
{
    Testbed noisy(TestbedParams{}, 7);
    noisy.setNoise(0.01);
    Testbed quiet = quietTestbed();
    LoadDescriptor load = workloads::sparkBenchmark("sort").toLoad(
        0, MemoryMode::Local);
    const auto noisy_counters = noisy.tick({load}).counters;
    const auto quiet_counters = quiet.tick({load}).counters;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (quiet_counters[i] == 0.0)
            continue;
        EXPECT_NEAR(noisy_counters[i] / quiet_counters[i], 1.0, 0.1);
    }
}

TEST(Counters, NamesAreUniqueAndStable)
{
    std::vector<std::string> names;
    for (PerfEvent event : allPerfEvents())
        names.push_back(perfEventName(event));
    ASSERT_EQ(names.size(), kNumPerfEvents);
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
    EXPECT_EQ(perfEventName(PerfEvent::ChannelLat), "CHAN_lat");
}

} // namespace
} // namespace adrias::testbed
