/**
 * @file
 * Clang thread-safety-analysis attribute shim.
 *
 * The macros expand to Clang's `-Wthread-safety` attributes when the
 * compiler supports them and to nothing elsewhere (GCC, MSVC), so
 * annotated code stays portable.  Annotate shared-state classes with
 * ADRIAS_GUARDED_BY / ADRIAS_REQUIRES and wrap locks in the annotated
 * adrias::Mutex (common/mutex.hh) so a Clang build statically proves
 * lock discipline ahead of the parallel scenario runner.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef ADRIAS_COMMON_THREAD_ANNOTATIONS_HH
#define ADRIAS_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ADRIAS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ADRIAS_THREAD_ANNOTATION
#define ADRIAS_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define ADRIAS_CAPABILITY(x) ADRIAS_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires a capability for its lifetime. */
#define ADRIAS_SCOPED_CAPABILITY ADRIAS_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define ADRIAS_GUARDED_BY(x) ADRIAS_THREAD_ANNOTATION(guarded_by(x))

/** Pointee guarded by `x` (the pointer itself is unguarded). */
#define ADRIAS_PT_GUARDED_BY(x) ADRIAS_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the given capabilities and holds them on return. */
#define ADRIAS_ACQUIRE(...) \
    ADRIAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the given capabilities. */
#define ADRIAS_RELEASE(...) \
    ADRIAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning `cond`. */
#define ADRIAS_TRY_ACQUIRE(cond, ...) \
    ADRIAS_THREAD_ANNOTATION(try_acquire_capability(cond, __VA_ARGS__))

/** Caller must already hold the given capabilities. */
#define ADRIAS_REQUIRES(...) \
    ADRIAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the given capabilities (deadlock guard). */
#define ADRIAS_EXCLUDES(...) \
    ADRIAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define ADRIAS_RETURN_CAPABILITY(x) \
    ADRIAS_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (e.g. lock-free init paths). */
#define ADRIAS_NO_THREAD_SAFETY_ANALYSIS \
    ADRIAS_THREAD_ANNOTATION(no_thread_safety_analysis)

/**
 * Waive one data member from the tools/analyze lock-discipline pass,
 * with a reason.  In a class owning a Mutex every mutable member must
 * either be ADRIAS_GUARDED_BY-annotated or carry this marker — for
 * state that is genuinely safe without the lock (set once before any
 * thread is spawned, intrinsically synchronized primitives, ...):
 *
 *   std::condition_variable_any available ADRIAS_LOCK_FREE(
 *       "intrinsically synchronized; waited on under `mutex`");
 *
 * Expands to nothing on every compiler — it is read by the analyzer
 * (and the reviewer), not the toolchain.
 */
#define ADRIAS_LOCK_FREE(reason)

#endif // ADRIAS_COMMON_THREAD_ANNOTATIONS_HH
