#include "ml/batchnorm.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace adrias::ml
{

BatchNorm1d::BatchNorm1d(std::size_t features, double momentum_,
                         double epsilon_)
    : gamma("bn.gamma", Matrix::constant(1, features, 1.0)),
      beta("bn.beta", Matrix(1, features)),
      runMean(1, features),
      runVar(Matrix::constant(1, features, 1.0)),
      momentum(momentum_),
      epsilon(epsilon_)
{
    if (momentum <= 0.0 || momentum > 1.0)
        fatal("BatchNorm1d momentum must lie in (0, 1]");
}

Matrix
BatchNorm1d::forward(const Matrix &input)
{
    const std::size_t batch = input.rows();
    const std::size_t features = input.cols();
    if (features != gamma.value.cols())
        panic("BatchNorm1d feature width mismatch");

    Matrix mean(1, features);
    Matrix var(1, features);

    if (estimatingStats) {
        if (statSum.empty()) {
            statSum = Matrix(1, features);
            statSumSq = Matrix(1, features);
        }
        for (std::size_t r = 0; r < batch; ++r) {
            for (std::size_t c = 0; c < features; ++c) {
                const double v = input.at(r, c);
                statSum.at(0, c) += v;
                statSumSq.at(0, c) += v * v;
            }
        }
        statCount += batch;
    }

    if (isTraining) {
        for (std::size_t c = 0; c < features; ++c) {
            double m = 0.0;
            for (std::size_t r = 0; r < batch; ++r)
                m += input.at(r, c);
            m /= static_cast<double>(batch);
            double v = 0.0;
            for (std::size_t r = 0; r < batch; ++r) {
                const double d = input.at(r, c) - m;
                v += d * d;
            }
            v /= static_cast<double>(batch);
            mean.at(0, c) = m;
            var.at(0, c) = v;
            runMean.at(0, c) =
                (1.0 - momentum) * runMean.at(0, c) + momentum * m;
            runVar.at(0, c) =
                (1.0 - momentum) * runVar.at(0, c) + momentum * v;
        }
    } else {
        mean = runMean;
        var = runVar;
    }

    const bool keep_caches = !isInference;
    Matrix inv_std(1, features);
    for (std::size_t c = 0; c < features; ++c)
        inv_std.at(0, c) = 1.0 / std::sqrt(var.at(0, c) + epsilon);

    if (keep_caches)
        lastNormalized = Matrix(batch, features);
    Matrix out(batch, features);
    for (std::size_t r = 0; r < batch; ++r) {
        for (std::size_t c = 0; c < features; ++c) {
            const double x_hat =
                (input.at(r, c) - mean.at(0, c)) * inv_std.at(0, c);
            if (keep_caches)
                lastNormalized.at(r, c) = x_hat;
            out.at(r, c) =
                gamma.value.at(0, c) * x_hat + beta.value.at(0, c);
        }
    }
    if (keep_caches)
        lastInvStd = std::move(inv_std);
    return out;
}

Matrix
BatchNorm1d::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("BatchNorm1d::backward in inference mode");
    const std::size_t batch = grad_output.rows();
    const std::size_t features = grad_output.cols();
    const auto batch_d = static_cast<double>(batch);

    Matrix grad_input(batch, features);
    for (std::size_t c = 0; c < features; ++c) {
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (std::size_t r = 0; r < batch; ++r) {
            const double dy = grad_output.at(r, c);
            sum_dy += dy;
            sum_dy_xhat += dy * lastNormalized.at(r, c);
        }
        gamma.grad.at(0, c) += sum_dy_xhat;
        beta.grad.at(0, c) += sum_dy;

        const double g = gamma.value.at(0, c);
        const double inv_std = lastInvStd.at(0, c);
        if (isTraining) {
            // Standard batch-norm backward through batch statistics.
            for (std::size_t r = 0; r < batch; ++r) {
                const double dy = grad_output.at(r, c);
                const double x_hat = lastNormalized.at(r, c);
                grad_input.at(r, c) =
                    g * inv_std / batch_d *
                    (batch_d * dy - sum_dy - x_hat * sum_dy_xhat);
            }
        } else {
            // Running stats are constants at eval time.
            for (std::size_t r = 0; r < batch; ++r)
                grad_input.at(r, c) = grad_output.at(r, c) * g * inv_std;
        }
    }
    return grad_input;
}

std::vector<Param *>
BatchNorm1d::params()
{
    return {&gamma, &beta};
}

void
BatchNorm1d::beginStatsEstimation()
{
    estimatingStats = true;
    statCount = 0;
    statSum = Matrix();
    statSumSq = Matrix();
}

void
BatchNorm1d::endStatsEstimation()
{
    if (!estimatingStats)
        panic("BatchNorm1d::endStatsEstimation without begin");
    estimatingStats = false;
    if (statCount == 0)
        return; // no forward passes happened; keep old stats
    const auto n = static_cast<double>(statCount);
    for (std::size_t c = 0; c < runMean.cols(); ++c) {
        const double mean = statSum.at(0, c) / n;
        runMean.at(0, c) = mean;
        runVar.at(0, c) =
            std::max(0.0, statSumSq.at(0, c) / n - mean * mean);
    }
}

std::vector<Matrix *>
BatchNorm1d::stateTensors()
{
    return {&runMean, &runVar};
}

void
BatchNorm1d::setRunningStats(Matrix mean, Matrix var)
{
    if (mean.cols() != runMean.cols() || var.cols() != runVar.cols())
        panic("BatchNorm1d::setRunningStats width mismatch");
    runMean = std::move(mean);
    runVar = std::move(var);
}

} // namespace adrias::ml
