file(REMOVE_RECURSE
  "libadrias_scenario.a"
)
