/**
 * @file
 * Application signatures (paper §V-B): the sequence of monitored
 * metrics during an application's isolated execution on remote memory,
 * used as the per-app identity input k of the performance model.
 */

#ifndef ADRIAS_SCENARIO_SIGNATURE_HH
#define ADRIAS_SCENARIO_SIGNATURE_HH

#include <map>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "ml/matrix.hh"
#include "testbed/params.hh"
#include "workloads/spec.hh"

namespace adrias::scenario
{

/** In-memory registry of application signatures, keyed by app name. */
class SignatureStore
{
  public:
    /** @return true when a signature for this app is known. */
    bool has(const std::string &name) const;

    /** Fetch a signature. @throws when unknown. */
    const std::vector<ml::Matrix> &get(const std::string &name) const;

    /** Insert or replace a signature. */
    void put(const std::string &name, std::vector<ml::Matrix> signature);

    /** Remove one signature if present (leave-one-out experiments). */
    void erase(const std::string &name);

    /** @return number of stored signatures. */
    std::size_t size() const { return signatures.size(); }

    /** @return all stored app names. */
    std::vector<std::string> names() const;

    /** Serialize every signature (name + matrix shapes + raw data). */
    void saveState(io::BinaryWriter &out) const;

    /** Replace the store's contents with a saveState() payload. */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    std::map<std::string, std::vector<ml::Matrix>> signatures;
};

/**
 * Profile one application in isolation on remote memory and return its
 * signature: the run's counter trace binned into kWindowBins steps.
 *
 * @param spec application to profile.
 * @param params testbed calibration.
 * @param seed RNG seed (counter noise, latency noise).
 * @param max_seconds profiling budget for long-running servers.
 */
std::vector<ml::Matrix>
collectSignature(const workloads::WorkloadSpec &spec,
                 testbed::TestbedParams params = {},
                 std::uint64_t seed = 7, SimTime max_seconds = 400);

/** Profile every Spark and LC application into the store. */
void collectAllSignatures(SignatureStore &store,
                          testbed::TestbedParams params = {},
                          std::uint64_t seed = 7);

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_SIGNATURE_HH
