/**
 * @file
 * The Adrias Orchestrator (paper §V-C): the interference-aware
 * placement policy that queries the Predictor and applies the paper's
 * decision rules —
 *
 *   BE:  local  iff  t̂_local < β · t̂_remote
 *   LC:  remote iff  p̂99_remote ≤ QoS
 *
 * Applications without a stored signature are bootstrapped on remote
 * memory and their signature is captured from their execution window.
 */

#ifndef ADRIAS_CORE_ORCHESTRATOR_HH
#define ADRIAS_CORE_ORCHESTRATOR_HH

#include <map>
#include <string>

#include "common/io/checkpoint_annotations.hh"
#include "models/guard.hh"
#include "models/predictor.hh"
#include "scenario/placement.hh"
#include "scenario/signature.hh"
#include "telemetry/watcher.hh"

namespace adrias::core
{

/** Policy knobs of the orchestrator. */
struct AdriasConfig
{
    /**
     * Slack β for best-effort apps: the performance-loss margin we
     * accept to leverage remote memory (paper sweeps 1.0 … 0.6).
     */
    double beta = 0.8;

    /** QoS constraint on predicted p99, ms, per LC application name. */
    std::map<std::string, double> qosP99Ms;

    /** Fallback QoS when an LC app has no explicit entry. */
    double defaultQosP99Ms = 1.0;

    /**
     * Degraded-mode placement when the prediction path is
     * unavailable.  BE apps take the paper's bootstrap default
     * (remote); LC apps take the QoS-conservative choice (local).
     */
    MemoryMode degradedBeMode = MemoryMode::Remote;
    MemoryMode degradedLcMode = MemoryMode::Local;
};

/** Per-run decision statistics. */
struct OrchestratorStats
{
    std::size_t localPlacements = 0;
    std::size_t remotePlacements = 0;
    std::size_t bootstrapPlacements = 0; ///< unknown-app remote runs

    /** Decisions served by the heuristic fallback (degraded mode). */
    std::size_t fallbackPlacements = 0;

    /** Prediction attempts that raised PredictionUnavailable. */
    std::size_t predictionFailures = 0;

    /** Merged from the guard's breaker (0 without a guard). */
    std::size_t breakerTrips = 0;
    std::size_t breakerRecoveries = 0;

    /** Merged from the Watcher seen at the last decision. */
    std::size_t samplesRepaired = 0;
    std::size_t samplesDropped = 0;
};

/** Interference-aware memory orchestrator. */
class AdriasOrchestrator : public scenario::PlacementPolicy
{
  public:
    /**
     * @param predictor trained prediction stack (borrowed).
     * @param signatures signature registry (borrowed; grows as unknown
     *        apps are bootstrapped).
     * @param config policy knobs.
     */
    AdriasOrchestrator(const models::PredictorBase &predictor,
                       scenario::SignatureStore &signatures,
                       AdriasConfig config = {});

    /**
     * Guarded variant: decisions flow through the guard's breaker and
     * deadline, and prediction failures fall back to the heuristic
     * degraded-mode policy instead of crashing the placement loop.
     */
    AdriasOrchestrator(models::GuardedPredictor &guard,
                       scenario::SignatureStore &signatures,
                       AdriasConfig config = {});

    std::string name() const override;

    MemoryMode place(const workloads::WorkloadSpec &spec,
                     const telemetry::Watcher &watcher,
                     SimTime now) override;

    void onCompletion(const scenario::DeploymentRecord &record) override;

    /** Decision tallies, with breaker and telemetry-repair counters
     *  merged in when a guard is attached. */
    OrchestratorStats stats() const;

    const AdriasConfig &config() const { return policy; }

    /** @return true while the prediction path is degraded (guarded
     *  variant only; false without a guard). */
    bool degraded() const;

    /** QoS threshold applied to one LC application. */
    double qosFor(const std::string &name) const;

    /**
     * The paper's BE decision rule (§V-C): local iff
     * t̂_local < β · t̂_remote.  Shared by the single-node place(),
     * the cluster orchestrator and the DecisionService so batched and
     * inline decisions can never diverge on the rule itself.
     */
    static MemoryMode
    decideBestEffort(double t_local, double t_remote, double beta)
    {
        return t_local < beta * t_remote ? MemoryMode::Local
                                         : MemoryMode::Remote;
    }

    /** The paper's LC decision rule: remote iff p̂99_remote ≤ QoS. */
    static MemoryMode
    decideLatencyCritical(double p99_remote, double qos)
    {
        return p99_remote <= qos ? MemoryMode::Remote
                                 : MemoryMode::Local;
    }

    /**
     * Serialize the decision tallies, last-seen watcher health and the
     * (borrowed, bootstrap-grown) signature store.  The guard — when
     * attached — checkpoints separately under its own tag.
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore a payload written by saveState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    const models::PredictorBase *predictor ADRIAS_NOT_CHECKPOINTED(
        "borrowed model wiring, re-attached at construction");
    models::GuardedPredictor *guard ADRIAS_NOT_CHECKPOINTED(
        "the guard checkpoints separately under its own tag") = nullptr;
    scenario::SignatureStore *signatures;
    AdriasConfig policy ADRIAS_NOT_CHECKPOINTED(
        "construction-time configuration, re-supplied on restore");
    OrchestratorStats decisionStats;
    telemetry::WatcherHealth lastWatcherHealth;

    /** Heuristic placement used when predictions are unavailable. */
    MemoryMode fallbackPlacement(const workloads::WorkloadSpec &spec);
};

} // namespace adrias::core

#endif // ADRIAS_CORE_ORCHESTRATOR_HH
