/** @file Tests for the Adrias orchestrator and baseline schedulers. */

#include <gtest/gtest.h>

#include "core/adrias.hh"

namespace adrias::core
{
namespace
{

using scenario::ScenarioConfig;
using scenario::ScenarioRunner;

/** One trained stack shared across the suite (training is the cost). */
class OrchestratorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        AdriasStack::BuildOptions options;
        options.scenarios = 3;
        options.scenarioDurationSec = 1500;
        options.seed = 700;
        options.model.epochs = 18;
        options.model.hidden = 16;
        options.model.headWidth = 24;
        stack = new AdriasStack(options);
    }

    static void
    TearDownTestSuite()
    {
        delete stack;
        stack = nullptr;
    }

    static ScenarioConfig
    evalConfig(std::uint64_t seed)
    {
        ScenarioConfig config;
        config.durationSec = 1200;
        config.spawnMinSec = 5;
        config.spawnMaxSec = 25;
        config.seed = seed;
        return config;
    }

    static AdriasStack *stack;
};

AdriasStack *OrchestratorTest::stack = nullptr;

TEST(Schedulers, RoundRobinAlternates)
{
    RoundRobinScheduler rr;
    telemetry::Watcher watcher(4);
    const auto &spec = workloads::sparkBenchmark("sort");
    const MemoryMode first = rr.place(spec, watcher, 0);
    const MemoryMode second = rr.place(spec, watcher, 1);
    const MemoryMode third = rr.place(spec, watcher, 2);
    EXPECT_NE(first, second);
    EXPECT_EQ(first, third);
    EXPECT_EQ(rr.name(), "round-robin");
}

TEST(Schedulers, AllLocalAndAllRemoteAreConstant)
{
    AllLocalScheduler all_local;
    AllRemoteScheduler all_remote;
    telemetry::Watcher watcher(4);
    const auto &spec = workloads::redisSpec();
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(all_local.place(spec, watcher, i), MemoryMode::Local);
        EXPECT_EQ(all_remote.place(spec, watcher, i),
                  MemoryMode::Remote);
    }
}

TEST_F(OrchestratorTest, RequiresTrainedPredictor)
{
    models::Predictor untrained;
    scenario::SignatureStore store;
    EXPECT_THROW(AdriasOrchestrator(untrained, store, {}),
                 std::runtime_error);
}

TEST_F(OrchestratorTest, RejectsSillyBeta)
{
    AdriasConfig config;
    config.beta = 0.0;
    EXPECT_THROW(stack->makeOrchestrator(config), std::runtime_error);
    config.beta = 2.0;
    EXPECT_THROW(stack->makeOrchestrator(config), std::runtime_error);
}

TEST_F(OrchestratorTest, NameEncodesBeta)
{
    AdriasConfig config;
    config.beta = 0.7;
    auto orchestrator = stack->makeOrchestrator(config);
    EXPECT_EQ(orchestrator.name(), "adrias-b0.7");
}

TEST_F(OrchestratorTest, UnknownAppBootstrapsOnRemote)
{
    auto orchestrator = stack->makeOrchestrator();
    telemetry::Watcher watcher(16);

    workloads::WorkloadSpec novel = workloads::sparkBenchmark("sort");
    novel.name = "brand-new-app";
    EXPECT_EQ(orchestrator.place(novel, watcher, 0), MemoryMode::Remote);
    EXPECT_EQ(orchestrator.stats().bootstrapPlacements, 1u);

    // Completion with an execution window registers the signature.
    scenario::DeploymentRecord record;
    record.name = "brand-new-app";
    record.cls = WorkloadClass::BestEffort;
    record.mode = MemoryMode::Remote;
    record.executionWindow.assign(
        ScenarioRunner::kWindowBins,
        ml::Matrix(1, testbed::kNumPerfEvents));
    orchestrator.onCompletion(record);
    EXPECT_TRUE(stack->signatures().has("brand-new-app"));
    stack->signatures().erase("brand-new-app");
}

TEST_F(OrchestratorTest, ColdTelemetryFallsBackToLocal)
{
    auto orchestrator = stack->makeOrchestrator();
    telemetry::Watcher cold(16);
    EXPECT_EQ(orchestrator.place(workloads::sparkBenchmark("sort"), cold,
                                 0),
              MemoryMode::Local);
}

TEST_F(OrchestratorTest, BetaOneBehavesLikeAllLocal)
{
    // Paper: for beta=1 Adrias is equivalent to All-Local.  With our
    // model-error levels some remote-tolerant apps (gmm, pca) may still
    // be offloaded on prediction noise, so equivalence is asserted on
    // the median BE performance, plus a cap on offloads of the
    // remote-averse apps.
    AdriasConfig config;
    config.beta = 1.0;
    auto orchestrator = stack->makeOrchestrator(config);
    ScenarioRunner adrias_runner(evalConfig(901));
    const auto adrias_result = adrias_runner.run(orchestrator);

    AllLocalScheduler all_local;
    ScenarioRunner local_runner(evalConfig(901));
    const auto local_result = local_runner.run(all_local);

    auto be_median = [](const scenario::ScenarioResult &result) {
        std::vector<double> times;
        for (const auto &record : result.records)
            if (record.cls == WorkloadClass::BestEffort)
                times.push_back(record.execTimeSec);
        return stats::quantile(times, 0.5);
    };
    EXPECT_LT(be_median(adrias_result),
              be_median(local_result) * 1.15);

    std::size_t averse_remote = 0, averse_total = 0;
    for (const auto &record : adrias_result.records) {
        if (record.name != "nweight" && record.name != "lr")
            continue;
        ++averse_total;
        averse_remote += record.mode == MemoryMode::Remote;
    }
    if (averse_total > 0) {
        EXPECT_LT(static_cast<double>(averse_remote) /
                      static_cast<double>(averse_total),
                  0.35);
    }
}

TEST_F(OrchestratorTest, LowerBetaOffloadsMore)
{
    auto offload_fraction = [&](double beta) {
        AdriasConfig config;
        config.beta = beta;
        auto orchestrator = stack->makeOrchestrator(config);
        ScenarioRunner runner(evalConfig(902));
        const auto result = runner.run(orchestrator);
        std::size_t total = 0, remote = 0;
        for (const auto &record : result.records) {
            if (record.cls != WorkloadClass::BestEffort)
                continue;
            ++total;
            remote += record.mode == MemoryMode::Remote;
        }
        return total == 0 ? 0.0
                          : static_cast<double>(remote) /
                                static_cast<double>(total);
    };
    const double strict = offload_fraction(0.9);
    const double loose = offload_fraction(0.6);
    EXPECT_GE(loose, strict);
    EXPECT_GT(loose, 0.2); // beta=0.6 offloads aggressively (paper)
}

TEST_F(OrchestratorTest, QosThresholdControlsLcPlacement)
{
    // Absurdly loose QoS -> remote; absurdly strict -> local.
    telemetry::Watcher watcher(200);
    // Warm telemetry with a quiet system.
    testbed::Testbed bed;
    bed.setNoise(0.0);
    for (int i = 0; i < 150; ++i)
        watcher.record(bed.tick({}).counters);

    AdriasConfig loose;
    loose.beta = 0.8;
    loose.defaultQosP99Ms = 1e9;
    auto relaxed = stack->makeOrchestrator(loose);
    EXPECT_EQ(relaxed.place(workloads::redisSpec(), watcher, 0),
              MemoryMode::Remote);

    AdriasConfig strict;
    strict.beta = 0.8;
    strict.defaultQosP99Ms = 1e-9;
    auto tight = stack->makeOrchestrator(strict);
    EXPECT_EQ(tight.place(workloads::redisSpec(), watcher, 0),
              MemoryMode::Local);
}

TEST_F(OrchestratorTest, QosPerAppOverridesDefault)
{
    AdriasConfig config;
    config.defaultQosP99Ms = 1.0;
    config.qosP99Ms["redis"] = 2.5;
    auto orchestrator = stack->makeOrchestrator(config);
    EXPECT_DOUBLE_EQ(orchestrator.qosFor("redis"), 2.5);
    EXPECT_DOUBLE_EQ(orchestrator.qosFor("memcached"), 1.0);
}

TEST_F(OrchestratorTest, EndToEndBeatsNaiveSchedulersOnMedian)
{
    // The headline claim (Fig. 16): Adrias' BE execution-time
    // distribution dominates Random/Round-Robin.
    auto median_be = [&](scenario::PlacementPolicy &policy,
                         std::uint64_t seed) {
        ScenarioRunner runner(evalConfig(seed));
        const auto result = runner.run(policy);
        std::vector<double> times;
        for (const auto &record : result.records)
            if (record.cls == WorkloadClass::BestEffort)
                times.push_back(record.execTimeSec);
        return stats::quantile(times, 0.5);
    };

    AdriasConfig config;
    config.beta = 0.8;
    auto adrias = stack->makeOrchestrator(config);
    scenario::RandomPlacement random(3);
    RoundRobinScheduler rr;

    const double adrias_median = median_be(adrias, 903);
    const double random_median = median_be(random, 903);
    const double rr_median = median_be(rr, 903);
    EXPECT_LT(adrias_median, random_median * 1.05);
    EXPECT_LT(adrias_median, rr_median * 1.05);
}

} // namespace
} // namespace adrias::core
