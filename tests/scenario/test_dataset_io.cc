/** @file Round-trip tests for dataset CSV persistence. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hh"
#include "scenario/dataset_io.hh"

namespace adrias::scenario
{
namespace
{

using testbed::kNumPerfEvents;

constexpr std::size_t kBins = ScenarioRunner::kWindowBins;

std::vector<ml::Matrix>
randomSequence(Rng &rng)
{
    std::vector<ml::Matrix> sequence;
    for (std::size_t b = 0; b < kBins; ++b) {
        ml::Matrix step(1, kNumPerfEvents);
        for (double &v : step.raw())
            v = rng.uniform(0.0, 1000.0);
        sequence.push_back(std::move(step));
    }
    return sequence;
}

ml::Matrix
randomVector(Rng &rng)
{
    ml::Matrix vec(1, kNumPerfEvents);
    for (double &v : vec.raw())
        v = rng.uniform(0.0, 1000.0);
    return vec;
}

void
expectSequencesEqual(const std::vector<ml::Matrix> &a,
                     const std::vector<ml::Matrix> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        EXPECT_LT((a[t] - b[t]).maxAbs(), 1e-6);
}

TEST(SystemStateCsv, RoundTrip)
{
    Rng rng(1);
    std::vector<SystemStateSample> samples;
    for (int i = 0; i < 5; ++i) {
        SystemStateSample sample;
        sample.history = randomSequence(rng);
        sample.target = randomVector(rng);
        samples.push_back(std::move(sample));
    }
    const std::string path = ::testing::TempDir() + "adrias_ss.csv";
    saveSystemStateCsv(path, samples);
    const auto loaded = loadSystemStateCsv(path);

    ASSERT_EQ(loaded.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        expectSequencesEqual(loaded[i].history, samples[i].history);
        EXPECT_LT((loaded[i].target - samples[i].target).maxAbs(), 1e-6);
    }
    std::remove(path.c_str());
}

TEST(SystemStateCsv, RejectsMissingAndMalformed)
{
    EXPECT_THROW(loadSystemStateCsv("/no/such/file.csv"),
                 std::runtime_error);
    const std::string path = ::testing::TempDir() + "adrias_bad.csv";
    {
        std::ofstream out(path);
        out << "not-a-dataset\n1,2,3\n";
    }
    EXPECT_THROW(loadSystemStateCsv(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(SystemStateCsv, TypedErrorsDiagnoseCorruption)
{
    // Build one valid file, then corrupt it in targeted ways and check
    // the typed diagnosis of each corruption.
    Rng rng(3);
    SystemStateSample sample;
    sample.history = randomSequence(rng);
    sample.target = randomVector(rng);
    const std::string good = ::testing::TempDir() + "adrias_ss_good.csv";
    saveSystemStateCsv(good, {sample});
    std::ifstream in(good);
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    in.close();

    const std::string bad = ::testing::TempDir() + "adrias_ss_bad.csv";
    auto write_and_load = [&](const std::string &content) {
        std::ofstream out(bad);
        out << content;
        out.close();
        return tryLoadSystemStateCsv(bad);
    };

    auto missing = tryLoadSystemStateCsv("/no/such/file.csv");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, ErrorCode::Io);

    auto bad_header = write_and_load("not-a-dataset\n" + row + "\n");
    ASSERT_FALSE(bad_header.ok());
    EXPECT_EQ(bad_header.error().code, ErrorCode::BadHeader);

    auto geometry = write_and_load("# adrias-system-state-v1,3,7\n" +
                                   row + "\n");
    ASSERT_FALSE(geometry.ok());
    EXPECT_EQ(geometry.error().code, ErrorCode::Geometry);

    auto truncated = write_and_load(
        header + "\n" + row.substr(0, row.size() / 2) + "\n");
    ASSERT_FALSE(truncated.ok());
    EXPECT_TRUE(truncated.error().code == ErrorCode::Truncated ||
                truncated.error().code == ErrorCode::BadNumber);

    auto junk_number = write_and_load(
        header + "\n" + "12abc" + row.substr(row.find(',')) + "\n");
    ASSERT_FALSE(junk_number.ok());
    EXPECT_EQ(junk_number.error().code, ErrorCode::BadNumber);

    auto trailing = write_and_load(header + "\n" + row + ",999\n");
    ASSERT_FALSE(trailing.ok());
    EXPECT_EQ(trailing.error().code, ErrorCode::TrailingData);

    // The pristine file still loads through the typed API.
    auto ok = tryLoadSystemStateCsv(good);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().size(), 1u);

    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(PerformanceCsv, TypedErrorsDiagnoseCorruption)
{
    Rng rng(4);
    PerformanceSample sample;
    sample.name = "sort";
    sample.cls = WorkloadClass::BestEffort;
    sample.mode = MemoryMode::Remote;
    sample.history = randomSequence(rng);
    sample.signature = randomSequence(rng);
    sample.futureWindow = randomVector(rng);
    sample.futureExec = randomVector(rng);
    sample.target = 120.0;
    const std::string good =
        ::testing::TempDir() + "adrias_perf_good.csv";
    savePerformanceCsv(good, {sample});
    std::ifstream in(good);
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    in.close();

    const std::string bad = ::testing::TempDir() + "adrias_perf_bad.csv";
    auto write_and_load = [&](std::string mutated_row) {
        std::ofstream out(bad);
        out << header << "\n" << mutated_row << "\n";
        out.close();
        return tryLoadPerformanceCsv(bad);
    };

    // Row starts "sort,be,remote,<target>,...".
    auto bad_class = write_and_load("sort,xx" + row.substr(7));
    ASSERT_FALSE(bad_class.ok());
    EXPECT_EQ(bad_class.error().code, ErrorCode::BadToken);

    auto bad_mode = write_and_load("sort,be,martian" + row.substr(14));
    ASSERT_FALSE(bad_mode.ok());
    EXPECT_EQ(bad_mode.error().code, ErrorCode::BadToken);

    auto short_row = write_and_load("sort,be,remote");
    ASSERT_FALSE(short_row.ok());
    EXPECT_EQ(short_row.error().code, ErrorCode::Truncated);

    auto bad_target = write_and_load("sort,be,remote,NOPE" +
                                     row.substr(row.find(',', 15)));
    ASSERT_FALSE(bad_target.ok());
    EXPECT_EQ(bad_target.error().code, ErrorCode::BadNumber);

    auto ok = tryLoadPerformanceCsv(good);
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value().size(), 1u);
    EXPECT_EQ(ok.value()[0].name, "sort");

    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(PerformanceCsv, RoundTrip)
{
    Rng rng(2);
    std::vector<PerformanceSample> samples;
    for (int i = 0; i < 4; ++i) {
        PerformanceSample sample;
        sample.name = i % 2 ? "nweight" : "redis";
        sample.cls = i % 2 ? WorkloadClass::BestEffort
                           : WorkloadClass::LatencyCritical;
        sample.mode =
            i % 3 ? MemoryMode::Remote : MemoryMode::Local;
        sample.history = randomSequence(rng);
        sample.signature = randomSequence(rng);
        sample.futureWindow = randomVector(rng);
        sample.futureExec = randomVector(rng);
        sample.target = rng.uniform(1.0, 500.0);
        samples.push_back(std::move(sample));
    }
    const std::string path = ::testing::TempDir() + "adrias_perf.csv";
    savePerformanceCsv(path, samples);
    const auto loaded = loadPerformanceCsv(path);

    ASSERT_EQ(loaded.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(loaded[i].name, samples[i].name);
        EXPECT_EQ(loaded[i].cls, samples[i].cls);
        EXPECT_EQ(loaded[i].mode, samples[i].mode);
        EXPECT_NEAR(loaded[i].target, samples[i].target, 1e-6);
        expectSequencesEqual(loaded[i].history, samples[i].history);
        expectSequencesEqual(loaded[i].signature, samples[i].signature);
        EXPECT_LT(
            (loaded[i].futureWindow - samples[i].futureWindow).maxAbs(),
            1e-6);
        EXPECT_LT(
            (loaded[i].futureExec - samples[i].futureExec).maxAbs(),
            1e-6);
    }
    std::remove(path.c_str());
}

TEST(PerformanceCsv, LoadedDataTrainsAModel)
{
    // The persisted dataset must be usable exactly like the original:
    // real end-to-end check through a scenario + training.
    ScenarioConfig config;
    config.durationSec = 1200;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = 77;
    ScenarioRunner runner(config);
    RandomPlacement policy(78);
    std::vector<ScenarioResult> results{runner.run(policy)};
    SignatureStore signatures;
    collectAllSignatures(signatures);

    const auto original = DatasetBuilder::performance(
        results, signatures, WorkloadClass::BestEffort);
    ASSERT_GE(original.size(), 8u);

    const std::string path = ::testing::TempDir() + "adrias_e2e.csv";
    savePerformanceCsv(path, original);
    const auto loaded = loadPerformanceCsv(path);
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace adrias::scenario
