/**
 * @file
 * RecoverableScenario: a scenario run that survives being killed at
 * any instant (DESIGN.md §12).
 *
 * Composition of the recovery machinery around a ScenarioEngine:
 *
 *  - every `checkpointEverySec` simulated seconds the CheckpointManager
 *    snapshots the engine plus any attached sections (policy state)
 *    into `snap-<tick>.adck`, atomically;
 *  - between snapshots every placement decision is appended to the
 *    current epoch's journal BEFORE it takes effect;
 *  - start() recovers whatever a previous (crashed) process left in
 *    the directory: newest valid snapshot, tolerant journal read with
 *    torn-tail compaction, replay queueing — or a fresh start when the
 *    directory is empty.
 *
 * The recovered run is bitwise identical to an uninterrupted one: the
 * kill-point tests (ctest -L recovery) assert equality of the full
 * ScenarioResult serialization across every crash site.
 */

#ifndef ADRIAS_RECOVERY_RECOVERABLE_HH
#define ADRIAS_RECOVERY_RECOVERABLE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "fault/crash.hh"
#include "recovery/checkpoint.hh"
#include "recovery/journal.hh"
#include "scenario/engine.hh"

namespace adrias::recovery
{

/** Knobs of the crash-safety envelope around one scenario. */
struct RecoveryConfig
{
    /** Directory for snapshots and journals (created on start()). */
    std::string dir;

    /** Simulated seconds between snapshots. */
    SimTime checkpointEverySec = 60;

    /** Newest snapshots retained. */
    std::size_t keepSnapshots = 2;
};

/** What start() recovered (all zeros on a fresh start). */
struct RecoveryReport
{
    /** True when a snapshot was restored. */
    bool restored = false;

    /** Tick of the restored snapshot. */
    SimTime snapshotTick = 0;

    /** Journaled decisions queued for replay verification. */
    std::size_t replayedDecisions = 0;

    /** Corrupt/unrestorable snapshots skipped. */
    std::size_t rejectedSnapshots = 0;

    /** Journal epochs whose torn tail was compacted away. */
    std::size_t tornTails = 0;
};

/** A checkpointed, journaled, crash-recoverable scenario run. */
class RecoverableScenario
{
  public:
    RecoverableScenario(scenario::ScenarioConfig config,
                        testbed::TestbedParams params,
                        RecoveryConfig recovery);

    /**
     * Register an extra snapshot section (e.g. the placement policy).
     * Must be called before start(); attach order must match the
     * process being recovered.
     */
    void attachSection(io::Checkpointable &section);

    /** Arm kill points for the chaos tests (nullptr to disarm). */
    void setCrashInjector(fault::CrashInjector *injector);

    /**
     * Recover from `dir` (or start fresh when it is empty) and open
     * the journal for appending.  Call exactly once, before run().
     *
     * @return the recovery report, or an error when the on-disk state
     *         is unusable (every snapshot structurally valid but
     *         unrestorable, unreadable journal, ...).
     */
    [[nodiscard]] Result<RecoveryReport> start();

    /**
     * Drive the scenario to completion, checkpointing on cadence.
     *
     * @pre start() succeeded.
     * @throws fault::InjectedCrash at an armed kill point; the on-disk
     *         state then matches an abrupt process death and a new
     *         RecoverableScenario over the same directory resumes it.
     */
    scenario::ScenarioResult
    run(scenario::PlacementPolicy &policy,
        scenario::RuntimePolicy *runtime = nullptr);

    /** The underlying engine (tests observe now()/pendingReplay()). */
    scenario::ScenarioEngine &engine() { return *engineState; }

    /** Report of the last start(). */
    const RecoveryReport &report() const { return lastReport; }

    /** `<dir>/journal-<epochTick>.adj`. */
    std::string journalPath(SimTime epochTick) const;

  private:
    scenario::ScenarioConfig config;
    RecoveryConfig recovery;
    CheckpointManager manager;
    DecisionJournal journal;
    std::unique_ptr<scenario::ScenarioEngine> engineState;
    fault::CrashInjector *crash = nullptr;
    RecoveryReport lastReport;
    bool started = false;

    /** Epoch ticks of journal files on disk, ascending. */
    std::vector<SimTime> journalTicks() const;

    /** Snapshot + journal rotation when the cadence is due. */
    void maybeCheckpoint();

    /** Close the old epoch, open `journal-<snapTick>.adj`, prune. */
    void rotateJournal(SimTime snapTick);

    /** (Re)install the MidJournalAppend kill point on the journal. */
    void wireJournalChaos();
};

} // namespace adrias::recovery

#endif // ADRIAS_RECOVERY_RECOVERABLE_HH
