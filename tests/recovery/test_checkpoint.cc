/**
 * @file
 * CheckpointManager and DecisionJournal unit tests: multi-section
 * snapshot round trips, retention pruning, corrupt-newest fallback,
 * structural rejection (tags, counts, version), journal encode/decode,
 * and torn-tail compaction of journal epochs.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "recovery/checkpoint.hh"
#include "recovery/journal.hh"

namespace adrias::recovery
{
namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Minimal section: one evolving integer plus a fixed tag. */
class CounterSection : public io::Checkpointable
{
  public:
    explicit CounterSection(std::string tag_, std::int64_t value_ = 0)
        : tag(std::move(tag_)), value(value_)
    {
    }

    std::string checkpointTag() const override { return tag; }

    void saveState(io::BinaryWriter &out) const override
    {
        out.writeI64(value);
    }

    [[nodiscard]] Result<void>
    restoreState(io::BinaryReader &in) override
    {
        value = in.readI64();
        return in.status();
    }

    std::string tag;
    std::int64_t value;
};

CheckpointConfig
configFor(const std::string &dir, std::size_t keep = 2)
{
    CheckpointConfig config;
    config.dir = dir;
    config.intervalSec = 60;
    config.keep = keep;
    return config;
}

void
corrupt(const std::string &path, const std::string &bytes)
{
    ASSERT_TRUE(io::atomicWriteFile(path, bytes).ok());
}

TEST(CheckpointManager, RoundTripsMultipleSections)
{
    const std::string dir = freshDir("adrias_ckpt_roundtrip");
    CounterSection a("alpha", 7), b("beta", -3);

    CheckpointManager writerSide(configFor(dir));
    writerSide.attach(a);
    writerSide.attach(b);
    ASSERT_TRUE(writerSide.checkpointNow(120).ok());
    EXPECT_EQ(writerSide.lastCheckpointTick(), 120);

    CounterSection a2("alpha"), b2("beta");
    CheckpointManager readerSide(configFor(dir));
    readerSide.attach(a2);
    readerSide.attach(b2);
    Result<RestoreOutcome> outcome = readerSide.restoreLatest();
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().restored);
    EXPECT_EQ(outcome.value().snapshotTick, 120);
    EXPECT_EQ(outcome.value().rejectedSnapshots, 0u);
    EXPECT_EQ(a2.value, 7);
    EXPECT_EQ(b2.value, -3);
    EXPECT_EQ(readerSide.lastCheckpointTick(), 120);
}

TEST(CheckpointManager, EmptyDirectoryIsFreshStartNotError)
{
    CounterSection a("alpha", 42);
    CheckpointManager manager(
        configFor(freshDir("adrias_ckpt_empty")));
    manager.attach(a);
    Result<RestoreOutcome> outcome = manager.restoreLatest();
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome.value().restored);
    EXPECT_EQ(a.value, 42); // untouched
}

TEST(CheckpointManager, PrunesBeyondRetentionWindow)
{
    const std::string dir = freshDir("adrias_ckpt_prune");
    CounterSection a("alpha");
    CheckpointManager manager(configFor(dir, /*keep=*/2));
    manager.attach(a);
    for (SimTime t : {60, 120, 180, 240})
        ASSERT_TRUE(manager.checkpointNow(t).ok());

    EXPECT_EQ(manager.snapshotTicks(),
              (std::vector<SimTime>{180, 240}));
    EXPECT_EQ(manager.oldestKeptTick(), 180);
}

TEST(CheckpointManager, DueFollowsInterval)
{
    CheckpointManager manager(
        configFor(freshDir("adrias_ckpt_due")));
    EXPECT_FALSE(manager.due(59));
    EXPECT_TRUE(manager.due(60));
    CounterSection a("alpha");
    manager.attach(a);
    ASSERT_TRUE(manager.checkpointNow(60).ok());
    EXPECT_FALSE(manager.due(119));
    EXPECT_TRUE(manager.due(120));
}

TEST(CheckpointManager, CorruptNewestFallsBackToOlder)
{
    const std::string dir = freshDir("adrias_ckpt_fallback");
    CounterSection a("alpha", 1);
    CheckpointManager writerSide(configFor(dir));
    writerSide.attach(a);
    ASSERT_TRUE(writerSide.checkpointNow(60).ok());
    a.value = 2;
    ASSERT_TRUE(writerSide.checkpointNow(120).ok());

    // Three corruption classes against the newest snapshot; every one
    // must fall back to snap-60 and restore value == 1.
    Result<std::string> intact =
        io::readFile(writerSide.snapshotPath(120));
    ASSERT_TRUE(intact.ok());
    const std::string truncated =
        intact.value().substr(0, intact.value().size() / 2);
    std::string flipped = intact.value();
    flipped[flipped.size() / 2] ^= 0x01;

    for (const std::string &bytes :
         {truncated, flipped, std::string()}) {
        corrupt(writerSide.snapshotPath(120), bytes);
        CounterSection restored("alpha", -1);
        CheckpointManager readerSide(configFor(dir));
        readerSide.attach(restored);
        Result<RestoreOutcome> outcome = readerSide.restoreLatest();
        ASSERT_TRUE(outcome.ok());
        EXPECT_TRUE(outcome.value().restored);
        EXPECT_EQ(outcome.value().snapshotTick, 60);
        EXPECT_EQ(outcome.value().rejectedSnapshots, 1u);
        EXPECT_EQ(restored.value, 1);
    }
}

TEST(CheckpointManager, TagMismatchRejectsSnapshot)
{
    const std::string dir = freshDir("adrias_ckpt_tags");
    CounterSection a("alpha", 5);
    CheckpointManager writerSide(configFor(dir));
    writerSide.attach(a);
    ASSERT_TRUE(writerSide.checkpointNow(60).ok());

    // The recovering process attaches a differently-tagged section —
    // an attach-order/config skew.  Tag checks run in the structural
    // phase, so nothing is half-restored: the snapshot is rejected
    // whole and recovery reports a fresh start.
    CounterSection mismatched("gamma", -1);
    CheckpointManager readerSide(configFor(dir));
    readerSide.attach(mismatched);
    Result<RestoreOutcome> outcome = readerSide.restoreLatest();
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome.value().restored);
    EXPECT_EQ(outcome.value().rejectedSnapshots, 1u);
    EXPECT_EQ(mismatched.value, -1);
}

TEST(CheckpointManager, SectionCountMismatchRejectsSnapshot)
{
    const std::string dir = freshDir("adrias_ckpt_count");
    CounterSection a("alpha", 5), b("beta", 6);
    CheckpointManager writerSide(configFor(dir));
    writerSide.attach(a);
    writerSide.attach(b);
    ASSERT_TRUE(writerSide.checkpointNow(60).ok());

    CounterSection only("alpha", -1);
    CheckpointManager readerSide(configFor(dir));
    readerSide.attach(only);
    Result<RestoreOutcome> outcome = readerSide.restoreLatest();
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome.value().restored);
    EXPECT_EQ(outcome.value().rejectedSnapshots, 1u);
    EXPECT_EQ(only.value, -1);
}

/** Section whose restoreState fails a configurable number of times —
 *  models version skew detected only inside the payload. */
class FussySection : public CounterSection
{
  public:
    FussySection(std::string tag_, int failures)
        : CounterSection(std::move(tag_)), failuresRemaining(failures)
    {
    }

    [[nodiscard]] Result<void>
    restoreState(io::BinaryReader &in) override
    {
        if (failuresRemaining > 0) {
            --failuresRemaining;
            (void)in.readI64();
            return makeError(ErrorCode::BadHeader,
                             "simulated payload version skew");
        }
        return CounterSection::restoreState(in);
    }

    int failuresRemaining;
};

TEST(CheckpointManager, SectionRestoreFailureFallsBackAndRerestoresAll)
{
    const std::string dir = freshDir("adrias_ckpt_phase2");
    CounterSection a("alpha", 10);
    CounterSection b("beta", 20);
    CheckpointManager writerSide(configFor(dir));
    writerSide.attach(a);
    writerSide.attach(b);
    ASSERT_TRUE(writerSide.checkpointNow(60).ok());
    a.value = 11;
    b.value = 21;
    ASSERT_TRUE(writerSide.checkpointNow(120).ok());

    // The newest snapshot passes structural checks but its second
    // section fails to restore (version skew).  The fallback must
    // re-restore EVERY section from snap-60 — including alpha, which
    // had already been overwritten with snap-120 state.
    CounterSection a2("alpha", -1);
    FussySection b2("beta", /*failures=*/1);
    CheckpointManager readerSide(configFor(dir));
    readerSide.attach(a2);
    readerSide.attach(b2);
    Result<RestoreOutcome> outcome = readerSide.restoreLatest();
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().restored);
    EXPECT_EQ(outcome.value().snapshotTick, 60);
    EXPECT_EQ(outcome.value().rejectedSnapshots, 1u);
    EXPECT_EQ(a2.value, 10);
    EXPECT_EQ(b2.value, 20);
}

TEST(CheckpointManager, AllSectionRestoresFailingIsHardError)
{
    const std::string dir = freshDir("adrias_ckpt_phase2_fatal");
    CounterSection a("alpha", 10);
    CheckpointManager writerSide(configFor(dir));
    writerSide.attach(a);
    ASSERT_TRUE(writerSide.checkpointNow(60).ok());

    // State was touched but no candidate restored whole: the caller
    // must NOT continue on partial state, so this is an error — unlike
    // structural rejections, which fall through to a fresh start.
    FussySection broken("alpha", /*failures=*/99);
    CheckpointManager readerSide(configFor(dir));
    readerSide.attach(broken);
    EXPECT_FALSE(readerSide.restoreLatest().ok());
}

TEST(CheckpointManager, RemoveOrphanTempFiles)
{
    const std::string dir = freshDir("adrias_ckpt_orphans");
    CounterSection a("alpha");
    CheckpointManager manager(configFor(dir));
    manager.attach(a);
    ASSERT_TRUE(manager.checkpointNow(60).ok());
    corrupt(dir + "/snap-120.adck.tmp", "torn");

    manager.removeOrphanTempFiles();
    EXPECT_FALSE(std::filesystem::exists(dir + "/snap-120.adck.tmp"));
    EXPECT_TRUE(
        std::filesystem::exists(manager.snapshotPath(60)));
}

TEST(CheckpointManager, DuplicateTagPanicsAtAttach)
{
    CheckpointManager manager(
        configFor(freshDir("adrias_ckpt_dup")));
    CounterSection a("alpha"), clone("alpha");
    manager.attach(a);
    EXPECT_THROW(manager.attach(clone), std::logic_error);
}

TEST(DecisionJournal, EncodeDecodeRoundTrip)
{
    scenario::PlacementDecision decision;
    decision.tick = 417;
    decision.id = 12;
    decision.specName = "spark-als";
    decision.mode = MemoryMode::Remote;

    Result<scenario::PlacementDecision> decoded =
        DecisionJournal::decode(DecisionJournal::encode(decision));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), decision);
}

TEST(DecisionJournal, DecodeRejectsCorruptPayloads)
{
    scenario::PlacementDecision decision;
    decision.specName = "memcached";
    const std::string payload = DecisionJournal::encode(decision);

    // Truncated payload.
    EXPECT_FALSE(DecisionJournal::decode(
                     std::string_view(payload).substr(
                         0, payload.size() - 1))
                     .ok());
    // Out-of-range memory mode.
    std::string badMode = payload;
    badMode.back() = 7;
    Result<scenario::PlacementDecision> decoded =
        DecisionJournal::decode(badMode);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::BadNumber);
}

TEST(DecisionJournal, AppendThenLoadRoundTrips)
{
    const std::string path =
        freshDir("adrias_journal_roundtrip") + "/journal-0.adj";

    DecisionJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    for (int i = 0; i < 5; ++i) {
        scenario::PlacementDecision decision;
        decision.tick = i;
        decision.id = static_cast<DeploymentId>(100 + i);
        decision.specName = "app-" + std::to_string(i);
        decision.mode = (i % 2) != 0 ? MemoryMode::Remote
                                     : MemoryMode::Local;
        journal.onDecision(decision);
    }
    EXPECT_EQ(journal.appendCount(), 5u);
    journal.close();

    Result<DecisionJournal::LoadResult> loaded =
        DecisionJournal::loadAndCompact(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_FALSE(loaded.value().tornTail);
    ASSERT_EQ(loaded.value().decisions.size(), 5u);
    EXPECT_EQ(loaded.value().decisions[3].specName, "app-3");
    EXPECT_EQ(loaded.value().decisions[3].mode, MemoryMode::Remote);
}

TEST(DecisionJournal, LoadCompactsTornTailAndReopensCleanly)
{
    const std::string path =
        freshDir("adrias_journal_torn") + "/journal-0.adj";

    DecisionJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    scenario::PlacementDecision decision;
    decision.tick = 9;
    decision.specName = "survivor";
    journal.onDecision(decision);
    journal.close();

    // Tear the tail: append half a record's worth of garbage.
    Result<std::string> intact = io::readFile(path);
    ASSERT_TRUE(intact.ok());
    ASSERT_TRUE(
        io::atomicWriteFile(path, intact.value() + "\x05\x00").ok());

    Result<DecisionJournal::LoadResult> loaded =
        DecisionJournal::loadAndCompact(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value().tornTail);
    EXPECT_GT(loaded.value().droppedBytes, 0u);
    ASSERT_EQ(loaded.value().decisions.size(), 1u);
    EXPECT_EQ(loaded.value().decisions[0].specName, "survivor");

    // Compaction rewrote the file: it now ends on a frame boundary, so
    // appending in resume mode yields a fully clean epoch.
    DecisionJournal resumed;
    ASSERT_TRUE(resumed.open(path, /*append=*/true).ok());
    decision.tick = 10;
    decision.specName = "appended-after-compaction";
    resumed.onDecision(decision);
    resumed.close();

    Result<DecisionJournal::LoadResult> reloaded =
        DecisionJournal::loadAndCompact(path);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_FALSE(reloaded.value().tornTail);
    ASSERT_EQ(reloaded.value().decisions.size(), 2u);
    EXPECT_EQ(reloaded.value().decisions[1].specName,
              "appended-after-compaction");
}

TEST(DecisionJournal, ZeroLengthEpochCompactsToEmpty)
{
    const std::string path =
        freshDir("adrias_journal_zero") + "/journal-0.adj";
    ASSERT_TRUE(io::atomicWriteFile(path, "").ok());

    // A kill between epoch-file creation and the header flush leaves a
    // zero-length file; recovery treats it as an empty epoch.
    Result<DecisionJournal::LoadResult> loaded =
        DecisionJournal::loadAndCompact(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value().tornTail);
    EXPECT_TRUE(loaded.value().decisions.empty());

    // The rewrite installed a proper header: resumable.
    DecisionJournal resumed;
    EXPECT_TRUE(resumed.open(path, /*append=*/true).ok());
    resumed.close();
}

TEST(DecisionJournal, BadMagicEpochIsHardError)
{
    const std::string path =
        freshDir("adrias_journal_magic") + "/journal-0.adj";
    ASSERT_TRUE(io::atomicWriteFile(path, "NOTMAGIC rest").ok());
    Result<DecisionJournal::LoadResult> loaded =
        DecisionJournal::loadAndCompact(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::BadHeader);
}

TEST(CheckpointManager, RejectsInvalidConfig)
{
    CheckpointConfig bad;
    bad.dir = "";
    EXPECT_THROW(CheckpointManager{bad}, std::runtime_error);

    bad = configFor("somewhere");
    bad.intervalSec = 0;
    EXPECT_THROW(CheckpointManager{bad}, std::runtime_error);

    bad = configFor("somewhere");
    bad.keep = 0;
    EXPECT_THROW(CheckpointManager{bad}, std::runtime_error);
}

} // namespace
} // namespace adrias::recovery
