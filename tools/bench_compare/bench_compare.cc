#include "bench_compare/bench_compare.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace adrias::bench_compare
{

namespace
{

/**
 * Cursor over the JSON text.  The grammar subset accepted here is the
 * full JSON value grammar (objects, arrays, strings with escapes,
 * numbers, true/false/null); values we do not care about are skipped
 * structurally so future additive schema changes cannot break the
 * gate.
 */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &why)
    {
        if (error.empty()) {
            error = why + " at byte " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    peekIs(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        std::string s;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  default:
                    // \uXXXX and the rest are not produced by the
                    // bench writers; keep the raw escape readable.
                    s += e;
                    break;
                }
            } else {
                s += c;
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        if (out)
            *out = s;
        return true;
    }

    bool
    parseNumber(double *out)
    {
        skipWs();
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E')) {
            ++pos;
        }
        if (pos == start)
            return fail("expected number");
        const std::string tok = text.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + tok + "'");
        if (out)
            *out = v;
        return true;
    }

    bool
    parseLiteral(const std::string &lit)
    {
        skipWs();
        if (text.compare(pos, lit.size(), lit) != 0)
            return fail("expected '" + lit + "'");
        pos += lit.size();
        return true;
    }

    /** Parse and discard any JSON value. */
    bool
    skipValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '"')
            return parseString(nullptr);
        if (c == '{')
            return skipObject();
        if (c == '[')
            return skipArray();
        if (c == 't')
            return parseLiteral("true");
        if (c == 'f')
            return parseLiteral("false");
        if (c == 'n')
            return parseLiteral("null");
        return parseNumber(nullptr);
    }

    bool
    skipObject()
    {
        if (!consume('{'))
            return false;
        if (peekIs('}'))
            return consume('}');
        while (true) {
            if (!parseString(nullptr) || !consume(':') || !skipValue())
                return false;
            if (peekIs(','))
                consume(',');
            else
                break;
        }
        return consume('}');
    }

    bool
    skipArray()
    {
        if (!consume('['))
            return false;
        if (peekIs(']'))
            return consume(']');
        while (true) {
            if (!skipValue())
                return false;
            if (peekIs(','))
                consume(',');
            else
                break;
        }
        return consume(']');
    }

    /** Parse one benchmarks[] element into an entry. */
    bool
    parseBenchObject(BenchEntry *entry, bool *sawName, bool *sawMedian)
    {
        if (!consume('{'))
            return false;
        if (peekIs('}'))
            return consume('}');
        while (true) {
            std::string key;
            if (!parseString(&key) || !consume(':'))
                return false;
            if (key == "name") {
                if (!parseString(&entry->name))
                    return false;
                *sawName = true;
            } else if (key == "median_ns") {
                if (!parseNumber(&entry->medianNs))
                    return false;
                *sawMedian = true;
            } else {
                if (!skipValue())
                    return false;
            }
            if (peekIs(','))
                consume(',');
            else
                break;
        }
        return consume('}');
    }
};

} // namespace

std::vector<BenchEntry>
parseBenchJson(const std::string &text, std::string *error)
{
    Cursor cur{text, 0, {}};
    std::vector<BenchEntry> entries;
    bool sawBenchmarks = false;

    auto failOut = [&](const std::string &why) {
        if (error)
            *error = cur.error.empty() ? why : cur.error;
        return std::vector<BenchEntry>{};
    };

    if (!cur.consume('{'))
        return failOut("not a JSON object");
    if (cur.peekIs('}'))
        return failOut("no benchmarks array");
    while (true) {
        std::string key;
        if (!cur.parseString(&key) || !cur.consume(':'))
            return failOut("malformed object");
        if (key == "benchmarks") {
            sawBenchmarks = true;
            if (!cur.consume('['))
                return failOut("benchmarks is not an array");
            if (cur.peekIs(']')) {
                cur.consume(']');
            } else {
                while (true) {
                    BenchEntry entry;
                    bool saw_name = false;
                    bool saw_median = false;
                    if (!cur.parseBenchObject(&entry, &saw_name,
                                              &saw_median)) {
                        return failOut("malformed benchmark entry");
                    }
                    if (!saw_name || !saw_median) {
                        return failOut(
                            "benchmark entry missing name/median_ns");
                    }
                    entries.push_back(std::move(entry));
                    if (cur.peekIs(','))
                        cur.consume(',');
                    else
                        break;
                }
                if (!cur.consume(']'))
                    return failOut("unterminated benchmarks array");
            }
        } else {
            if (!cur.skipValue())
                return failOut("malformed value for key '" + key + "'");
        }
        if (cur.peekIs(','))
            cur.consume(',');
        else
            break;
    }
    if (!cur.consume('}'))
        return failOut("unterminated top-level object");
    if (!sawBenchmarks)
        return failOut("no benchmarks array");
    if (error)
        error->clear();
    return entries;
}

CompareResult
compare(const std::vector<BenchEntry> &baseline,
        const std::vector<BenchEntry> &current, double tolerance)
{
    CompareResult result;
    std::unordered_map<std::string, double> current_by_name;
    for (const BenchEntry &e : current)
        current_by_name.emplace(e.name, e.medianNs);

    for (const BenchEntry &base : baseline) {
        auto it = current_by_name.find(base.name);
        if (it == current_by_name.end()) {
            result.missing.push_back(base.name);
            result.pass = false;
            continue;
        }
        CompareRow row;
        row.name = base.name;
        row.baselineNs = base.medianNs;
        row.currentNs = it->second;
        row.ratio = base.medianNs > 0.0 ? it->second / base.medianNs
                                        : 0.0;
        row.regressed = row.ratio > tolerance;
        if (row.regressed)
            result.pass = false;
        result.rows.push_back(row);
        current_by_name.erase(it);
    }
    // Preserve current-file order for the leftovers.
    for (const BenchEntry &e : current) {
        if (current_by_name.count(e.name))
            result.added.push_back(e.name);
    }
    return result;
}

std::string
formatReport(const CompareResult &result, double tolerance)
{
    std::ostringstream out;
    out << "bench_compare: tolerance " << tolerance << "x\n";
    for (const CompareRow &row : result.rows) {
        out << "  " << (row.regressed ? "REGRESSED " : "ok        ")
            << row.name << "  " << row.baselineNs << " ns -> "
            << row.currentNs << " ns  (" << row.ratio << "x)\n";
    }
    for (const std::string &name : result.missing)
        out << "  MISSING   " << name << " (in baseline, not in run)\n";
    for (const std::string &name : result.added)
        out << "  new       " << name << " (not in baseline)\n";
    out << (result.pass ? "PASS" : "FAIL") << "\n";
    return out.str();
}

} // namespace adrias::bench_compare
