#include "ml/lstm.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hh"
#include "ml/activation.hh"
#include "ml/fastmath.hh"
#include "ml/simd.hh"

namespace adrias::ml
{

namespace
{

bool g_fusedKernels = true;

} // namespace

bool
lstmFusedKernels()
{
    return g_fusedKernels;
}

void
setLstmFusedKernels(bool on)
{
    g_fusedKernels = on;
}

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : wx("lstm.wx", Matrix(input_size, 4 * hidden_size)),
      wh("lstm.wh", Matrix(hidden_size, 4 * hidden_size)),
      b("lstm.b", Matrix(1, 4 * hidden_size))
{
    const double limit =
        1.0 / std::sqrt(static_cast<double>(hidden_size));
    for (double &w : wx.value.raw())
        w = rng.uniform(-limit, limit);
    for (double &w : wh.value.raw())
        w = rng.uniform(-limit, limit);
    // Forget-gate bias (second H-wide block) starts at one.
    for (std::size_t c = hidden_size; c < 2 * hidden_size; ++c)
        b.value.at(0, c) = 1.0;
}

std::vector<Matrix>
Lstm::forwardSequence(const std::vector<Matrix> &sequence)
{
    if (sequence.empty())
        fatal("Lstm::forwardSequence on empty sequence");
    lastForwardFused = g_fusedKernels;
    if (lastForwardFused)
        return forwardFused(sequence);
    return forwardReference(sequence);
}

std::vector<Matrix>
Lstm::backwardSequence(const std::vector<Matrix> &grad_hidden)
{
    const std::size_t steps =
        lastForwardFused ? caches.size() : refCaches.size();
    if (grad_hidden.size() != steps)
        panic("Lstm::backwardSequence length mismatch with forward pass");
    if (steps == 0)
        panic("Lstm::backwardSequence before forwardSequence");
    if (lastForwardFused)
        return backwardFused(grad_hidden);
    return backwardReference(grad_hidden);
}

std::vector<Matrix>
Lstm::forwardFused(const std::vector<Matrix> &sequence)
{
    const std::size_t hidden = hiddenSize();
    const std::size_t batch = sequence.front().rows();
    const std::size_t steps = sequence.size();
    const std::size_t gate_width = 4 * hidden;
    const std::size_t grain = matrixParallelConfig().elementGrain;

    refCaches.clear();
    const bool keep_caches = !isInference;
    if (!keep_caches)
        caches.clear();
    else if (caches.size() != steps)
        caches.resize(steps);

    // c_0 is all zeros; the cell state is then updated in place.
    wsC.resize(batch, hidden);

    // All x_t * Wx products in one batched GEMM over the stacked
    // sequence: every GEMM output row depends only on its own input
    // row, so stacking steps is bitwise-neutral (the same row-locality
    // argument as the parallel partition, DESIGN.md §9) and one
    // (steps*batch x input) product amortizes per-call dispatch that
    // dominates small batches.
    wsXall.resizeForOverwrite(steps * batch, inputSize());
    {
        const std::size_t step_elems = batch * inputSize();
        double *xall = wsXall.raw().data();
        for (std::size_t t = 0; t < steps; ++t) {
            const Matrix &x = sequence[t];
            if (x.rows() != batch || x.cols() != inputSize())
                panic("Lstm: inconsistent sequence element shape");
            const double *src = x.raw().data();
            std::copy(src, src + step_elems, xall + t * step_elems);
        }
    }
    wsXall.matmulInto(wx.value, wsZx);

    std::vector<Matrix> outputs;
    outputs.reserve(steps);

    const double *bias = b.value.raw().data();

    for (std::size_t t = 0; t < steps; ++t) {
        const Matrix &x = sequence[t];

        // The two GEMM products stay in separate buffers: the
        // reference path sums full matrices ((x*Wx) + (h*Wh)), so the
        // fused epilogue must add finished products, not interleave
        // their k-loop accumulations (DESIGN.md §11).
        if (t == 0) {
            // h_0 is all zeros and the GEMM's exact-zero skip leaves
            // its product identically +0.0, so a zeroed buffer is
            // bitwise equivalent without running the GEMM.
            wsZh.resize(batch, gate_width);
        } else {
            outputs[t - 1].matmulInto(wh.value, wsZh);
        }

        StepCache *cache = nullptr;
        if (keep_caches) {
            cache = &caches[t];
            cache->input = x;
            if (t == 0)
                cache->hPrev.resize(batch, hidden);
            else
                cache->hPrev = outputs[t - 1];
            cache->gates.resizeForOverwrite(batch, gate_width);
            cache->cell.resizeForOverwrite(batch, hidden);
            cache->tanhCell.resizeForOverwrite(batch, hidden);
        }

        outputs.emplace_back();
        Matrix &h_out = outputs.back();
        h_out.resizeForOverwrite(batch, hidden);

        const double *za =
            wsZx.raw().data() + t * batch * gate_width;
        const double *zb = wsZh.raw().data();
        double *cbuf = wsC.raw().data();
        double *hbuf = h_out.raw().data();
        double *gatebuf = cache ? cache->gates.raw().data() : nullptr;
        double *cellbuf = cache ? cache->cell.raw().data() : nullptr;
        double *tcbuf = cache ? cache->tanhCell.raw().data() : nullptr;

        // Vector tier (DESIGN.md §16): the inference-only gate loop
        // has no cache writes, so it maps straight onto the 4-wide
        // AVX2 gate kernel.  Tolerance-equivalent to the scalar loop
        // below (FMA + vector transcendentals; ctest -L simd), and
        // thread-invariant for the same row-partition reason.
        if (!keep_caches &&
            effectiveKernelTier() == KernelTier::Vector) {
            kernels::runRows(
                batch, batch * gate_width, grain,
                [za, zb, bias, cbuf, hbuf,
                 hidden](std::size_t begin, std::size_t end) {
                    simd::lstmGateRows(za, zb, bias, cbuf, hbuf,
                                       begin, end, hidden);
                });
            continue;
        }

        // One fused pass replaces colRange+map per gate, two hadamard
        // chains, and the cell/tanh temporaries.  Per element the
        // scalar op sequence is exactly the reference formulation:
        // z = (zx + zh) + bias; gates through sigmoid/tanh;
        // c = (f*c_prev) + (i*g); h = o * tanh(c).
        kernels::runRows(
            batch, batch * gate_width, grain,
            [za, zb, bias, cbuf, hbuf, gatebuf, cellbuf, tcbuf, hidden,
             gate_width](std::size_t begin, std::size_t end) {
                // All buffers are distinct allocations (workspaces,
                // caches, output); __restrict lets the c loop
                // vectorize without runtime alias checks.
                const double *__restrict biasr = bias;
                for (std::size_t r = begin; r < end; ++r) {
                    const double *__restrict zar = za + r * gate_width;
                    const double *__restrict zbr = zb + r * gate_width;
                    double *__restrict crow = cbuf + r * hidden;
                    double *__restrict hrow = hbuf + r * hidden;
                    for (std::size_t c = 0; c < hidden; ++c) {
                        const double zi = (zar[c] + zbr[c]) + biasr[c];
                        const double zf = (zar[hidden + c] +
                                           zbr[hidden + c]) +
                                          biasr[hidden + c];
                        const double zg = (zar[2 * hidden + c] +
                                           zbr[2 * hidden + c]) +
                                          biasr[2 * hidden + c];
                        const double zo = (zar[3 * hidden + c] +
                                           zbr[3 * hidden + c]) +
                                          biasr[3 * hidden + c];
                        const double gi = fastmath::sigmoid(zi);
                        const double gf = fastmath::sigmoid(zf);
                        const double gg = fastmath::tanh(zg);
                        const double go = fastmath::sigmoid(zo);
                        const double fc = gf * crow[c];
                        const double ig = gi * gg;
                        const double cell = fc + ig;
                        const double tc = fastmath::tanh(cell);
                        crow[c] = cell;
                        hrow[c] = go * tc;
                        if (gatebuf) {
                            double *__restrict grow =
                                gatebuf + r * gate_width;
                            grow[c] = gi;
                            grow[hidden + c] = gf;
                            grow[2 * hidden + c] = gg;
                            grow[3 * hidden + c] = go;
                            cellbuf[r * hidden + c] = cell;
                            tcbuf[r * hidden + c] = tc;
                        }
                    }
                }
            });
    }
    return outputs;
}

std::vector<Matrix>
Lstm::backwardFused(const std::vector<Matrix> &grad_hidden)
{
    const std::size_t hidden = hiddenSize();
    const std::size_t steps = caches.size();
    const std::size_t batch = caches.front().input.rows();
    const std::size_t gate_width = 4 * hidden;
    const std::size_t grain = matrixParallelConfig().elementGrain;

    std::vector<Matrix> grad_inputs(steps);
    wsDhNext.resize(batch, hidden);
    wsDcNext.resize(batch, hidden);
    wsDz.resizeForOverwrite(batch, gate_width);

    for (std::size_t step = steps; step-- > 0;) {
        const StepCache &cache = caches[step];
        const Matrix &gh = grad_hidden[step];
        if (gh.rows() != batch || gh.cols() != hidden) {
            panic("Lstm::backwardSequence gradient shape mismatch: " +
                  gh.shape() + " vs " + std::to_string(batch) + "x" +
                  std::to_string(hidden));
        }

        const double *ghbuf = gh.raw().data();
        const double *gatebuf = cache.gates.raw().data();
        const double *tcbuf = cache.tanhCell.raw().data();
        const double *cprevbuf =
            step > 0 ? caches[step - 1].cell.raw().data() : nullptr;
        const double *dhbuf = wsDhNext.raw().data();
        double *dcbuf = wsDcNext.raw().data();
        double *dzbuf = wsDz.raw().data();

        // Fused element-wise pass: writes the packed dz block directly
        // (no hconcat) and the next-step dc in place.  Per element the
        // op order matches the reference hadamard/map chain exactly.
        kernels::runRows(
            batch, batch * gate_width, grain,
            [ghbuf, gatebuf, tcbuf, cprevbuf, dhbuf, dcbuf, dzbuf,
             hidden, gate_width](std::size_t begin, std::size_t end) {
                for (std::size_t r = begin; r < end; ++r) {
                    const double *__restrict grow =
                        gatebuf + r * gate_width;
                    const double *__restrict tcrow = tcbuf + r * hidden;
                    const double *__restrict ghrow = ghbuf + r * hidden;
                    const double *__restrict dhrow = dhbuf + r * hidden;
                    const double *__restrict cprow =
                        cprevbuf ? cprevbuf + r * hidden : nullptr;
                    double *__restrict dcrow = dcbuf + r * hidden;
                    double *__restrict dzrow = dzbuf + r * gate_width;
                    for (std::size_t c = 0; c < hidden; ++c) {
                        const double gi = grow[c];
                        const double gf = grow[hidden + c];
                        const double gg = grow[2 * hidden + c];
                        const double go = grow[3 * hidden + c];
                        const double tc = tcrow[c];
                        const double dh = ghrow[c] + dhrow[c];
                        // h = o * tanh(c)
                        const double d_o = dh * tc;
                        const double dc =
                            ((dh * go) * (1.0 - tc * tc)) + dcrow[c];
                        // c = f*c_prev + i*g
                        const double c_prev = cprow ? cprow[c] : 0.0;
                        const double d_f = dc * c_prev;
                        const double d_i = dc * gg;
                        const double d_g = dc * gi;
                        dcrow[c] = dc * gf;
                        // through the gate non-linearities
                        dzrow[c] = d_i * (gi * (1.0 - gi));
                        dzrow[hidden + c] = d_f * (gf * (1.0 - gf));
                        dzrow[2 * hidden + c] = d_g * (1.0 - gg * gg);
                        dzrow[3 * hidden + c] = d_o * (go * (1.0 - go));
                    }
                }
            });

        // Parameter gradients stay compute-then-accumulate: each
        // product lands in a zeroed staging buffer and is added in one
        // += pass, the same addition order as the reference's
        // `grad += a.transposedMatmul(dz)`.
        cache.input.transposedMatmulInto(wsDz, wsGradW);
        wx.grad += wsGradW;
        cache.hPrev.transposedMatmulInto(wsDz, wsGradW);
        wh.grad += wsGradW;
        wsDz.sumRowsAddTo(b.grad);

        wsDz.matmulTransposedInto(wx.value, grad_inputs[step]);
        wsDz.matmulTransposedInto(wh.value, wsDhNext);
    }
    return grad_inputs;
}

std::vector<Matrix>
Lstm::forwardReference(const std::vector<Matrix> &sequence)
{
    const std::size_t hidden = hiddenSize();
    const std::size_t batch = sequence.front().rows();

    caches.clear();
    refCaches.clear();
    const bool keep_caches = !isInference;
    if (keep_caches)
        refCaches.reserve(sequence.size());

    Matrix h_prev(batch, hidden);
    Matrix c_prev(batch, hidden);
    std::vector<Matrix> outputs;
    outputs.reserve(sequence.size());

    for (const Matrix &x : sequence) {
        if (x.rows() != batch || x.cols() != inputSize())
            panic("Lstm: inconsistent sequence element shape");

        Matrix z = x.matmul(wx.value) + h_prev.matmul(wh.value);
        z = z.addRowBroadcast(b.value);

        RefStepCache cache;
        cache.input = x;
        cache.hPrev = h_prev;
        cache.cPrev = c_prev;
        cache.gateI =
            z.colRange(0, hidden).map(sigmoidScalar);
        cache.gateF =
            z.colRange(hidden, 2 * hidden).map(sigmoidScalar);
        cache.gateG = z.colRange(2 * hidden, 3 * hidden).map(tanhScalar);
        cache.gateO =
            z.colRange(3 * hidden, 4 * hidden).map(sigmoidScalar);

        cache.cell = cache.gateF.hadamard(c_prev) +
                     cache.gateI.hadamard(cache.gateG);
        cache.tanhCell = cache.cell.map(tanhScalar);

        Matrix h = cache.gateO.hadamard(cache.tanhCell);
        outputs.push_back(h);

        h_prev = std::move(h);
        c_prev = cache.cell;
        if (keep_caches)
            refCaches.push_back(std::move(cache));
    }
    return outputs;
}

std::vector<Matrix>
Lstm::backwardReference(const std::vector<Matrix> &grad_hidden)
{
    const std::size_t hidden = hiddenSize();
    const std::size_t steps = refCaches.size();
    const std::size_t batch = refCaches.front().input.rows();

    std::vector<Matrix> grad_inputs(steps);
    Matrix dh_next(batch, hidden);
    Matrix dc_next(batch, hidden);

    auto one_minus_sq = [](double v) { return 1.0 - v * v; };
    auto sig_deriv = [](double v) { return v * (1.0 - v); };

    for (std::size_t step = steps; step-- > 0;) {
        const RefStepCache &cache = refCaches[step];

        Matrix dh = grad_hidden[step] + dh_next;

        // h = o * tanh(c)
        Matrix d_o = dh.hadamard(cache.tanhCell);
        Matrix dc =
            dh.hadamard(cache.gateO).hadamard(cache.tanhCell.map(
                one_minus_sq)) +
            dc_next;

        // c = f*c_prev + i*g
        Matrix d_f = dc.hadamard(cache.cPrev);
        Matrix d_i = dc.hadamard(cache.gateG);
        Matrix d_g = dc.hadamard(cache.gateI);
        dc_next = dc.hadamard(cache.gateF);

        // through the gate non-linearities to pre-activations
        Matrix dz_i = d_i.hadamard(cache.gateI.map(sig_deriv));
        Matrix dz_f = d_f.hadamard(cache.gateF.map(sig_deriv));
        Matrix dz_g = d_g.hadamard(cache.gateG.map(one_minus_sq));
        Matrix dz_o = d_o.hadamard(cache.gateO.map(sig_deriv));

        Matrix dz = dz_i.hconcat(dz_f).hconcat(dz_g).hconcat(dz_o);

        wx.grad += cache.input.transposedMatmul(dz);
        wh.grad += cache.hPrev.transposedMatmul(dz);
        b.grad += dz.sumRows();

        grad_inputs[step] = dz.matmulTransposed(wx.value);
        dh_next = dz.matmulTransposed(wh.value);
    }
    return grad_inputs;
}

std::vector<Param *>
Lstm::params()
{
    return {&wx, &wh, &b};
}

} // namespace adrias::ml
