#include "telemetry/sharded.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adrias::telemetry
{

ShardedWatcherSet::ShardedWatcherSet(std::size_t shards,
                                     std::size_t capacity_seconds)
{
    if (shards == 0)
        fatal("ShardedWatcherSet: shard count must be positive");
    watchers.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        watchers.push_back(std::make_unique<Watcher>(capacity_seconds));
}

Watcher &
ShardedWatcherSet::shard(std::size_t shard_index)
{
    if (shard_index >= watchers.size())
        fatal("ShardedWatcherSet: shard index out of range");
    return *watchers[shard_index];
}

const Watcher &
ShardedWatcherSet::shard(std::size_t shard_index) const
{
    if (shard_index >= watchers.size())
        fatal("ShardedWatcherSet: shard index out of range");
    return *watchers[shard_index];
}

std::vector<std::vector<ml::Matrix>>
ShardedWatcherSet::binnedWindows(std::size_t window_seconds,
                                 std::size_t bins) const
{
    std::vector<std::vector<ml::Matrix>> windows(watchers.size());
    for (std::size_t s = 0; s < watchers.size(); ++s) {
        // Cold shards stay empty: the serving layer must see "no
        // telemetry yet" rather than a window of padded zeros.
        if (watchers[s]->sampleCount() > 0)
            windows[s] =
                watchers[s]->binnedWindow(window_seconds, bins);
    }
    return windows;
}

WatcherHealth
ShardedWatcherSet::aggregateHealth() const
{
    WatcherHealth total;
    for (const auto &watcher : watchers) {
        const WatcherHealth health = watcher->health();
        total.samplesAccepted += health.samplesAccepted;
        total.samplesRepaired += health.samplesRepaired;
        total.eventsRepaired += health.eventsRepaired;
        total.samplesDropped += health.samplesDropped;
        total.stalenessSec =
            std::max(total.stalenessSec, health.stalenessSec);
        total.maxStalenessSec =
            std::max(total.maxStalenessSec, health.maxStalenessSec);
    }
    return total;
}

} // namespace adrias::telemetry
