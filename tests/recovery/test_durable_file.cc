/**
 * @file
 * DurableFile layer tests: atomic replacement, the CRC-framed record
 * container, the in-memory image builder, every corruption class
 * (truncated / bit-flipped / zero-length) against both the tolerant
 * and the strict reader, and chaos-hook kill points.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/io/durable_file.hh"

namespace adrias::io
{
namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
contentsOf(const std::string &path)
{
    Result<std::string> read = readFile(path);
    EXPECT_TRUE(read.ok());
    return read.ok() ? read.value() : std::string();
}

/** Rewrite `path` with `bytes` verbatim (corruption helper). */
void
overwrite(const std::string &path, const std::string &bytes)
{
    ASSERT_TRUE(atomicWriteFile(path, bytes).ok());
}

TEST(AtomicWrite, ReplacesContentAtomically)
{
    const std::string dir = freshDir("adrias_io_atomic");
    const std::string path = dir + "/file.txt";

    ASSERT_TRUE(atomicWriteFile(path, "first").ok());
    EXPECT_EQ(contentsOf(path), "first");

    ASSERT_TRUE(atomicWriteFile(path, "second, longer payload").ok());
    EXPECT_EQ(contentsOf(path), "second, longer payload");

    // No temp residue after a successful publish.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicWrite, ReadFileReportsIoForMissingPath)
{
    const Result<std::string> read =
        readFile(freshDir("adrias_io_missing") + "/nope.txt");
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::Io);
}

TEST(AtomicWrite, ChaosThrowLeavesOnlyTornTempFile)
{
    const std::string dir = freshDir("adrias_io_chaos");
    const std::string path = dir + "/file.txt";
    ASSERT_TRUE(atomicWriteFile(path, "intact").ok());

    AtomicWriteOptions chaos;
    chaos.chaos = [](const char *stage, std::size_t) {
        if (std::string(stage) == "payload-half")
            throw std::runtime_error("killed");
    };
    EXPECT_THROW((void)atomicWriteFile(path, "replacement", chaos),
                 std::runtime_error);

    // The target still holds the OLD content; the torn write is only
    // ever visible as a .tmp orphan.
    EXPECT_EQ(contentsOf(path), "intact");
    EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicWrite, PreRenameChaosKeepsOldContentButFullTemp)
{
    const std::string dir = freshDir("adrias_io_prerename");
    const std::string path = dir + "/file.txt";
    ASSERT_TRUE(atomicWriteFile(path, "old").ok());

    AtomicWriteOptions chaos;
    chaos.chaos = [](const char *stage, std::size_t) {
        if (std::string(stage) == "pre-rename")
            throw std::runtime_error("killed");
    };
    EXPECT_THROW((void)atomicWriteFile(path, "new", chaos),
                 std::runtime_error);
    EXPECT_EQ(contentsOf(path), "old");
    // The temp file was fully written — only the rename was lost.
    EXPECT_EQ(contentsOf(path + ".tmp"), "new");
}

TEST(RecordFile, WriteReadRoundTrip)
{
    const std::string dir = freshDir("adrias_io_records");
    const std::string path = dir + "/log.rec";

    RecordFileWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.append("alpha").ok());
    ASSERT_TRUE(writer.append("").ok()); // empty records are legal
    ASSERT_TRUE(writer.append(std::string(1000, 'z')).ok());
    EXPECT_EQ(writer.appendCount(), 3u);
    writer.close();

    Result<RecordReadResult> read = readRecordFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_FALSE(read.value().tornTail);
    EXPECT_EQ(read.value().droppedBytes, 0u);
    ASSERT_EQ(read.value().records.size(), 3u);
    EXPECT_EQ(read.value().records[0], "alpha");
    EXPECT_EQ(read.value().records[1], "");
    EXPECT_EQ(read.value().records[2], std::string(1000, 'z'));
}

TEST(RecordFile, ReopenAppendContinuesAfterExistingRecords)
{
    const std::string dir = freshDir("adrias_io_append");
    const std::string path = dir + "/log.rec";

    RecordFileWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.append("one").ok());
    writer.close();

    RecordFileWriter again;
    ASSERT_TRUE(again.open(path, /*append=*/true).ok());
    ASSERT_TRUE(again.append("two").ok());
    again.close();

    Result<RecordReadResult> read = readRecordFile(path);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(read.value().records.size(), 2u);
    EXPECT_EQ(read.value().records[1], "two");
}

TEST(RecordFile, InMemoryImageMatchesWriterOutput)
{
    const std::string dir = freshDir("adrias_io_image");
    const std::string viaWriter = dir + "/writer.rec";

    RecordFileWriter writer;
    ASSERT_TRUE(writer.open(viaWriter).ok());
    ASSERT_TRUE(writer.append("section-a").ok());
    ASSERT_TRUE(writer.append("section-b").ok());
    writer.close();

    std::string image = beginRecordFileImage();
    appendFramedRecord(image, "section-a");
    appendFramedRecord(image, "section-b");

    // Byte-for-byte the same container — one format, two producers.
    EXPECT_EQ(image, contentsOf(viaWriter));

    const std::string viaImage = dir + "/image.rec";
    ASSERT_TRUE(atomicWriteFile(viaImage, image).ok());
    Result<std::vector<std::string>> strict =
        readRecordFileStrict(viaImage);
    ASSERT_TRUE(strict.ok());
    ASSERT_EQ(strict.value().size(), 2u);
    EXPECT_EQ(strict.value()[0], "section-a");
}

/** Build a two-record file and return its path + intact byte image. */
std::pair<std::string, std::string>
twoRecordFile(const std::string &dirName)
{
    const std::string path = freshDir(dirName) + "/log.rec";
    std::string image = beginRecordFileImage();
    appendFramedRecord(image, "record-zero");
    appendFramedRecord(image, "record-one");
    EXPECT_TRUE(atomicWriteFile(path, image).ok());
    return {path, image};
}

TEST(RecordFileCorruption, TruncatedTailToleratedStrictRejected)
{
    auto [path, image] = twoRecordFile("adrias_io_trunc");

    // Cut into the middle of the second record's payload.
    overwrite(path, image.substr(0, image.size() - 4));

    Result<RecordReadResult> tolerant = readRecordFile(path);
    ASSERT_TRUE(tolerant.ok());
    EXPECT_TRUE(tolerant.value().tornTail);
    EXPECT_GT(tolerant.value().droppedBytes, 0u);
    ASSERT_EQ(tolerant.value().records.size(), 1u);
    EXPECT_EQ(tolerant.value().records[0], "record-zero");

    Result<std::vector<std::string>> strict = readRecordFileStrict(path);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.error().code, ErrorCode::Truncated);
}

TEST(RecordFileCorruption, BitFlipDropsRecordAndEverythingAfter)
{
    auto [path, image] = twoRecordFile("adrias_io_flip");

    // Flip one payload byte of the FIRST record: its CRC fails, and
    // the (intact) second record after it must not be served either —
    // a mid-file flip makes frame boundaries untrustworthy.
    std::string flipped = image;
    flipped[kRecordFileMagicSize + 8] ^= 0x40;
    overwrite(path, flipped);

    Result<RecordReadResult> tolerant = readRecordFile(path);
    ASSERT_TRUE(tolerant.ok());
    EXPECT_TRUE(tolerant.value().tornTail);
    EXPECT_TRUE(tolerant.value().records.empty());

    Result<std::vector<std::string>> strict = readRecordFileStrict(path);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.error().code, ErrorCode::Truncated);
}

TEST(RecordFileCorruption, ZeroLengthFileIsTruncatedError)
{
    const std::string path =
        freshDir("adrias_io_zero") + "/log.rec";
    overwrite(path, "");

    Result<RecordReadResult> tolerant = readRecordFile(path);
    ASSERT_FALSE(tolerant.ok());
    EXPECT_EQ(tolerant.error().code, ErrorCode::Truncated);

    Result<std::vector<std::string>> strict = readRecordFileStrict(path);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.error().code, ErrorCode::Truncated);
}

TEST(RecordFileCorruption, WrongMagicIsBadHeader)
{
    auto [path, image] = twoRecordFile("adrias_io_magic");
    std::string mangled = image;
    mangled[0] = 'X';
    overwrite(path, mangled);

    Result<RecordReadResult> read = readRecordFile(path);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::BadHeader);
}

TEST(RecordFileCorruption, LengthFieldOverrunIsTornTail)
{
    const std::string path =
        freshDir("adrias_io_overrun") + "/log.rec";
    std::string image = beginRecordFileImage();
    appendFramedRecord(image, "good");
    // A header claiming 0xffffff bytes with nothing behind it — what a
    // kill mid-header leaves when the length bytes landed but not the
    // payload.
    image += std::string("\xff\xff\xff\x00", 4);
    overwrite(path, image);

    Result<RecordReadResult> read = readRecordFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read.value().tornTail);
    ASSERT_EQ(read.value().records.size(), 1u);
    EXPECT_EQ(read.value().records[0], "good");
}

TEST(RecordFile, ChaosMidAppendLeavesPreviousRecordsReadable)
{
    const std::string dir = freshDir("adrias_io_midappend");
    const std::string path = dir + "/log.rec";

    RecordFileWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.append("durable").ok());
    writer.setChaosHook([](const char *stage, std::size_t) {
        if (std::string(stage) == "record-half")
            throw std::runtime_error("killed");
    });
    EXPECT_THROW((void)writer.append("torn-record-payload"),
                 std::runtime_error);

    // Exactly the SIGKILL picture: the first record survives, the torn
    // half-append is reported and dropped.
    Result<RecordReadResult> read = readRecordFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read.value().tornTail);
    ASSERT_EQ(read.value().records.size(), 1u);
    EXPECT_EQ(read.value().records[0], "durable");
}

} // namespace
} // namespace adrias::io
