/**
 * @file
 * Hyper-parameters of the Adrias prediction models.
 *
 * The architectures follow Fig. 11 of the paper (2 LSTM layers feeding
 * a triplet of Dense+ReLU+BatchNorm+Dropout blocks); sizes are scaled
 * down from the PyTorch originals so CPU training stays in seconds
 * (documented substitution, DESIGN.md §5).
 */

#ifndef ADRIAS_MODELS_CONFIG_HH
#define ADRIAS_MODELS_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "ml/sequential.hh"

namespace adrias::models
{

/** Training/topology knobs shared by both model families. */
struct ModelConfig
{
    /**
     * Normalization inside the head blocks.  The paper's architecture
     * uses batch normalization; layer normalization is the default
     * here because the spiky channel counters make small-batch
     * statistics untransferable to single-sample inference (see
     * DESIGN.md §5 and the bench/ablation_head_norm experiment).
     */
    ml::HeadNorm headNorm = ml::HeadNorm::Layer;

    /** LSTM hidden width H. */
    std::size_t hidden = 24;

    /** Width of each non-linear head block. */
    std::size_t headWidth = 32;

    /** Dropout probability inside the head blocks. */
    double dropout = 0.05;

    /** Adam learning rate. */
    double learningRate = 5e-3;

    /** Training epochs. */
    std::size_t epochs = 30;

    /** Minibatch size. */
    std::size_t batchSize = 32;

    /** Global gradient-norm clip. */
    double gradClip = 5.0;

    /** Weight-init / shuffle / dropout seed. */
    std::uint64_t seed = 1234;

    /**
     * Regress log(target) instead of the raw target in the
     * performance models.  Execution times and tail latencies are
     * right-skewed across congestion levels; the log transform makes
     * the loss scale-free and markedly improves R².
     */
    bool logTarget = true;
};

} // namespace adrias::models

#endif // ADRIAS_MODELS_CONFIG_HH
