/**
 * @file
 * Percentile estimation for latency distributions.
 *
 * The LC workload path needs p99/p99.9 over many sampled request
 * latencies.  Two estimators are provided: an exact sampler that keeps
 * all values (fine for simulation volumes) and a reservoir sampler with
 * bounded memory for very long runs.
 */

#ifndef ADRIAS_STATS_PERCENTILE_HH
#define ADRIAS_STATS_PERCENTILE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace adrias::stats
{

/**
 * Compute the q-quantile of a sample by linear interpolation
 * (type-7, the numpy/R default).
 *
 * @param values sample (copied and sorted internally).
 * @param q quantile in [0, 1]; e.g. 0.99 for the 99th percentile.
 *        Anything outside the closed interval — including NaN — is a
 *        caller bug and throws (fatal), even for an empty sample.
 * @return interpolated quantile; NaN for an empty sample.
 */
double quantile(std::vector<double> values, double q);

/** Exact percentile tracker that retains all observations. */
class PercentileTracker
{
  public:
    /** Record one observation. */
    void add(double value) { samples.push_back(value); }

    /** @return the q-quantile of everything recorded so far. */
    double quantile(double q) const;

    /** @return number of recorded observations. */
    std::size_t count() const { return samples.size(); }

    /** @return mean of the recorded observations (NaN when empty). */
    double mean() const;

    /** Drop all observations. */
    void clear() { samples.clear(); }

    /** @return the raw samples (chronological). */
    const std::vector<double> &values() const { return samples; }

  private:
    std::vector<double> samples;
};

/**
 * Bounded-memory quantile estimator using reservoir sampling
 * (Vitter's algorithm R).
 *
 * Semantics: the first `capacity` observations fill the reservoir
 * directly.  Observation number n > capacity (1-based) draws a slot
 * uniformly from {0, ..., n-1} — `rng.uniformInt(0, seen - 1)` with
 * *inclusive* bounds, after `seen` has been advanced — and replaces
 * `reservoir[slot]` only when slot < capacity.  The replacement
 * probability is therefore exactly capacity/n, which by induction
 * keeps every observation retained with equal probability capacity/n.
 * The Rng's uniformInt uses rejection sampling, so no modulo bias
 * skews the slot choice.  Replacement decisions are driven entirely by
 * the seeded Rng: one (seed, input sequence) pair always yields the
 * same reservoir, making quantiles over it reproducible.
 */
class ReservoirSampler
{
  public:
    /**
     * @param capacity number of retained samples (> 0).
     * @param seed RNG seed for replacement decisions.
     */
    explicit ReservoirSampler(std::size_t capacity,
                              std::uint64_t seed = 12345);

    /** Offer one observation to the reservoir. */
    void add(double value);

    /** @return estimated q-quantile from the reservoir contents. */
    double quantile(double q) const;

    /** @return total observations offered (not retained). */
    std::size_t count() const { return seen; }

    /** @return number of retained samples. */
    std::size_t retained() const { return reservoir.size(); }

    /** @return the retained samples (reservoir slot order). */
    const std::vector<double> &values() const { return reservoir; }

  private:
    std::size_t cap;
    std::size_t seen = 0;
    std::vector<double> reservoir;
    Rng rng;
};

} // namespace adrias::stats

#endif // ADRIAS_STATS_PERCENTILE_HH
