/**
 * @file
 * Gradient-descent optimizers (SGD with momentum, Adam).
 */

#ifndef ADRIAS_ML_OPTIMIZER_HH
#define ADRIAS_ML_OPTIMIZER_HH

#include <vector>

#include "ml/layer.hh"

namespace adrias::ml
{

/** Abstract parameter updater. */
class Optimizer
{
  public:
    /** @param parameters the set of tensors this optimizer steps. */
    explicit Optimizer(std::vector<Param *> parameters);
    virtual ~Optimizer() = default;

    /** Apply one update from accumulated gradients. */
    virtual void step() = 0;

    /** Zero every parameter's gradient accumulator. */
    void zeroGrad();

    /**
     * Scale gradients so their global L2 norm is at most @p max_norm.
     * @return the pre-clip norm.
     */
    double clipGradNorm(double max_norm);

  protected:
    std::vector<Param *> params;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Param *> parameters, double learning_rate,
        double momentum = 0.0);

    void step() override;

  private:
    double lr;
    double momentum;
    std::vector<Matrix> velocity;
};

/** Adam optimizer with bias correction (Kingma & Ba, 2015). */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Param *> parameters, double learning_rate = 1e-3,
         double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8);

    void step() override;

    /** Current learning rate (mutable for simple decay schedules). */
    double learningRate() const { return lr; }
    void setLearningRate(double learning_rate) { lr = learning_rate; }

  private:
    double lr;
    double beta1;
    double beta2;
    double epsilon;
    std::size_t t = 0;
    std::vector<Matrix> m; ///< first-moment estimates
    std::vector<Matrix> v; ///< second-moment estimates
};

} // namespace adrias::ml

#endif // ADRIAS_ML_OPTIMIZER_HH
