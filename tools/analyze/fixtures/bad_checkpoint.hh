// Analyzer fixture: checkpoint-coverage violations.  Never compiled —
// parsed by tools/analyze self-tests.  The bodies live in
// bad_checkpoint_impl.cc to prove cross-file merging.

#ifndef ADRIAS_ANALYZE_FIXTURE_BAD_CHECKPOINT_HH
#define ADRIAS_ANALYZE_FIXTURE_BAD_CHECKPOINT_HH

#include "common/io/checkpoint_annotations.hh"
#include "common/io/checkpointable.hh"

namespace adrias::fixture
{

struct TelemeterConfig
{
    int windowSec = 120;
};

class Telemeter final : public io::Checkpointable
{
  public:
    explicit Telemeter(TelemeterConfig cfg);

    std::string checkpointTag() const override { return "telemeter"; }

    void saveState(io::BinaryWriter &out) const override;
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in) override;

  private:
    /** Covered on both sides (save goes through writeCore()). */
    std::uint64_t samples = 0;

    /** Saved but never restored: must be flagged. */
    double ema = 0.0;

    /** Neither saved nor restored: must be flagged. */
    int window = 0;

    /** Waived with a reason: must NOT be flagged. */
    TelemeterConfig cfg ADRIAS_NOT_CHECKPOINTED(
        "construction-time configuration, re-supplied on restore");

    /** Synchronization, not state: auto-exempt. */
    mutable Mutex mu;

    /** Shared, not per-instance state: auto-exempt. */
    static int instances;

    void writeCore(io::BinaryWriter &out) const;
};

} // namespace adrias::fixture

#endif // ADRIAS_ANALYZE_FIXTURE_BAD_CHECKPOINT_HH
