/**
 * @file
 * Threshold-based dynamic migrator — a reference L2 runtime-management
 * mechanism (paper §II) complementary to the L1 Adrias orchestrator.
 *
 * Watches each remote-placed deployment's recent slowdown; when the
 * exponential moving average exceeds a threshold the app is demoted to
 * local DRAM, paying a pause proportional to its memory footprint
 * copied over the channel.
 */

#ifndef ADRIAS_CORE_RUNTIME_MIGRATOR_HH
#define ADRIAS_CORE_RUNTIME_MIGRATOR_HH

#include <map>

#include "scenario/runtime.hh"
#include "stats/ewma.hh"

namespace adrias::core
{

/** Knobs of the threshold migrator. */
struct MigratorConfig
{
    /** Demote a remote app once its EWMA slowdown exceeds this. */
    double slowdownThreshold = 2.0;

    /** EWMA smoothing factor per one-second tick. */
    double ewmaAlpha = 0.2;

    /** Ticks an app must be observed before it may migrate. */
    std::size_t warmupTicks = 10;

    /** Effective copy bandwidth for the migration pause, GB/s. */
    double copyBandwidthGBps = 0.3125;

    /** Migrations allowed per deployment (thrashing guard). */
    std::size_t maxMigrationsPerApp = 1;
};

/** Demote-on-contention runtime manager. */
class ThresholdMigrator : public scenario::RuntimePolicy
{
  public:
    explicit ThresholdMigrator(MigratorConfig config = {});

    std::string name() const override { return "threshold-migrator"; }

    void
    onTick(const std::vector<workloads::WorkloadInstance *> &running,
           const testbed::TickResult &tick, SimTime now) override;

    /** Migrations triggered so far. */
    std::size_t migrationsTriggered() const { return triggered; }

  private:
    MigratorConfig config;
    std::size_t triggered = 0;

    struct AppState
    {
        stats::Ewma ewma;
        std::size_t migrations = 0;

        explicit AppState(double alpha) : ewma(alpha) {}
    };
    std::map<DeploymentId, AppState> state;
};

} // namespace adrias::core

#endif // ADRIAS_CORE_RUNTIME_MIGRATOR_HH
