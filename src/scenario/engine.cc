#include "scenario/engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "testbed/topology.hh"

namespace adrias::scenario
{

using workloads::IBenchKind;
using workloads::WorkloadInstance;
using workloads::WorkloadSpec;

namespace
{

/**
 * Testbed calibration for the configured topology.  "paper-pair" keeps
 * the caller's params untouched (the default path stays bit-identical
 * to the historical engine); any other single-node topology calibrates
 * the testbed from its node params and first link's profile.
 */
testbed::TestbedParams
resolveEngineParams(const ScenarioConfig &config,
                    testbed::TestbedParams params)
{
    if (config.topology == "paper-pair")
        return params;
    const testbed::Topology topo = testbed::topologyByName(config.topology);
    if (topo.nodeCount() != 1)
        fatal("ScenarioEngine: topology '" + config.topology + "' has " +
              std::to_string(topo.nodeCount()) +
              " compute nodes; the single-node engine needs exactly one "
              "(drive multi-node racks through ClusterScenarioRunner)");
    if (topo.linkCount() == 0)
        fatal("ScenarioEngine: topology '" + config.topology +
              "' has no links");
    testbed::TestbedParams resolved = topo.node(0).local;
    resolved.withLinkProfile(topo.link(0).profile);
    return resolved;
}

void
saveMatrixSequence(io::BinaryWriter &out,
                   const std::vector<ml::Matrix> &sequence)
{
    out.writeU64(sequence.size());
    for (const ml::Matrix &step : sequence) {
        out.writeU64(step.rows());
        out.writeU64(step.cols());
        out.writeF64Vector(step.raw());
    }
}

[[nodiscard]] Result<std::vector<ml::Matrix>>
loadMatrixSequence(io::BinaryReader &in)
{
    std::vector<ml::Matrix> sequence;
    const std::uint64_t steps = in.readU64();
    for (std::uint64_t s = 0; s < steps && in.ok(); ++s) {
        const std::uint64_t rows = in.readU64();
        const std::uint64_t cols = in.readU64();
        std::vector<double> values = in.readF64Vector();
        if (!in.ok())
            break;
        if (values.size() != rows * cols)
            return makeError(ErrorCode::Geometry,
                             "matrix data size does not match its "
                             "declared shape");
        sequence.emplace_back(rows, cols, std::move(values));
    }
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "truncated matrix sequence");
    return sequence;
}

void
saveRecord(io::BinaryWriter &out, const DeploymentRecord &record)
{
    out.writeU64(record.id);
    out.writeString(record.name);
    out.writeU8(static_cast<std::uint8_t>(record.cls));
    out.writeU8(static_cast<std::uint8_t>(record.mode));
    out.writeI64(record.arrival);
    out.writeI64(record.completion);
    out.writeF64(record.execTimeSec);
    out.writeF64(record.p99Ms);
    out.writeF64(record.p999Ms);
    out.writeF64(record.meanLatencyMs);
    out.writeF64(record.meanSlowdown);
    out.writeF64(record.remoteTrafficGB);
    out.writeU64(record.migrations);
    saveMatrixSequence(out, record.historyWindow);
    saveMatrixSequence(out, record.executionWindow);
}

[[nodiscard]] Result<DeploymentRecord>
loadRecord(io::BinaryReader &in)
{
    DeploymentRecord record;
    record.id = in.readU64();
    record.name = in.readString();
    const std::uint8_t rawCls = in.readU8();
    const std::uint8_t rawMode = in.readU8();
    record.arrival = in.readI64();
    record.completion = in.readI64();
    record.execTimeSec = in.readF64();
    record.p99Ms = in.readF64();
    record.p999Ms = in.readF64();
    record.meanLatencyMs = in.readF64();
    record.meanSlowdown = in.readF64();
    record.remoteTrafficGB = in.readF64();
    record.migrations = in.readU64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "truncated deployment record");
    if (rawCls > static_cast<std::uint8_t>(WorkloadClass::Interference))
        return makeError(ErrorCode::BadNumber,
                         "deployment record has invalid workload class");
    if (rawMode > static_cast<std::uint8_t>(MemoryMode::Remote))
        return makeError(ErrorCode::BadNumber,
                         "deployment record has invalid memory mode");
    record.cls = static_cast<WorkloadClass>(rawCls);
    record.mode = static_cast<MemoryMode>(rawMode);
    Result<std::vector<ml::Matrix>> history = loadMatrixSequence(in);
    if (!history)
        return history.error();
    record.historyWindow = std::move(history.value());
    Result<std::vector<ml::Matrix>> execution = loadMatrixSequence(in);
    if (!execution)
        return execution.error();
    record.executionWindow = std::move(execution.value());
    return record;
}

} // namespace

ScenarioEngine::ScenarioEngine(ScenarioConfig config_,
                               testbed::TestbedParams params)
    : config(std::move(config_)),
      testbedParams(resolveEngineParams(config, params)),
      rng(config.seed), bed(testbedParams, rng.nextU64()),
      watcherState(kWindowSec * 4), injector(config.faults)
{
    if (config.durationSec <= 0)
        fatal("ScenarioEngine: duration must be positive");
    if (config.spawnMinSec <= 0 || config.spawnMaxSec < config.spawnMinSec)
        fatal("ScenarioEngine: invalid spawn interval");
    if (config.ibenchFraction + config.lcFraction > 1.0)
        fatal("ScenarioEngine: arrival fractions exceed 1");

    bed.setNoise(config.counterNoise);
    result.trace.reserve(static_cast<std::size_t>(config.durationSec));
    result.concurrency.reserve(
        static_cast<std::size_t>(config.durationSec));
    nextArrival = rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);
}

void
ScenarioEngine::queueReplayDecision(const PlacementDecision &decision)
{
    replayQueue.push_back(decision);
}

void
ScenarioEngine::admitArrivals(PlacementPolicy &policy)
{
    const auto &sparks = workloads::sparkBenchmarks();
    const auto &lcs = workloads::latencyCriticalBenchmarks();
    const IBenchKind ibench_kinds[] = {IBenchKind::Cpu, IBenchKind::L2,
                                       IBenchKind::L3, IBenchKind::MemBw};

    while (now_ >= nextArrival) {
        nextArrival +=
            rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);
        if (running.size() >= config.maxConcurrent) {
#if ADRIAS_OBS_ENABLED
            if (obs::enabled())
                obs::MetricsRegistry::global()
                    .counter("scenario.dropped_arrivals")
                    .add();
#endif
            continue; // testbed full: drop, as the prototype would
        }

        const double draw = rng.uniform();
        const WorkloadSpec *spec = nullptr;
        bool is_ibench = false;
        if (draw < config.ibenchFraction) {
            spec = &workloads::ibenchSpec(
                ibench_kinds[rng.uniformInt(0, 3)]);
            is_ibench = true;
        } else if (draw < config.ibenchFraction + config.lcFraction) {
            spec = &lcs[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(lcs.size()) - 1))];
        } else {
            spec = &sparks[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(sparks.size()) - 1))];
        }

        // Trashers model background interference and are always
        // placed randomly; applications go through the policy.
        MemoryMode mode;
        if (is_ibench) {
            mode = rng.bernoulli(0.5) ? MemoryMode::Remote
                                      : MemoryMode::Local;
        } else {
            // The policy always runs — during journal replay too, so
            // its internal RNG/predictor state advances exactly as in
            // the original execution — and the re-derived decision is
            // verified against the write-ahead journal.
            mode = policy.place(*spec, watcherState, now_);
            const PlacementDecision decision{now_, nextId, spec->name,
                                             mode};
            if (!replayQueue.empty()) {
                const PlacementDecision expected = replayQueue.front();
                replayQueue.pop_front();
                if (!(expected == decision))
                    panic("ScenarioEngine: journal replay diverged at "
                          "t=" +
                          std::to_string(now_) + " (journal: " +
                          expected.specName + " id " +
                          std::to_string(expected.id) +
                          ", replay: " + decision.specName + " id " +
                          std::to_string(decision.id) + ")");
            } else if (decisionSink != nullptr) {
                // Write-ahead: the decision becomes durable before the
                // deployment exists anywhere else.
                decisionSink->onDecision(decision);
            }
        }

        auto instance = std::make_unique<WorkloadInstance>(
            nextId++, *spec, mode, now_, rng.nextU64());
        running.push_back(std::move(instance));

#if ADRIAS_OBS_ENABLED
        if (obs::enabled()) {
            obs::MetricsRegistry::global()
                .counter("scenario.arrivals")
                .add();
            if (obs::Tracer::global().enabled()) {
                obs::Tracer::global().simInstant(
                    "arrival:" + spec->name, "scenario", now_,
                    {obs::arg("class", toString(spec->cls)),
                     obs::arg("mode", toString(mode))});
            }
        }
#endif
    }
}

void
ScenarioEngine::harvestCompletions(PlacementPolicy &policy)
{
    for (std::size_t i = running.size(); i-- > 0;) {
        if (!running[i]->finished())
            continue;
        const WorkloadInstance &done = *running[i];
        DeploymentRecord record;
        record.id = done.id();
        record.name = done.spec().name;
        record.cls = done.spec().cls;
        record.mode = done.mode();
        record.arrival = done.arrivalTime();
        record.completion = now_ + 1;
        record.execTimeSec = done.executionTimeSec();
        if (record.cls == WorkloadClass::LatencyCritical) {
            record.p99Ms = done.tailLatencyMs(0.99);
            record.p999Ms = done.tailLatencyMs(0.999);
            record.meanLatencyMs = done.meanLatencyMs();
        }
        record.meanSlowdown = done.meanSlowdown();
        record.remoteTrafficGB = done.remoteTrafficGB();
        record.migrations = done.migrationCount();
        record.historyWindow = historyWindowAt(result.trace,
                                               record.arrival);
        record.executionWindow = telemetry::binSpan(
            result.trace, static_cast<std::size_t>(record.arrival),
            result.trace.size(), kWindowBins);
        policy.onCompletion(record);
#if ADRIAS_OBS_ENABLED
        if (obs::enabled()) {
            obs::MetricsRegistry::global()
                .counter("scenario.completions")
                .add();
            if (obs::Tracer::global().enabled()) {
                obs::Tracer::global().simInstant(
                    "complete:" + record.name, "scenario", now_ + 1,
                    {obs::arg("mode", toString(record.mode)),
                     obs::arg("exec_s", record.execTimeSec),
                     obs::arg("slowdown", record.meanSlowdown)});
            }
        }
#endif
        result.records.push_back(std::move(record));
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    }
}

void
ScenarioEngine::stepTick(PlacementPolicy &policy, RuntimePolicy *runtime)
{
    if (finished())
        panic("ScenarioEngine::stepTick past the configured duration");

    // --- arrivals -----------------------------------------------------
    admitArrivals(policy);

    // --- one second of contention -------------------------------------
    // Injected link faults derate the channel before the tick
    // resolves contention.
    const fault::LinkState link = injector.linkStateAt(now_);
    bed.setChannelFault(link.bwScale, link.latencyScale);

    std::vector<testbed::LoadDescriptor> loads;
    loads.reserve(running.size());
    for (const auto &instance : running)
        loads.push_back(instance->load());
    const testbed::TickResult tick = bed.tick(loads);

    // --- telemetry, through the fault injector ------------------------
    // The Watcher sees what a real deployment would: dropped, stale or
    // corrupted samples; it repairs what it can and the trace records
    // its observed (post-repair) view.
    testbed::CounterSample observed = tick.counters;
    const fault::CounterAction action = injector.applyCounterFaults(
        observed, result.trace.empty() ? nullptr : &result.trace.back(),
        now_);
    if (action == fault::CounterAction::Drop)
        watcherState.recordDropped(now_);
    else
        watcherState.record(observed, now_);
    result.trace.push_back(watcherState.latest());
    result.concurrency.push_back(static_cast<int>(running.size()));
    result.totalRemoteTrafficGB += tick.remoteTrafficGBps;

#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &ticks_c =
            obs::MetricsRegistry::global().counter("scenario.ticks");
        ticks_c.add();
        if (obs::Tracer::global().enabled()) {
            obs::Tracer::global().simSpan(
                "tick", "scenario", now_, now_ + 1,
                {obs::arg("concurrency",
                          static_cast<std::int64_t>(running.size())),
                 obs::arg("pressure", tick.channelPressure)});
        }
    }
#endif

    // --- progress & completion ----------------------------------------
    for (std::size_t i = 0; i < running.size(); ++i)
        running[i]->advance(tick.outcomes[i], now_ + 1);

    // --- L2 runtime management ----------------------------------------
    if (runtime) {
        std::vector<WorkloadInstance *> live;
        live.reserve(running.size());
        for (const auto &instance : running)
            live.push_back(instance.get());
        runtime->onTick(live, tick, now_ + 1);
    }

    harvestCompletions(policy);
    ++now_;
}

ScenarioResult
ScenarioEngine::finish()
{
    if (!finished())
        panic("ScenarioEngine::finish before the scenario completed");
    result.faultSummary = injector.stats();
    result.watcherHealth = watcherState.health();
    return std::move(result);
}

void
ScenarioEngine::saveState(io::BinaryWriter &out) const
{
    if (!replayQueue.empty())
        panic("ScenarioEngine::saveState during journal replay");

    out.writeI64(now_);
    out.writeU64(nextId);
    out.writeI64(nextArrival);
    rng.saveState(out);
    bed.saveState(out);
    watcherState.saveState(out);
    injector.saveState(out);

    out.writeU64(result.trace.size());
    for (const testbed::CounterSample &sample : result.trace)
        for (double event : sample)
            out.writeF64(event);
    out.writeI32Vector(result.concurrency);
    out.writeF64(result.totalRemoteTrafficGB);
    out.writeU64(result.records.size());
    for (const DeploymentRecord &record : result.records)
        saveRecord(out, record);

    out.writeU64(running.size());
    for (const auto &instance : running)
        instance->saveState(out);

    // Topology stamp, last so every historical field keeps its offset:
    // a snapshot only restores into an engine built on the same rack.
    out.writeString(config.topology);
}

Result<void>
ScenarioEngine::restoreState(io::BinaryReader &in)
{
    now_ = in.readI64();
    nextId = in.readU64();
    nextArrival = in.readI64();
    rng.restoreState(in);
    if (Result<void> restored = bed.restoreState(in); !restored)
        return restored;
    if (Result<void> restored = watcherState.restoreState(in); !restored)
        return restored;
    if (Result<void> restored = injector.restoreState(in); !restored)
        return restored;

    const std::uint64_t traceLen = in.readU64();
    if (traceLen > static_cast<std::uint64_t>(config.durationSec))
        return makeError(ErrorCode::Geometry,
                         "ScenarioEngine: snapshot trace longer than the "
                         "configured duration");
    result.trace.clear();
    result.trace.reserve(static_cast<std::size_t>(config.durationSec));
    for (std::uint64_t i = 0; i < traceLen && in.ok(); ++i) {
        testbed::CounterSample sample{};
        for (double &event : sample)
            event = in.readF64();
        result.trace.push_back(sample);
    }
    result.concurrency = in.readI32Vector();
    result.concurrency.reserve(
        static_cast<std::size_t>(config.durationSec));
    result.totalRemoteTrafficGB = in.readF64();
    const std::uint64_t recordCount = in.readU64();
    result.records.clear();
    for (std::uint64_t i = 0; i < recordCount && in.ok(); ++i) {
        Result<DeploymentRecord> record = loadRecord(in);
        if (!record)
            return record.error();
        result.records.push_back(std::move(record.value()));
    }

    const std::uint64_t runningCount = in.readU64();
    if (runningCount > config.maxConcurrent)
        return makeError(ErrorCode::Geometry,
                         "ScenarioEngine: snapshot holds more running "
                         "instances than the concurrency cap");
    running.clear();
    for (std::uint64_t i = 0; i < runningCount && in.ok(); ++i) {
        Result<std::unique_ptr<WorkloadInstance>> instance =
            WorkloadInstance::restoreFromState(in);
        if (!instance)
            return instance.error();
        running.push_back(std::move(instance.value()));
    }
    const std::string snapshotTopology = in.readString();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "ScenarioEngine: truncated snapshot section");
    if (snapshotTopology != config.topology)
        return makeError(ErrorCode::Geometry,
                         "ScenarioEngine: snapshot was taken on topology '" +
                             snapshotTopology +
                             "' but this engine runs on '" +
                             config.topology + "'");
    if (now_ < 0 || result.trace.size() != static_cast<std::size_t>(now_))
        return makeError(ErrorCode::Geometry,
                         "ScenarioEngine: snapshot trace length does not "
                         "match its tick cursor");
    return {};
}

} // namespace adrias::scenario
