/**
 * @file
 * Umbrella header: the public API of the Adrias library.
 *
 * Downstream users include this single header to get the full stack —
 * testbed simulation, workloads, telemetry, scenario generation, the
 * prediction models and the orchestrator.  See examples/quickstart.cc.
 */

#ifndef ADRIAS_CORE_ADRIAS_HH
#define ADRIAS_CORE_ADRIAS_HH

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "core/cluster_orchestrator.hh"
#include "core/orchestrator.hh"
#include "core/runtime_migrator.hh"
#include "core/schedulers.hh"
#include "fault/circuit_breaker.hh"
#include "fault/fault.hh"
#include "models/guard.hh"
#include "models/predictor.hh"
#include "scenario/dataset.hh"
#include "scenario/runner.hh"
#include "scenario/signature.hh"
#include "stats/histogram.hh"
#include "stats/regression_metrics.hh"
#include "telemetry/watcher.hh"
#include "testbed/testbed.hh"
#include "workloads/memtier.hh"
#include "workloads/workload.hh"

namespace adrias::core
{

/**
 * Convenience bundle for the common end-to-end flow: collect traces,
 * build datasets, train the Predictor and hand out orchestrators.
 */
class AdriasStack
{
  public:
    /** Trace-collection and training knobs. */
    struct BuildOptions
    {
        /** Number of randomized data-collection scenarios. */
        std::size_t scenarios = 6;

        /** Length of each scenario, seconds. */
        SimTime scenarioDurationSec = 1800;

        /** Base seed; scenario i uses seed + i. */
        std::uint64_t seed = 100;

        /** Model hyper-parameters. */
        models::ModelConfig model{};

        /** Testbed calibration. */
        testbed::TestbedParams testbed{};
    };

    /**
     * Run the full offline phase: signatures, random-placement trace
     * collection across spawn intervals {5,20}..{5,60}, dataset
     * construction and model training.
     */
    explicit AdriasStack(BuildOptions options);

    /** Build with all-default options. */
    AdriasStack();

    const models::Predictor &predictor() const { return stack; }
    scenario::SignatureStore &signatures() { return store; }

    /** Collected scenarios (reusable for evaluation benches). */
    const std::vector<scenario::ScenarioResult> &traces() const
    {
        return collected;
    }

    /** @return a fresh orchestrator bound to this stack. */
    AdriasOrchestrator
    makeOrchestrator(AdriasConfig config = {})
    {
        return AdriasOrchestrator(stack, store, config);
    }

  private:
    scenario::SignatureStore store;
    models::Predictor stack;
    std::vector<scenario::ScenarioResult> collected;
};

} // namespace adrias::core

#endif // ADRIAS_CORE_ADRIAS_HH
