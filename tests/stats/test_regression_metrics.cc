/** @file Unit tests for stats/regression_metrics. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/regression_metrics.hh"

namespace adrias::stats
{
namespace
{

TEST(R2Score, PerfectPredictionIsOne)
{
    std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(r2Score(a, a), 1.0);
}

TEST(R2Score, MeanPredictorIsZero)
{
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> p{2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(r2Score(a, p), 0.0);
}

TEST(R2Score, WorseThanMeanIsNegative)
{
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> p{3.0, 2.0, 1.0};
    EXPECT_LT(r2Score(a, p), 0.0);
}

TEST(R2Score, ConstantActualDegenerateCases)
{
    std::vector<double> a{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(r2Score(a, a), 1.0);
    std::vector<double> p{5.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(r2Score(a, p), 0.0);
}

TEST(R2Score, SizeMismatchIsFatal)
{
    EXPECT_THROW(r2Score({1.0}, {1.0, 2.0}), std::runtime_error);
    EXPECT_THROW(r2Score({}, {}), std::runtime_error);
}

TEST(Mae, KnownValue)
{
    EXPECT_DOUBLE_EQ(meanAbsoluteError({1.0, 2.0, 3.0}, {2.0, 2.0, 5.0}),
                     1.0);
}

TEST(Rmse, KnownValue)
{
    EXPECT_DOUBLE_EQ(rootMeanSquaredError({0.0, 0.0}, {3.0, 4.0}),
                     std::sqrt(12.5));
}

TEST(Rmse, AtLeastMae)
{
    Rng rng(77);
    std::vector<double> a, p;
    for (int i = 0; i < 200; ++i) {
        a.push_back(rng.uniform(0.0, 10.0));
        p.push_back(rng.uniform(0.0, 10.0));
    }
    EXPECT_GE(rootMeanSquaredError(a, p), meanAbsoluteError(a, p));
}

TEST(Mape, KnownValue)
{
    // Errors: 10% and 20% -> mean 15%.
    EXPECT_NEAR(
        meanAbsolutePercentageError({10.0, 10.0}, {9.0, 12.0}), 15.0, 1e-9);
}

TEST(Mape, SkipsNearZeroActuals)
{
    EXPECT_NEAR(
        meanAbsolutePercentageError({0.0, 10.0}, {5.0, 11.0}), 10.0, 1e-9);
}

TEST(Mape, AllZeroActualsYieldZero)
{
    EXPECT_DOUBLE_EQ(meanAbsolutePercentageError({0.0, 0.0}, {1.0, 2.0}),
                     0.0);
}

} // namespace
} // namespace adrias::stats
