/** @file Unit tests for stats/ewma. */

#include <gtest/gtest.h>

#include "stats/ewma.hh"

namespace adrias::stats
{
namespace
{

TEST(Ewma, RejectsBadAlpha)
{
    EXPECT_THROW(Ewma(0.0), std::runtime_error);
    EXPECT_THROW(Ewma(1.5), std::runtime_error);
    EXPECT_NO_THROW(Ewma(1.0));
}

TEST(Ewma, SeedsWithFirstSample)
{
    Ewma ewma(0.2);
    EXPECT_EQ(ewma.count(), 0u);
    EXPECT_DOUBLE_EQ(ewma.value(), 0.0);
    ewma.add(10.0);
    EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
    EXPECT_EQ(ewma.count(), 1u);
}

TEST(Ewma, UpdateRule)
{
    Ewma ewma(0.5);
    ewma.add(10.0);
    EXPECT_DOUBLE_EQ(ewma.add(20.0), 15.0);
    EXPECT_DOUBLE_EQ(ewma.add(15.0), 15.0);
}

TEST(Ewma, AlphaOneTracksLastSample)
{
    Ewma ewma(1.0);
    for (double v : {3.0, 7.0, 1.0})
        EXPECT_DOUBLE_EQ(ewma.add(v), v);
}

TEST(Ewma, ConvergesToConstantStream)
{
    Ewma ewma(0.1);
    ewma.add(100.0);
    for (int i = 0; i < 200; ++i)
        ewma.add(5.0);
    EXPECT_NEAR(ewma.value(), 5.0, 1e-6);
}

TEST(Ewma, SmallerAlphaSmoothsMore)
{
    Ewma fast(0.5), slow(0.05);
    fast.add(0.0);
    slow.add(0.0);
    fast.add(10.0);
    slow.add(10.0);
    EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ResetVariants)
{
    Ewma ewma(0.3);
    ewma.add(4.0);
    ewma.reset();
    EXPECT_EQ(ewma.count(), 0u);
    EXPECT_DOUBLE_EQ(ewma.value(), 0.0);

    ewma.reset(9.0);
    EXPECT_EQ(ewma.count(), 1u);
    EXPECT_DOUBLE_EQ(ewma.value(), 9.0);
    // Seeded reset behaves like having seen one sample.
    EXPECT_DOUBLE_EQ(ewma.add(9.0), 9.0);
}

} // namespace
} // namespace adrias::stats
