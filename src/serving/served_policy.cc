#include "serving/served_policy.hh"

#include "common/logging.hh"
#include "scenario/runner.hh"

namespace adrias::serving
{

ServedPlacementPolicy::ServedPlacementPolicy(
    DecisionService &service_, scenario::SignatureStore &signatures_,
    ServedPolicyConfig config_)
    : service(&service_), signatures(&signatures_), knobs(config_)
{
    if (knobs.deadlineTicks <= 0)
        fatal("ServedPlacementPolicy: deadlineTicks must be positive");
    if (knobs.epochTicks <= 0)
        fatal("ServedPlacementPolicy: epochTicks must be positive");
}

void
ServedPlacementPolicy::refreshEpoch(const telemetry::Watcher &watcher,
                                    SimTime now)
{
    if (epochStarted && now < nextEpochAt)
        return;
    // The runner drives a single system-wide watcher; replicate its
    // binned window across every shard so a request lands on the same
    // view no matter which shard routed it.  A cold watcher maps to
    // cold shards (empty windows).
    EpochSnapshot snapshot;
    snapshot.takenAt = now;
    std::vector<ml::Matrix> window;
    if (watcher.sampleCount() > 0)
        window = watcher.binnedWindow(scenario::ScenarioRunner::kWindowSec,
                                      scenario::ScenarioRunner::kWindowBins);
    snapshot.shardWindows.assign(service->config().shards, window);
    service->beginEpoch(std::move(snapshot));
    epochStarted = true;
    nextEpochAt = now + knobs.epochTicks;
}

MemoryMode
ServedPlacementPolicy::place(const workloads::WorkloadSpec &spec,
                             const telemetry::Watcher &watcher,
                             SimTime now)
{
    refreshEpoch(watcher, now);

    PlacementRequest request;
    request.id = nextId++;
    request.app = spec.name;
    request.cls = spec.cls;
    request.shard = service->shardFor(request.id);
    request.submitted = now;
    request.deadline = now + knobs.deadlineTicks;
    if (!service->submit(request))
        panic("ServedPlacementPolicy: shard queue full in synchronous "
              "mode");

    // Synchronous façade: the scenario runner needs the mode this
    // tick, so force the batch through rather than waiting for fill.
    const std::vector<PlacementDecision> decisions = service->drain(now);
    for (const PlacementDecision &decision : decisions) {
        if (decision.id == request.id)
            return decision.mode;
    }
    panic("ServedPlacementPolicy: drained without our decision");
}

void
ServedPlacementPolicy::onCompletion(
    const scenario::DeploymentRecord &record)
{
    if (record.cls == WorkloadClass::Interference)
        return;
    // Same bootstrap rule as the inline orchestrator: first completion
    // of an unknown app stores its execution window as the signature.
    if (!signatures->has(record.name) && !record.executionWindow.empty())
        signatures->put(record.name, record.executionWindow);
}

} // namespace adrias::serving
