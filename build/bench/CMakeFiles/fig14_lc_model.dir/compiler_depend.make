# Empty compiler generated dependencies file for fig14_lc_model.
# This may be replaced when dependencies are built.
