/**
 * @file
 * Placement-policy interface between the scenario runner and the
 * schedulers (baselines live in src/core; Adrias itself implements this
 * interface on top of its Predictor).
 */

#ifndef ADRIAS_SCENARIO_PLACEMENT_HH
#define ADRIAS_SCENARIO_PLACEMENT_HH

#include <string>

#include "common/types.hh"
#include "telemetry/watcher.hh"
#include "workloads/spec.hh"

namespace adrias::scenario
{

/** Everything known about a finished deployment. */
struct DeploymentRecord
{
    DeploymentId id = 0;
    std::string name;
    WorkloadClass cls = WorkloadClass::BestEffort;
    MemoryMode mode = MemoryMode::Local;
    SimTime arrival = 0;
    SimTime completion = 0;

    /** BE/interference: wall-clock execution time, seconds. */
    double execTimeSec = 0.0;

    /** LC: tail latencies over the whole run, ms. */
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double meanLatencyMs = 0.0;

    double meanSlowdown = 1.0;

    /** Bytes moved over the ThymesisFlow channel, GB. */
    double remoteTrafficGB = 0.0;

    /** L2 migrations performed during the run (0 without a runtime
     *  policy). */
    std::size_t migrations = 0;

    /** Binned Watcher window S captured at arrival (may be empty for
     *  the very first arrivals of a scenario). */
    std::vector<ml::Matrix> historyWindow;

    /** Binned counter trace over the app's own execution span — what
     *  Adrias stores as a signature when it first meets an app. */
    std::vector<ml::Matrix> executionWindow;

    /** @return the headline performance number for this class:
     *  execution time for BE, p99 for LC. */
    double
    primaryMetric() const
    {
        return cls == WorkloadClass::LatencyCritical ? p99Ms : execTimeSec;
    }
};

/** Chooses local vs remote memory for arriving BE/LC applications. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Short name for bench tables ("random", "adrias-b0.8", ...). */
    virtual std::string name() const = 0;

    /**
     * Decide the memory mode for an arriving application.
     *
     * @param spec the application about to be deployed.
     * @param watcher live system telemetry at decision time.
     * @param now arrival time.
     */
    virtual MemoryMode place(const workloads::WorkloadSpec &spec,
                             const telemetry::Watcher &watcher,
                             SimTime now) = 0;

    /** Completion callback (Adrias records signatures here). */
    virtual void onCompletion(const DeploymentRecord &record)
    {
        (void)record;
    }
};

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_PLACEMENT_HH
