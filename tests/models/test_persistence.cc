/** @file Round-trip persistence tests for the prediction models. */

#include <gtest/gtest.h>

#include <cstdio>

#include "models/performance.hh"
#include "models/system_state.hh"
#include "scenario/dataset.hh"

namespace adrias::models
{
namespace
{

using scenario::RandomPlacement;
using scenario::ScenarioConfig;
using scenario::ScenarioRunner;

/** Minimal trained models shared across the suite. */
class PersistenceTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ScenarioConfig scenario_config;
        scenario_config.durationSec = 1500;
        scenario_config.spawnMinSec = 5;
        scenario_config.spawnMaxSec = 25;
        scenario_config.seed = 313;
        ScenarioRunner runner(scenario_config);
        RandomPlacement policy(314);
        std::vector<scenario::ScenarioResult> results{runner.run(policy)};

        signatures = new scenario::SignatureStore;
        scenario::collectAllSignatures(*signatures);

        config = new ModelConfig;
        config->epochs = 8;
        config->hidden = 12;
        config->headWidth = 16;

        auto state = scenario::DatasetBuilder::systemState(results, 10);
        stateModel = new SystemStateModel(*config);
        stateModel->train(state);
        stateProbe = new std::vector<ml::Matrix>(state.front().history);

        auto be = scenario::DatasetBuilder::performance(
            results, *signatures, WorkloadClass::BestEffort);
        perfModel =
            new PerformanceModel(FutureKind::ActualWindow, *config);
        perfModel->train(be);
        perfProbe = new scenario::PerformanceSample(be.front());
    }

    static void
    TearDownTestSuite()
    {
        delete signatures;
        delete config;
        delete stateModel;
        delete stateProbe;
        delete perfModel;
        delete perfProbe;
    }

    static scenario::SignatureStore *signatures;
    static ModelConfig *config;
    static SystemStateModel *stateModel;
    static std::vector<ml::Matrix> *stateProbe;
    static PerformanceModel *perfModel;
    static scenario::PerformanceSample *perfProbe;
};

scenario::SignatureStore *PersistenceTest::signatures = nullptr;
ModelConfig *PersistenceTest::config = nullptr;
SystemStateModel *PersistenceTest::stateModel = nullptr;
std::vector<ml::Matrix> *PersistenceTest::stateProbe = nullptr;
PerformanceModel *PersistenceTest::perfModel = nullptr;
scenario::PerformanceSample *PersistenceTest::perfProbe = nullptr;

TEST_F(PersistenceTest, SystemStateRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "adrias_state_model.txt";
    stateModel->save(path);

    SystemStateModel reloaded(*config);
    EXPECT_FALSE(reloaded.trained());
    reloaded.load(path);
    EXPECT_TRUE(reloaded.trained());

    const ml::Matrix a = stateModel->predict(*stateProbe);
    const ml::Matrix b = reloaded.predict(*stateProbe);
    EXPECT_LT((a - b).maxAbs(), 1e-9);
    std::remove(path.c_str());
}

TEST_F(PersistenceTest, PerformanceRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "adrias_perf_model.txt";
    perfModel->save(path);

    PerformanceModel reloaded(FutureKind::ActualWindow, *config);
    reloaded.load(path);
    EXPECT_TRUE(reloaded.trained());

    const double a =
        perfModel->predict(perfProbe->history, perfProbe->signature,
                           perfProbe->mode, perfProbe->futureWindow);
    const double b =
        reloaded.predict(perfProbe->history, perfProbe->signature,
                         perfProbe->mode, perfProbe->futureWindow);
    EXPECT_NEAR(a, b, 1e-9);
    std::remove(path.c_str());
}

TEST_F(PersistenceTest, FutureKindMismatchRejected)
{
    const std::string path =
        ::testing::TempDir() + "adrias_perf_model_kind.txt";
    perfModel->save(path);
    PerformanceModel wrong_kind(FutureKind::None, *config);
    EXPECT_THROW(wrong_kind.load(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST_F(PersistenceTest, TopologyMismatchRejected)
{
    const std::string path =
        ::testing::TempDir() + "adrias_state_model_topo.txt";
    stateModel->save(path);
    ModelConfig bigger = *config;
    bigger.hidden = 20;
    SystemStateModel wrong_topology(bigger);
    EXPECT_THROW(wrong_topology.load(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST_F(PersistenceTest, SaveBeforeTrainRejected)
{
    SystemStateModel untrained(*config);
    EXPECT_THROW(untrained.save("/tmp/should_not_exist.txt"),
                 std::runtime_error);
    PerformanceModel untrained_perf(FutureKind::None, *config);
    EXPECT_THROW(untrained_perf.save("/tmp/should_not_exist.txt"),
                 std::runtime_error);
}

TEST_F(PersistenceTest, MissingFileRejected)
{
    SystemStateModel model(*config);
    EXPECT_THROW(model.load("/no/such/model/file.txt"),
                 std::runtime_error);
}

} // namespace
} // namespace adrias::models
