#include "common/rng.hh"

#include <cmath>

#include "common/io/binary.hh"
#include "common/logging.hh"

namespace adrias
{

namespace
{

/** splitmix64 step, used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : cachedGaussian(0.0)
{
    std::uint64_t sm = seed;
    for (auto &word : state)
        word = splitmix64(sm);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = nextU64();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    // Box-Muller transform.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedGaussian = radius * std::sin(angle);
    hasCachedGaussian = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("exponential: mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::bernoulli(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return uniform() < probability;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("weightedIndex: negative weight");
        total += w;
    }
    if (total <= 0.0)
        panic("weightedIndex: all weights zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

void
Rng::saveState(io::BinaryWriter &out) const
{
    for (std::uint64_t word : state)
        out.writeU64(word);
    out.writeF64(cachedGaussian);
    out.writeBool(hasCachedGaussian);
}

void
Rng::restoreState(io::BinaryReader &in)
{
    for (auto &word : state)
        word = in.readU64();
    cachedGaussian = in.readF64();
    hasCachedGaussian = in.readBool();
}

} // namespace adrias
