#include "fault/fault.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace adrias::fault
{

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade:
        return "link-degrade";
      case FaultKind::LinkFlap:
        return "link-flap";
      case FaultKind::CounterDrop:
        return "counter-drop";
      case FaultKind::CounterCorrupt:
        return "counter-corrupt";
      case FaultKind::CounterStale:
        return "counter-stale";
      case FaultKind::PredictorLatency:
        return "predictor-latency";
      case FaultKind::PredictorCrash:
        return "predictor-crash";
    }
    panic("unknown FaultKind");
}

namespace
{

/** splitmix64 finalizer: the avalanche stage only. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Hash (seed, kind, now, salt) to one uniform draw in [0, 1). */
double
hashUniform(std::uint64_t seed, FaultKind kind, SimTime now,
            std::uint64_t salt)
{
    std::uint64_t h = mix64(seed ^ 0x5bf03635a1ce3e6fULL);
    h = mix64(h ^ (static_cast<std::uint64_t>(kind) + 1));
    h = mix64(h ^ static_cast<std::uint64_t>(now));
    h = mix64(h ^ salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/**
 * FNV-1a over a link name: a platform-independent salt so per-link
 * firing coins stay a pure function of (seed, kind, tick, link name)
 * across runs and machines (std::hash gives no such guarantee).
 */
std::uint64_t
linkSalt(const std::string &link)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : link) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

FaultInjector::FaultInjector(FaultSchedule schedule)
    : plan(std::move(schedule))
{
    for (const FaultWindow &window : plan.windows) {
        if (window.endSec < window.startSec)
            fatal("FaultInjector: window ends before it starts");
        if (window.probability < 0.0 || window.probability > 1.0)
            fatal("FaultInjector: probability outside [0, 1]");
        if (window.kind == FaultKind::LinkDegrade &&
            (window.magnitude <= 0.0 || window.magnitude > 1.0))
            fatal("FaultInjector: LinkDegrade magnitude must be in (0,1]");
    }
}

double
FaultInjector::roll(FaultKind kind, SimTime now, std::uint64_t salt) const
{
    return hashUniform(plan.seed, kind, now, salt);
}

bool
FaultInjector::armedAt(FaultKind kind, SimTime now) const
{
    for (const FaultWindow &window : plan.windows)
        if (window.kind == kind && now >= window.startSec &&
            now < window.endSec)
            return true;
    return false;
}

bool
FaultInjector::firesAt(FaultKind kind, SimTime now,
                       std::uint64_t salt) const
{
    for (const FaultWindow &window : plan.windows) {
        if (window.kind != kind || now < window.startSec ||
            now >= window.endSec)
            continue;
        if (roll(kind, now, salt) < window.probability)
            return true;
    }
    return false;
}

double
FaultInjector::magnitudeAt(FaultKind kind, SimTime now) const
{
    for (const FaultWindow &window : plan.windows)
        if (window.kind == kind && now >= window.startSec &&
            now < window.endSec)
            return window.magnitude;
    return FaultWindow{}.magnitude;
}

LinkState
FaultInjector::linkStateAt(SimTime now)
{
    // Single-channel view: the paper pair's one channel stands in for
    // every link, so window link names are ignored here and the
    // historical firing/magnitude selection is preserved verbatim.
    LinkState state;
    if (firesAt(FaultKind::LinkDegrade, now))
        state.bwScale = magnitudeAt(FaultKind::LinkDegrade, now);
    if (firesAt(FaultKind::LinkFlap, now)) {
        // A flap tick: nearly no payload gets through and the channel
        // sits at its back-pressure plateau (~900/350 cycles).
        state.bwScale = std::min(state.bwScale, 0.02);
        state.latencyScale = 2.6;
    }
    if (state.faulted())
        ++counters.linkFaultTicks;
    return state;
}

LinkState
FaultInjector::linkStateAt(SimTime now, const std::string &link)
{
    LinkState state;
    const std::uint64_t salt = linkSalt(link);
    for (const FaultWindow &window : plan.windows) {
        if (!window.link.empty() && window.link != link)
            continue;
        if (now < window.startSec || now >= window.endSec)
            continue;
        if (window.kind == FaultKind::LinkDegrade &&
            roll(FaultKind::LinkDegrade, now, salt) <
                window.probability) {
            state.bwScale = std::min(state.bwScale, window.magnitude);
        } else if (window.kind == FaultKind::LinkFlap &&
                   roll(FaultKind::LinkFlap, now, salt) <
                       window.probability) {
            state.bwScale = std::min(state.bwScale, 0.02);
            state.latencyScale = std::max(state.latencyScale, 2.6);
        }
    }
    if (state.faulted())
        ++counters.linkFaultTicks;
    return state;
}

CounterAction
FaultInjector::applyCounterFaults(testbed::CounterSample &sample,
                                  const testbed::CounterSample *previous,
                                  SimTime now)
{
    if (firesAt(FaultKind::CounterDrop, now)) {
        ++counters.samplesDropped;
        return CounterAction::Drop;
    }
    if (firesAt(FaultKind::CounterStale, now)) {
        if (previous == nullptr) {
            // Nothing to repeat on the very first tick: degrade to a
            // dropout so the Watcher still sees the gap.
            ++counters.samplesDropped;
            return CounterAction::Drop;
        }
        sample = *previous;
        ++counters.samplesStale;
        return CounterAction::Stale;
    }
    if (firesAt(FaultKind::CounterCorrupt, now)) {
        // Deterministically pick the poisoned event and the poison
        // flavour from independent draws.
        const std::size_t event = static_cast<std::size_t>(
            roll(FaultKind::CounterCorrupt, now, 101) *
            static_cast<double>(testbed::kNumPerfEvents));
        const double flavour = roll(FaultKind::CounterCorrupt, now, 202);
        if (flavour < 0.4)
            sample[event] = std::numeric_limits<double>::quiet_NaN();
        else if (flavour < 0.7)
            sample[event] = std::numeric_limits<double>::infinity();
        else
            sample[event] = -1.0e12;
        ++counters.samplesCorrupted;
        return CounterAction::Corrupt;
    }
    return CounterAction::None;
}

bool
FaultInjector::predictorCrashAt(SimTime now, std::uint64_t call_salt)
{
    if (!firesAt(FaultKind::PredictorCrash, now, call_salt))
        return false;
    ++counters.predictorCrashes;
    return true;
}

double
FaultInjector::predictorLatencyMsAt(SimTime now, std::uint64_t call_salt,
                                    double base_ms)
{
    if (!firesAt(FaultKind::PredictorLatency, now, call_salt))
        return base_ms;
    ++counters.predictorLatencySpikes;
    return magnitudeAt(FaultKind::PredictorLatency, now);
}

void
FaultInjector::saveState(io::BinaryWriter &out) const
{
    out.writeU64(counters.linkFaultTicks);
    out.writeU64(counters.samplesDropped);
    out.writeU64(counters.samplesStale);
    out.writeU64(counters.samplesCorrupted);
    out.writeU64(counters.predictorCrashes);
    out.writeU64(counters.predictorLatencySpikes);
}

Result<void>
FaultInjector::restoreState(io::BinaryReader &in)
{
    counters.linkFaultTicks = in.readU64();
    counters.samplesDropped = in.readU64();
    counters.samplesStale = in.readU64();
    counters.samplesCorrupted = in.readU64();
    counters.predictorCrashes = in.readU64();
    counters.predictorLatencySpikes = in.readU64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "FaultInjector: truncated snapshot section");
    return {};
}

} // namespace adrias::fault
