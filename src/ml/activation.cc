#include "ml/activation.hh"

#include "common/logging.hh"
#include "ml/fastmath.hh"
#include "ml/simd.hh"

namespace adrias::ml
{

namespace
{

/**
 * Inference-only batch activation: on the vector tier, run the AVX2
 * batch kernel in place over a copy of the input (tolerance-equivalent
 * to the scalar map; ctest -L simd); otherwise the scalar map keeps
 * the bitwise-deterministic default.  Training forwards never route
 * through here — their outputs feed cached backward passes that must
 * stay on the scalar oracle.
 */
Matrix
inferenceBatch(const Matrix &input,
               void (*batch)(const double *, double *, std::size_t),
               double (*scalar)(double))
{
    if (effectiveKernelTier() != KernelTier::Vector)
        return input.map(scalar);
    Matrix out = input;
    auto &data = out.raw();
    batch(data.data(), data.data(), data.size());
    return out;
}

} // namespace

double
sigmoidScalar(double x)
{
    return fastmath::sigmoid(x);
}

double
tanhScalar(double x)
{
    return fastmath::tanh(x);
}

Matrix
ReLU::forward(const Matrix &input)
{
    if (!isInference)
        lastInput = input;
    return input.map([](double x) { return x > 0.0 ? x : 0.0; });
}

Matrix
ReLU::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("ReLU::backward in inference mode");
    Matrix grad = grad_output;
    const auto &in = lastInput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        if (in[i] <= 0.0)
            g[i] = 0.0;
    return grad;
}

Matrix
Tanh::forward(const Matrix &input)
{
    if (isInference)
        return inferenceBatch(input, simd::tanhBatch, tanhScalar);
    lastOutput = input.map(tanhScalar);
    return lastOutput;
}

Matrix
Tanh::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("Tanh::backward in inference mode");
    Matrix grad = grad_output;
    const auto &out = lastOutput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] *= 1.0 - out[i] * out[i];
    return grad;
}

Matrix
Sigmoid::forward(const Matrix &input)
{
    if (isInference)
        return inferenceBatch(input, simd::sigmoidBatch, sigmoidScalar);
    lastOutput = input.map(sigmoidScalar);
    return lastOutput;
}

Matrix
Sigmoid::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("Sigmoid::backward in inference mode");
    Matrix grad = grad_output;
    const auto &out = lastOutput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] *= out[i] * (1.0 - out[i]);
    return grad;
}

} // namespace adrias::ml
