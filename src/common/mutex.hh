/**
 * @file
 * Annotated mutex wrappers for Clang's thread-safety analysis.
 *
 * std::mutex carries no capability attributes, so guarded members
 * cannot reference it from ADRIAS_GUARDED_BY.  Mutex wraps it with the
 * capability annotations and MutexLock is the annotated lock_guard
 * equivalent; together a Clang `-Wthread-safety` build statically
 * checks that guarded state is only touched under its lock.
 */

#ifndef ADRIAS_COMMON_MUTEX_HH
#define ADRIAS_COMMON_MUTEX_HH

#include <mutex>

#include "common/thread_annotations.hh"

namespace adrias
{

/** An annotated std::mutex (see thread_annotations.hh). */
class ADRIAS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Block until the mutex is held. */
    void lock() ADRIAS_ACQUIRE() { impl.lock(); }

    /** Release the mutex. */
    void unlock() ADRIAS_RELEASE() { impl.unlock(); }

    /** @return true (with the mutex held) if it was free. */
    bool try_lock() ADRIAS_TRY_ACQUIRE(true) { return impl.try_lock(); }

  private:
    std::mutex impl;
};

/** RAII lock over an annotated Mutex (annotated lock_guard). */
class ADRIAS_SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquire `mutex` for this scope. */
    explicit MutexLock(Mutex &mutex) ADRIAS_ACQUIRE(mutex) : held(mutex)
    {
        held.lock();
    }

    ~MutexLock() ADRIAS_RELEASE() { held.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &held;
};

} // namespace adrias

#endif // ADRIAS_COMMON_MUTEX_HH
