#include "ml/activation.hh"

#include "common/logging.hh"
#include "ml/fastmath.hh"

namespace adrias::ml
{

double
sigmoidScalar(double x)
{
    return fastmath::sigmoid(x);
}

double
tanhScalar(double x)
{
    return fastmath::tanh(x);
}

Matrix
ReLU::forward(const Matrix &input)
{
    if (!isInference)
        lastInput = input;
    return input.map([](double x) { return x > 0.0 ? x : 0.0; });
}

Matrix
ReLU::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("ReLU::backward in inference mode");
    Matrix grad = grad_output;
    const auto &in = lastInput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        if (in[i] <= 0.0)
            g[i] = 0.0;
    return grad;
}

Matrix
Tanh::forward(const Matrix &input)
{
    if (isInference)
        return input.map(tanhScalar);
    lastOutput = input.map(tanhScalar);
    return lastOutput;
}

Matrix
Tanh::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("Tanh::backward in inference mode");
    Matrix grad = grad_output;
    const auto &out = lastOutput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] *= 1.0 - out[i] * out[i];
    return grad;
}

Matrix
Sigmoid::forward(const Matrix &input)
{
    if (isInference)
        return input.map(sigmoidScalar);
    lastOutput = input.map(sigmoidScalar);
    return lastOutput;
}

Matrix
Sigmoid::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("Sigmoid::backward in inference mode");
    Matrix grad = grad_output;
    const auto &out = lastOutput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] *= out[i] * (1.0 - out[i]);
    return grad;
}

} // namespace adrias::ml
