# Empty dependencies file for adrias_ml.
# This may be replaced when dependencies are built.
