/**
 * @file
 * Calibration constants of the simulated ThymesisFlow testbed.
 *
 * Values mirror the prototype of paper §III and the characterization of
 * §IV: two AC922 POWER9 nodes, 64 logical cores, 2x10 MB LLC, DDR4 that
 * sustains ~120 Gbps, and an OpenCAPI/FPGA channel whose *effective*
 * data throughput caps near 2.5 Gbps (R1) with a 350→900 cycle latency
 * step under saturation (R2).
 */

#ifndef ADRIAS_TESTBED_PARAMS_HH
#define ADRIAS_TESTBED_PARAMS_HH

#include "testbed/link_profiles.hh"

namespace adrias::testbed
{

/**
 * Tunable hardware model; defaults reproduce the paper's testbed.  The
 * channel-side defaults are the ThymesisFlow entry of the shared link
 * profile table (link_profiles.hh) — the single source of truth for
 * link latency/bandwidth tiers.
 */
struct TestbedParams
{
    /** Logical cores on the borrower node. */
    double cores = 64.0;

    /** Aggregate LLC capacity (two sockets x 10 MB), in MB. */
    double llcCapacityMb = 20.0;

    /** Sustained local DRAM bandwidth, GB/s (~120 Gbps). */
    double localBwGBps = 15.0;

    /**
     * Effective ThymesisFlow data throughput cap, GB/s (~2.5 Gbps,
     * observation R1: three orders of magnitude under DDR4).
     */
    double remoteBwGBps = kThymesisFlowProfile.bandwidthGBps;

    /** Local DRAM load-to-use latency, ns (paper: ~80 ns). */
    double localLatencyNs = 80.0;

    /** Remote (cross-FPGA) latency, ns (paper: ~900 ns). */
    double remoteLatencyNs = kThymesisFlowProfile.latencyNs;

    /** Channel latency in cycles at low load (R2 steady state). */
    double channelLatencyBaseCycles =
        kThymesisFlowProfile.latencyBaseCycles;

    /** Channel latency plateau under back-pressure (R2). */
    double channelLatencySatCycles = kThymesisFlowProfile.latencySatCycles;

    /**
     * Channel demand pressure (total demand / capacity) where the
     * back-pressure latency ramp begins.
     */
    double channelRampStart = kThymesisFlowProfile.rampStart;

    /** Pressure at which latency reaches the saturation plateau. */
    double channelRampEnd = kThymesisFlowProfile.rampEnd;

    /**
     * Mild local-latency inflation exponent under local bandwidth
     * contention (queueing in the memory controllers).
     */
    double localLatencyInflation = 0.35;

    /** Fraction of memory traffic that is loads (rest: stores). */
    double loadStoreSplit = 0.72;

    /** Flit size on the OpenCAPI link, bytes. */
    double flitBytes = kThymesisFlowProfile.flitBytes;

    /** @return latency throttle for remote latency-bound demand. */
    double
    remoteLatencyThrottle() const
    {
        return localLatencyNs / remoteLatencyNs;
    }

    /** Replace every channel-side field with the given link tier. */
    TestbedParams &
    withLinkProfile(const LinkProfile &profile)
    {
        remoteBwGBps = profile.bandwidthGBps;
        remoteLatencyNs = profile.latencyNs;
        channelLatencyBaseCycles = profile.latencyBaseCycles;
        channelLatencySatCycles = profile.latencySatCycles;
        channelRampStart = profile.rampStart;
        channelRampEnd = profile.rampEnd;
        flitBytes = profile.flitBytes;
        return *this;
    }
};

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_PARAMS_HH
