#include "ml/layernorm.hh"

#include <cmath>

#include "common/logging.hh"

namespace adrias::ml
{

LayerNorm::LayerNorm(std::size_t features, double epsilon_)
    : gamma("ln.gamma", Matrix::constant(1, features, 1.0)),
      beta("ln.beta", Matrix(1, features)), epsilon(epsilon_)
{
}

Matrix
LayerNorm::forward(const Matrix &input)
{
    const std::size_t batch = input.rows();
    const std::size_t features = input.cols();
    if (features != gamma.value.cols())
        panic("LayerNorm feature width mismatch");

    const bool keep_caches = !isInference;
    if (keep_caches) {
        lastNormalized = Matrix(batch, features);
        lastInvStd = Matrix(batch, 1);
    }
    Matrix out(batch, features);
    const auto n = static_cast<double>(features);

    for (std::size_t r = 0; r < batch; ++r) {
        double mean = 0.0;
        for (std::size_t c = 0; c < features; ++c)
            mean += input.at(r, c);
        mean /= n;
        double var = 0.0;
        for (std::size_t c = 0; c < features; ++c) {
            const double d = input.at(r, c) - mean;
            var += d * d;
        }
        var /= n;
        const double inv_std = 1.0 / std::sqrt(var + epsilon);
        if (keep_caches)
            lastInvStd.at(r, 0) = inv_std;
        for (std::size_t c = 0; c < features; ++c) {
            const double x_hat = (input.at(r, c) - mean) * inv_std;
            if (keep_caches)
                lastNormalized.at(r, c) = x_hat;
            out.at(r, c) =
                gamma.value.at(0, c) * x_hat + beta.value.at(0, c);
        }
    }
    return out;
}

Matrix
LayerNorm::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("LayerNorm::backward in inference mode");
    const std::size_t batch = grad_output.rows();
    const std::size_t features = grad_output.cols();
    const auto n = static_cast<double>(features);

    Matrix grad_input(batch, features);
    for (std::size_t r = 0; r < batch; ++r) {
        double sum_gdy = 0.0;
        double sum_gdy_xhat = 0.0;
        for (std::size_t c = 0; c < features; ++c) {
            const double dy = grad_output.at(r, c);
            const double x_hat = lastNormalized.at(r, c);
            const double g = gamma.value.at(0, c);
            gamma.grad.at(0, c) += dy * x_hat;
            beta.grad.at(0, c) += dy;
            sum_gdy += g * dy;
            sum_gdy_xhat += g * dy * x_hat;
        }
        const double inv_std = lastInvStd.at(r, 0);
        for (std::size_t c = 0; c < features; ++c) {
            const double dy = grad_output.at(r, c);
            const double x_hat = lastNormalized.at(r, c);
            const double g = gamma.value.at(0, c);
            grad_input.at(r, c) =
                inv_std / n *
                (n * g * dy - sum_gdy - x_hat * sum_gdy_xhat);
        }
    }
    return grad_input;
}

std::vector<Param *>
LayerNorm::params()
{
    return {&gamma, &beta};
}

} // namespace adrias::ml
