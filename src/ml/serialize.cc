#include "ml/serialize.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/io/durable_file.hh"
#include "common/logging.hh"
#include "ml/scaler.hh"

namespace adrias::ml
{

namespace
{

/** Sanity cap on the column count declared by an untrusted scaler
 *  header: real scalers are kNumPerfEvents wide; anything beyond this
 *  is corruption, and trusting it would allocate the declared size. */
constexpr std::size_t kMaxScalerWidth = 1 << 16;

/** Read one whitespace-delimited double, with a typed diagnosis:
 *  eof ⇒ Truncated, non-numeric token ⇒ BadNumber. */
[[nodiscard]] Result<void>
readValue(std::istream &in, double &value, const std::string &context)
{
    if (in >> value)
        return {};
    if (in.eof())
        return makeError(ErrorCode::Truncated,
                         context + ": truncated data");
    return makeError(ErrorCode::BadNumber,
                     context + ": malformed numeric value");
}

} // namespace

void
saveParams(std::ostream &out, const std::vector<Param *> &params)
{
    out << "adrias-params v1\n" << params.size() << "\n";
    out << std::setprecision(17);
    for (const Param *p : params) {
        out << p->name << " " << p->value.rows() << " " << p->value.cols()
            << "\n";
        for (double v : p->value.raw())
            out << v << " ";
        out << "\n";
    }
}

Result<void>
tryLoadParams(std::istream &in, const std::vector<Param *> &params)
{
    std::string magic, version;
    in >> magic >> version;
    if (magic != "adrias-params" || version != "v1")
        return makeError(ErrorCode::BadHeader,
                         "loadParams: unrecognized parameter file "
                         "header");
    std::size_t count = 0;
    if (!(in >> count))
        return makeError(ErrorCode::Truncated,
                         "loadParams: truncated file");
    if (count != params.size())
        return makeError(ErrorCode::Geometry,
                         "loadParams: parameter count mismatch (file " +
                             std::to_string(count) + ", model " +
                             std::to_string(params.size()) + ")");
    for (Param *p : params) {
        std::string name;
        std::size_t rows = 0, cols = 0;
        in >> name >> rows >> cols;
        if (!in)
            return makeError(ErrorCode::Truncated,
                             "loadParams: truncated file");
        if (rows != p->value.rows() || cols != p->value.cols())
            return makeError(ErrorCode::Geometry,
                             "loadParams: shape mismatch for '" + name +
                                 "'");
        for (double &v : p->value.raw()) {
            if (Result<void> read = readValue(
                    in, v, "loadParams: tensor '" + name + "'");
                !read.ok())
                return read;
        }
    }
    return {};
}

void
loadParams(std::istream &in, const std::vector<Param *> &params)
{
    tryLoadParams(in, params).expect();
}

void
saveScaler(std::ostream &out, const StandardScaler &scaler)
{
    if (!scaler.fitted())
        fatal("saveScaler: scaler is not fitted");
    out << "adrias-scaler v1\n" << scaler.mean().size() << "\n";
    out << std::setprecision(17);
    for (double m : scaler.mean())
        out << m << " ";
    out << "\n";
    for (double s : scaler.stddev())
        out << s << " ";
    out << "\n";
}

Result<void>
tryLoadScaler(std::istream &in, StandardScaler &scaler)
{
    std::string magic, version;
    in >> magic >> version;
    if (magic != "adrias-scaler" || version != "v1")
        return makeError(ErrorCode::BadHeader,
                         "loadScaler: unrecognized scaler header");
    std::size_t width = 0;
    if (!(in >> width))
        return makeError(ErrorCode::Truncated,
                         "loadScaler: truncated scaler header");
    if (width == 0 || width > kMaxScalerWidth)
        return makeError(ErrorCode::Geometry,
                         "loadScaler: implausible width " +
                             std::to_string(width));
    std::vector<double> means(width), stds(width);
    for (double &m : means) {
        if (Result<void> read = readValue(in, m, "loadScaler: means");
            !read.ok())
            return read;
    }
    for (double &s : stds) {
        if (Result<void> read = readValue(in, s, "loadScaler: stddevs");
            !read.ok())
            return read;
    }
    scaler.restore(std::move(means), std::move(stds));
    return {};
}

void
loadScaler(std::istream &in, StandardScaler &scaler)
{
    tryLoadScaler(in, scaler).expect();
}

void
saveStateTensors(std::ostream &out, const std::vector<Matrix *> &tensors)
{
    out << "adrias-state v1\n" << tensors.size() << "\n";
    out << std::setprecision(17);
    for (const Matrix *m : tensors) {
        out << m->rows() << " " << m->cols() << "\n";
        for (double v : m->raw())
            out << v << " ";
        out << "\n";
    }
}

Result<void>
tryLoadStateTensors(std::istream &in,
                    const std::vector<Matrix *> &tensors)
{
    std::string magic, version;
    in >> magic >> version;
    if (magic != "adrias-state" || version != "v1")
        return makeError(ErrorCode::BadHeader,
                         "loadStateTensors: unrecognized state header");
    std::size_t count = 0;
    if (!(in >> count))
        return makeError(ErrorCode::Truncated,
                         "loadStateTensors: truncated file");
    if (count != tensors.size())
        return makeError(ErrorCode::Geometry,
                         "loadStateTensors: state tensor count "
                         "mismatch");
    for (Matrix *m : tensors) {
        std::size_t rows = 0, cols = 0;
        if (!(in >> rows >> cols))
            return makeError(ErrorCode::Truncated,
                             "loadStateTensors: truncated file");
        if (rows != m->rows() || cols != m->cols())
            return makeError(ErrorCode::Geometry,
                             "loadStateTensors: state tensor shape "
                             "mismatch");
        for (double &v : m->raw()) {
            if (Result<void> read =
                    readValue(in, v, "loadStateTensors: tensor");
                !read.ok())
                return read;
        }
    }
    return {};
}

void
loadStateTensors(std::istream &in, const std::vector<Matrix *> &tensors)
{
    tryLoadStateTensors(in, tensors).expect();
}

void
saveParamsToFile(const std::string &path,
                 const std::vector<Param *> &params)
{
    // Atomic replace: a crash mid-save must never leave a torn
    // parameter file behind a valid-looking path.
    std::ostringstream out;
    saveParams(out, params);
    io::atomicWriteFile(path, out.str()).expect();
}

void
loadParamsFromFile(const std::string &path,
                   const std::vector<Param *> &params)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadParamsFromFile: cannot open '" + path + "'");
    loadParams(in, params);
}

} // namespace adrias::ml
