/** @file Unit tests for common/csv. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

namespace adrias
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path = ::testing::TempDir() + "adrias_csv_test.csv";

    void TearDown() override { std::remove(path.c_str()); }
};

TEST_F(CsvTest, WritesPlainRows)
{
    {
        CsvWriter w(path);
        w.writeRow({"a", "b", "c"});
        w.writeRow({"1", "2", "3"});
        EXPECT_EQ(w.rowCount(), 2u);
        w.close();
    }
    EXPECT_EQ(slurp(path), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, WritesNumericRows)
{
    {
        CsvWriter w(path);
        w.writeRow("label", {1.5, 2.25});
        w.close();
    }
    const std::string content = slurp(path);
    EXPECT_NE(content.find("label,"), std::string::npos);
    EXPECT_NE(content.find("1.5"), std::string::npos);
    EXPECT_NE(content.find("2.25"), std::string::npos);
}

TEST(CsvEscape, QuotesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterErrors, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(ParseCsvLine, SplitsPlainCells)
{
    const auto cells = parseCsvLine("a,b,,c");
    ASSERT_TRUE(cells.ok());
    EXPECT_EQ(cells.value(),
              (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(ParseCsvLine, SingleCellAndEmptyLine)
{
    ASSERT_TRUE(parseCsvLine("solo").ok());
    EXPECT_EQ(parseCsvLine("solo").value().size(), 1u);
    // An empty line is one empty cell (RFC 4180 has no zero-cell row).
    EXPECT_EQ(parseCsvLine("").value(),
              std::vector<std::string>{""});
}

TEST(ParseCsvLine, RoundTripsEscapedCells)
{
    for (const std::string &original :
         {std::string("a,b"), std::string("say \"hi\""),
          std::string("plain"), std::string("trailing,")}) {
        const auto cells =
            parseCsvLine(CsvWriter::escape(original) + ",x");
        ASSERT_TRUE(cells.ok()) << original;
        ASSERT_EQ(cells.value().size(), 2u);
        EXPECT_EQ(cells.value()[0], original);
        EXPECT_EQ(cells.value()[1], "x");
    }
}

TEST(ParseCsvLine, RejectsMalformedQuoting)
{
    const auto unterminated = parseCsvLine("a,\"open");
    ASSERT_FALSE(unterminated.ok());
    EXPECT_EQ(unterminated.error().code, ErrorCode::BadSyntax);

    const auto trailing = parseCsvLine("\"ab\"c,d");
    ASSERT_FALSE(trailing.ok());
    EXPECT_EQ(trailing.error().code, ErrorCode::BadSyntax);

    const auto midcell = parseCsvLine("ab\"cd\"");
    ASSERT_FALSE(midcell.ok());
    EXPECT_EQ(midcell.error().code, ErrorCode::BadSyntax);
}

TEST_F(CsvTest, ReadCsvFileRoundTripsWriter)
{
    {
        CsvWriter w(path);
        w.writeRow({"a,b", "say \"hi\""});
        w.writeRow({"1", "2"});
        w.close();
    }
    const auto rows = readCsvFile(path);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().size(), 2u);
    EXPECT_EQ(rows.value()[0],
              (std::vector<std::string>{"a,b", "say \"hi\""}));
    EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvTest, ReadCsvFileReportsLineOfSyntaxError)
{
    {
        std::ofstream out(path);
        out << "fine,row\n\"unterminated\n";
    }
    const auto rows = readCsvFile(path);
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.error().code, ErrorCode::BadSyntax);
    EXPECT_NE(rows.error().message.find("line 2"), std::string::npos);
}

TEST(ReadCsvFile, MissingFileIsIoError)
{
    const auto rows = readCsvFile("/no/such/file.csv");
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.error().code, ErrorCode::Io);
}

} // namespace
} // namespace adrias
