/**
 * @file
 * The DurableFile layer: every byte the simulator persists goes
 * through here (lint rule `raw-ofstream` enforces it), so no code path
 * can leave a half-written file behind.
 *
 * Two primitives:
 *
 *  - atomicWriteFile(): whole-file replacement via temp-write +
 *    rename.  Readers only ever observe the old or the new content; a
 *    crash mid-write leaves a `.tmp` orphan that recovery ignores.
 *    Transient failures are retried with backoff.
 *
 *  - RecordFileWriter / readRecordFile(): an append-only file of
 *    CRC32-checksummed, length-prefixed records behind a versioned
 *    magic header — the checkpoint/journal container format.  Reads
 *    are tail-tolerant: a torn or bit-flipped trailing record is
 *    reported (never silently parsed) and everything before it is
 *    still served, which is exactly the contract crash recovery needs.
 *
 * A WriteChaosHook lets the fault layer kill the process (throw) at
 * precise byte positions mid-write; the hooks flush first, so the
 * bytes on disk at the throw are exactly what a SIGKILL would have
 * left.
 */

#ifndef ADRIAS_COMMON_IO_DURABLE_FILE_HH
#define ADRIAS_COMMON_IO_DURABLE_FILE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hh"

namespace adrias::io
{

/**
 * Chaos hook invoked at named stages of a durable write ("temp-open",
 * "payload-half", "payload-done", "pre-rename", "record-header",
 * "record-half", "record-done").  May throw to simulate a crash at
 * that exact on-disk state; buffered bytes are flushed before every
 * invocation.
 */
using WriteChaosHook =
    std::function<void(const char *stage, std::size_t bytes_so_far)>;

/** Tuning for atomicWriteFile. */
struct AtomicWriteOptions
{
    /** Attempts before giving up on a transient I/O failure. */
    std::size_t maxAttempts = 3;

    /** Sleep between attempts, doubling each retry, milliseconds. */
    std::size_t backoffMs = 10;

    /** Optional kill-point hook (tests/chaos only). */
    WriteChaosHook chaos;
};

/**
 * Atomically replace `path` with `content`.
 *
 * The content is written to `path + ".tmp"`, flushed, and renamed over
 * the target; rename is atomic on POSIX, so a reader never sees a
 * partial file.  On failure the temp file is removed (best effort) and
 * the write is retried up to `maxAttempts` times.
 *
 * @return ErrorCode::Io after all attempts fail.
 */
[[nodiscard]] Result<void>
atomicWriteFile(const std::string &path, const std::string &content,
                const AtomicWriteOptions &options = {});

/** Read a whole file. @return ErrorCode::Io when it cannot be opened. */
[[nodiscard]] Result<std::string> readFile(const std::string &path);

/** Magic header opening every record file ("ADRSREC1"). */
inline constexpr char kRecordFileMagic[] = "ADRSREC1";

/** Bytes of the magic header (excluding the NUL). */
inline constexpr std::size_t kRecordFileMagicSize = 8;

/**
 * Append-only writer of CRC-framed records.
 *
 * Layout: magic header, then per record a little-endian u32 payload
 * length, u32 CRC32 of the payload, and the payload bytes.  Every
 * append flushes, so a record is durable as soon as append() returns —
 * the write-ahead property the DecisionJournal relies on.
 */
class RecordFileWriter
{
  public:
    /**
     * Open `path` and write the magic header (truncating) or position
     * after existing content (`append` = true; the header must already
     * be present).
     */
    [[nodiscard]] Result<void> open(const std::string &path,
                                    bool append = false);

    /** Append one framed record and flush. */
    [[nodiscard]] Result<void> append(std::string_view payload);

    /** Flush and close; further appends are invalid. */
    void close();

    /** @return true while the file is open and healthy. */
    bool isOpen() const { return out.is_open(); }

    /** Records appended through this writer (not pre-existing ones). */
    std::size_t appendCount() const { return appended; }

    /** Install a kill-point hook (nullptr to clear). */
    void setChaosHook(WriteChaosHook hook) { chaos = std::move(hook); }

  private:
    // NOLINTNEXTLINE(raw-ofstream): this IS the DurableFile layer.
    std::ofstream out;
    std::string filePath;
    std::size_t appended = 0;
    WriteChaosHook chaos;
};

/**
 * @return a fresh in-memory record-file image (just the magic header).
 *
 * Checkpoint snapshots are built in memory with appendFramedRecord()
 * and then published in one atomicWriteFile() call, so a snapshot is
 * either fully present or absent — never half-framed on disk.
 */
std::string beginRecordFileImage();

/** Append one CRC-framed record to an in-memory record-file image. */
void appendFramedRecord(std::string &image, std::string_view payload);

/** Outcome of a tolerant record-file read. */
struct RecordReadResult
{
    /** Records that passed their CRC, in file order. */
    std::vector<std::string> records;

    /**
     * True when the file ended with a torn/corrupt record that was
     * dropped (records before it are still valid and served).
     */
    bool tornTail = false;

    /** Bytes discarded as the torn tail (0 when clean). */
    std::size_t droppedBytes = 0;
};

/**
 * Read every valid record of a record file, tolerating a torn tail.
 *
 * Errors (the file is unusable, not merely torn):
 *  - Io: the file cannot be opened/read;
 *  - Truncated: shorter than the magic header (e.g. zero-length);
 *  - BadHeader: the magic bytes do not match.
 *
 * A record whose length field overruns the file, or whose CRC
 * mismatches, terminates the scan: it and everything after it are
 * reported via `tornTail`/`droppedBytes`, never returned as data.
 */
[[nodiscard]] Result<RecordReadResult>
readRecordFile(const std::string &path);

/**
 * Strict variant: any torn or corrupt tail (short record or CRC
 * mismatch) is ErrorCode::Truncated.  Checkpoint snapshots use this —
 * a snapshot is either fully intact or rejected whole.
 */
[[nodiscard]] Result<std::vector<std::string>>
readRecordFileStrict(const std::string &path);

} // namespace adrias::io

#endif // ADRIAS_COMMON_IO_DURABLE_FILE_HH
