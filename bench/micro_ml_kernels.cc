/**
 * @file
 * Micro-benchmarks for the deep-learning kernels: matmul (streaming and
 * cache-blocked), LSTM forward in training / inference / reference
 * mode, LSTM train step fused vs reference, head forward.  Not a paper
 * figure — establishes the substrate's throughput envelope and feeds
 * the perf-regression gate (tools/bench_compare against the checked-in
 * bench/baselines/BENCH_ml.json).
 *
 * All entries run single-threaded (ScopedThreadOverride(1)) so medians
 * are comparable across machines with different core counts; the
 * parallel story is covered by micro_parallel_scaling.
 *
 * The summary block records two kinds of before/after pairs: live
 * fused-vs-reference speedups measured in this run (the reference path
 * keeps the original matrix-algebra formulation but shares the
 * upgraded GEMM/transcendental substrate), and *_vs_prepr entries
 * whose before_ns is pinned to the medians recorded at the
 * pre-optimization commit on the recording machine (DESIGN.md §11) —
 * the honest end-to-end record for the perf acceptance bars.
 */

#include <vector>

#include "bench/microbench.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "ml/loss.hh"
#include "ml/lstm.hh"
#include "ml/sequential.hh"
#include "ml/simd.hh"

namespace
{

using namespace adrias;
using bench::micro::Result;
using bench::micro::Speedup;

ml::Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    ml::Matrix m(rows, cols);
    for (double &x : m.raw())
        x = rng.gaussian();
    return m;
}

std::vector<ml::Matrix>
randomSequence(std::size_t steps, std::size_t batch, std::size_t cols,
               Rng &rng)
{
    std::vector<ml::Matrix> seq;
    seq.reserve(steps);
    for (std::size_t t = 0; t < steps; ++t)
        seq.push_back(randomMatrix(batch, cols, rng));
    return seq;
}

Result
benchMatmul(std::size_t n, unsigned block,
            ml::KernelTier tier = ml::KernelTier::Scalar)
{
    Rng rng(1);
    const ml::Matrix a = randomMatrix(n, n, rng);
    const ml::Matrix b = randomMatrix(n, n, rng);
    const auto saved = ml::matrixParallelConfig();
    auto config = saved;
    config.gemmBlock = block;
    ml::setMatrixParallelConfig(config);
    const ml::ScopedKernelTier tier_pin(tier);
    ml::Matrix out;
    auto result = bench::micro::measure(
        "matmul_" + std::to_string(n) +
            (block ? "_blocked" + std::to_string(block) : "") +
            (tier == ml::KernelTier::Vector ? "_vector" : ""),
        [&] { a.matmulInto(b, out); });
    ml::setMatrixParallelConfig(saved);
    return result;
}

/** Batch transcendental throughput: one tanh sweep over n doubles. */
Result
benchTanhBatch(std::size_t n, ml::KernelTier tier)
{
    Rng rng(5);
    std::vector<double> x(n);
    std::vector<double> out(n);
    for (double &v : x)
        v = rng.gaussian() * 4.0;
    const ml::ScopedKernelTier tier_pin(tier);
    return bench::micro::measure(
        "tanh_batch_" + std::to_string(n) +
            (tier == ml::KernelTier::Vector ? "_vector" : ""),
        [&] { ml::simd::tanhBatch(x.data(), out.data(), n); });
}

/** LSTM forward at the Predictor's shape; mode selects the path. */
Result
benchLstmForward(const std::string &name, std::size_t batch, bool fused,
                 bool inference,
                 ml::KernelTier tier = ml::KernelTier::Scalar)
{
    Rng rng(2);
    constexpr std::size_t kHidden = 24;
    constexpr std::size_t kInput = 7;
    constexpr std::size_t kSteps = 12;
    ml::Lstm lstm(kInput, kHidden, rng);
    const auto seq = randomSequence(kSteps, batch, kInput, rng);

    const bool saved_fused = ml::lstmFusedKernels();
    ml::setLstmFusedKernels(fused);
    lstm.setInference(inference);
    const ml::ScopedKernelTier tier_pin(tier);
    auto result = bench::micro::measure(
        name, [&] { lstm.forwardSequence(seq); });
    ml::setLstmFusedKernels(saved_fused);
    return result;
}

/** Full forward + backward train step, fused or reference kernels. */
Result
benchLstmTrainStep(const std::string &name, bool fused)
{
    Rng rng(3);
    constexpr std::size_t kHidden = 24;
    constexpr std::size_t kBatch = 32;
    ml::Lstm lstm(7, kHidden, rng);
    const auto seq = randomSequence(12, kBatch, 7, rng);
    const ml::Matrix target = randomMatrix(kBatch, kHidden, rng);

    const bool saved_fused = ml::lstmFusedKernels();
    ml::setLstmFusedKernels(fused);
    auto result = bench::micro::measure(name, [&] {
        const auto out = lstm.forwardSequence(seq);
        std::vector<ml::Matrix> grads(seq.size(),
                                      ml::Matrix(kBatch, kHidden));
        ml::mseLoss(out.back(), target, &grads.back());
        lstm.backwardSequence(grads);
        for (ml::Param *p : lstm.params())
            p->grad = ml::Matrix(p->grad.rows(), p->grad.cols());
    });
    ml::setLstmFusedKernels(saved_fused);
    return result;
}

Result
benchHeadForward()
{
    Rng rng(4);
    auto head = ml::makeNonLinearHead(56, 32, 1, 0.0, rng,
                                      ml::HeadNorm::Layer);
    head->setTraining(false);
    head->setInference(true);
    const ml::Matrix input = randomMatrix(32, 56, rng);
    return bench::micro::measure("head_forward_b32",
                                 [&] { head->forward(input); });
}

} // namespace

int
main()
{
    // Single-threaded medians: machine-comparable, and the shapes here
    // are below the parallel grain anyway.
    ScopedThreadOverride serial(1);

    std::vector<bench::micro::Result> results;
    results.push_back(benchMatmul(64, 0));
    results.push_back(benchMatmul(128, 0));
    results.push_back(benchMatmul(384, 0));
    results.push_back(benchMatmul(384, 64));

    // Vector-tier rows are always emitted so the regression gate can
    // compare against the baseline on any machine: when AVX2 is
    // unavailable (or -DADRIAS_SIMD=OFF), the tier falls back to the
    // scalar kernels and the rows simply mirror their scalar twins.
    results.push_back(benchMatmul(384, 0, ml::KernelTier::Vector));
    results.push_back(
        benchTanhBatch(8192, ml::KernelTier::Scalar));
    results.push_back(
        benchTanhBatch(8192, ml::KernelTier::Vector));

    results.push_back(benchLstmForward("lstm_forward_train_h24_b32", 32,
                                       true, false));
    results.push_back(benchLstmForward("lstm_forward_infer_h24_b32", 32,
                                       true, true));
    results.push_back(
        benchLstmForward("lstm_forward_infer_h24_b32_vector", 32, true,
                         true, ml::KernelTier::Vector));
    results.push_back(benchLstmForward("lstm_forward_reference_h24_b32",
                                       32, false, false));
    results.push_back(
        benchLstmForward("lstm_forward_infer_h24_b1", 1, true, true));
    results.push_back(benchLstmForward("lstm_forward_reference_h24_b1",
                                       1, false, false));

    results.push_back(
        benchLstmTrainStep("lstm_train_step_h24_b32", true));
    results.push_back(
        benchLstmTrainStep("lstm_train_step_reference_h24_b32", false));

    results.push_back(benchHeadForward());

    auto median = [&](const std::string &name) {
        for (const Result &r : results)
            if (r.name == name)
                return r.medianNs;
        return 0.0;
    };

    // Live A/B: reference keeps the original matrix-algebra
    // formulation, fused is the workspace kernel path; both share the
    // upgraded GEMM and fastmath substrate, so these pairs isolate the
    // fusion/fast-path gain alone.
    std::vector<Speedup> summary{
        {"lstm_forward_inference_b32",
         median("lstm_forward_reference_h24_b32"),
         median("lstm_forward_infer_h24_b32")},
        {"lstm_forward_inference_b1",
         median("lstm_forward_reference_h24_b1"),
         median("lstm_forward_infer_h24_b1")},
        {"lstm_train_step_b32",
         median("lstm_train_step_reference_h24_b32"),
         median("lstm_train_step_h24_b32")},
        // Vector tier vs the fused scalar path on the same build and
        // run — the perf acceptance bars for the SIMD tier (DESIGN.md
        // §16).  On machines without AVX2 these report ~1.0×.
        {"matmul_384_vector_vs_scalar", median("matmul_384"),
         median("matmul_384_vector")},
        {"lstm_forward_infer_b32_vector_vs_scalar",
         median("lstm_forward_infer_h24_b32"),
         median("lstm_forward_infer_h24_b32_vector")},
        {"tanh_batch_8192_vector_vs_scalar", median("tanh_batch_8192"),
         median("tanh_batch_8192_vector")},
    };

    // End-to-end before/after vs the pre-optimization commit: before_ns
    // is the median recorded on the recording machine before any of
    // the GEMM / fastmath / fusion work landed (DESIGN.md §11).  Only
    // meaningful when the after side runs on the same machine; the
    // regression gate uses the benchmarks block, not these.
    summary.push_back({"lstm_forward_inference_b32_vs_prepr", 1450966.0,
                       median("lstm_forward_infer_h24_b32")});
    summary.push_back({"lstm_forward_inference_b1_vs_prepr", 45108.0,
                       median("lstm_forward_infer_h24_b1")});
    summary.push_back({"lstm_train_step_b32_vs_prepr", 2910104.0,
                       median("lstm_train_step_h24_b32")});
    summary.push_back({"matmul_384_vs_prepr", 50177152.5,
                       median("matmul_384")});

    bench::micro::printResults("ml_kernels", results, summary);
    const std::string path = bench::micro::jsonPath("BENCH_ml.json");
    bench::micro::writeJson(path, "ml_kernels", results, summary);
    std::cout << "JSON written to " << path << "\n";
    return 0;
}
