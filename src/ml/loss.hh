/**
 * @file
 * Loss functions for model training.
 */

#ifndef ADRIAS_ML_LOSS_HH
#define ADRIAS_ML_LOSS_HH

#include "ml/matrix.hh"

namespace adrias::ml
{

/**
 * Mean squared error over all elements.
 *
 * @param prediction model outputs.
 * @param target ground truth, same shape.
 * @param grad [out] optional dLoss/dPrediction.
 * @return scalar loss.
 */
double mseLoss(const Matrix &prediction, const Matrix &target,
               Matrix *grad = nullptr);

/**
 * Huber (smooth-L1) loss over all elements; less sensitive to the
 * heavy-tailed execution-time outliers that congested scenarios create.
 *
 * @param delta transition point between quadratic and linear regimes.
 */
double huberLoss(const Matrix &prediction, const Matrix &target,
                 double delta = 1.0, Matrix *grad = nullptr);

} // namespace adrias::ml

#endif // ADRIAS_ML_LOSS_HH
