/** @file Catalog tests + calibration against the paper's Fig. 4/5. */

#include <gtest/gtest.h>

#include <set>

#include "testbed/testbed.hh"
#include "workloads/spec.hh"

namespace adrias::workloads
{
namespace
{

/** Isolated-run slowdown of a spec under the given placement. */
double
isolatedSlowdown(const WorkloadSpec &spec, MemoryMode mode)
{
    testbed::Testbed bed;
    bed.setNoise(0.0);
    return bed.tick({spec.toLoad(1, mode)}).outcomes.at(0).slowdown;
}

TEST(Catalog, SeventeenSparkBenchmarks)
{
    EXPECT_EQ(sparkBenchmarks().size(), 17u);
    std::set<std::string> names;
    for (const auto &spec : sparkBenchmarks()) {
        EXPECT_EQ(spec.cls, WorkloadClass::BestEffort);
        EXPECT_GT(spec.baseDurationSec, 0.0);
        names.insert(spec.name);
    }
    EXPECT_EQ(names.size(), 17u);
}

TEST(Catalog, LookupByName)
{
    EXPECT_EQ(sparkBenchmark("nweight").name, "nweight");
    EXPECT_THROW(sparkBenchmark("no-such-app"), std::runtime_error);
}

TEST(Catalog, LatencyCriticalSpecsAreServers)
{
    for (const auto &spec : latencyCriticalBenchmarks()) {
        EXPECT_EQ(spec.cls, WorkloadClass::LatencyCritical);
        EXPECT_GT(spec.serviceRatePerSec, 0.0);
        EXPECT_GT(spec.totalRequests, 0.0);
        EXPECT_GT(spec.baseLatencyMs, 0.0);
    }
}

TEST(Catalog, IBenchKindsAreDistinct)
{
    std::set<std::string> names;
    for (IBenchKind kind : {IBenchKind::Cpu, IBenchKind::L2, IBenchKind::L3,
                            IBenchKind::MemBw}) {
        const WorkloadSpec &spec = ibenchSpec(kind);
        EXPECT_EQ(spec.cls, WorkloadClass::Interference);
        names.insert(spec.name);
        EXPECT_EQ(toString(kind),
                  spec.name.substr(std::string("ibench-").size()));
    }
    EXPECT_EQ(names.size(), 4u);
}

// --- Fig. 4 calibration: remote-vs-local slowdown in isolation. --------

TEST(CalibrationFig4, LocalIsolationIsNearUnimpeded)
{
    for (const auto &spec : sparkBenchmarks())
        EXPECT_LT(isolatedSlowdown(spec, MemoryMode::Local), 1.05)
            << spec.name;
}

TEST(CalibrationFig4, NweightAndLrSufferAboutTwofold)
{
    // Paper: "nweight and lr suffer almost a x2 slowdown on remote".
    const double nweight = isolatedSlowdown(sparkBenchmark("nweight"),
                                            MemoryMode::Remote) /
                           isolatedSlowdown(sparkBenchmark("nweight"),
                                            MemoryMode::Local);
    const double lr = isolatedSlowdown(sparkBenchmark("lr"),
                                       MemoryMode::Remote) /
                      isolatedSlowdown(sparkBenchmark("lr"),
                                       MemoryMode::Local);
    EXPECT_GE(nweight, 1.6);
    EXPECT_LE(nweight, 2.9);
    EXPECT_GE(lr, 1.5);
    EXPECT_LE(lr, 2.6);
}

TEST(CalibrationFig4, GmmAndPcaToleratesRemote)
{
    // Paper: gmm and pca experience <10% degradation.
    for (const char *name : {"gmm", "pca"}) {
        const double ratio =
            isolatedSlowdown(sparkBenchmark(name), MemoryMode::Remote) /
            isolatedSlowdown(sparkBenchmark(name), MemoryMode::Local);
        EXPECT_LT(ratio, 1.10) << name;
    }
}

TEST(CalibrationFig4, AverageRemoteDegradationNearTwentyPercent)
{
    double total = 0.0;
    for (const auto &spec : sparkBenchmarks())
        total += isolatedSlowdown(spec, MemoryMode::Remote) /
                 isolatedSlowdown(spec, MemoryMode::Local);
    const double mean = total / 17.0;
    EXPECT_GE(mean, 1.10);
    EXPECT_LE(mean, 1.40);
}

TEST(CalibrationFig4, LcAppsBarelyNoticeRemoteInIsolation)
{
    // Paper R4: local and remote tail-latency curves nearly identical
    // for Redis/Memcached in isolation.
    for (const auto &spec : latencyCriticalBenchmarks()) {
        const double ratio =
            isolatedSlowdown(spec, MemoryMode::Remote) /
            isolatedSlowdown(spec, MemoryMode::Local);
        EXPECT_LT(ratio, 1.25) << spec.name;
    }
}

// --- Fig. 5 calibration: interference chasm. ---------------------------

/** Slowdown of `app` co-located with n trashers, all in `mode`. */
double
contendedSlowdown(const WorkloadSpec &app, IBenchKind kind, int n,
                  MemoryMode mode)
{
    testbed::Testbed bed;
    bed.setNoise(0.0);
    std::vector<testbed::LoadDescriptor> loads;
    loads.push_back(app.toLoad(0, mode));
    for (int i = 1; i <= n; ++i)
        loads.push_back(ibenchSpec(kind).toLoad(i, mode));
    return bed.tick(loads).outcomes.at(0).slowdown;
}

TEST(CalibrationFig5, HeavyMemBwInterferenceOpensChasm)
{
    // Paper R5: >=8 memBw trashers cause much higher degradation on
    // remote than local (up to ~4x additional slowdown).
    const WorkloadSpec &app = sparkBenchmark("sort");
    for (int n : {8, 16}) {
        const double local =
            contendedSlowdown(app, IBenchKind::MemBw, n,
                              MemoryMode::Local);
        const double remote =
            contendedSlowdown(app, IBenchKind::MemBw, n,
                              MemoryMode::Remote);
        const double ratio = remote / local;
        // The paper places the threshold at >8 trashers, so n=8 is the
        // onset and n=16 is fully inside the chasm.
        EXPECT_GE(ratio, n == 8 ? 1.7 : 2.0) << "n=" << n;
        EXPECT_LE(ratio, 8.0) << "n=" << n;
    }
}

TEST(CalibrationFig5, LightInterferenceKeepsModesClose)
{
    const WorkloadSpec &app = sparkBenchmark("bayes");
    const double local =
        contendedSlowdown(app, IBenchKind::MemBw, 1, MemoryMode::Local);
    const double remote =
        contendedSlowdown(app, IBenchKind::MemBw, 1, MemoryMode::Remote);
    EXPECT_LT(remote / local, 1.8);
}

TEST(CalibrationFig5, LlcTrashingHurtsMost)
{
    // Paper R6: 16 LLC trashers give the worst degradation for most
    // Spark apps (more than the same count of cpu or l2 trashers).
    const WorkloadSpec &app = sparkBenchmark("kmeans");
    const double l3 =
        contendedSlowdown(app, IBenchKind::L3, 16, MemoryMode::Local);
    const double cpu =
        contendedSlowdown(app, IBenchKind::Cpu, 16, MemoryMode::Local);
    const double l2 =
        contendedSlowdown(app, IBenchKind::L2, 16, MemoryMode::Local);
    EXPECT_GT(l3, cpu);
    EXPECT_GT(l3, l2);
    EXPECT_GT(l3, 1.5);
}

TEST(CalibrationFig5, LcMoreResistantThanBe)
{
    // Paper R5: LC apps resist interference better than BE apps.
    const double be = contendedSlowdown(sparkBenchmark("sort"),
                                        IBenchKind::MemBw, 16,
                                        MemoryMode::Remote);
    const double lc = contendedSlowdown(redisSpec(), IBenchKind::MemBw, 16,
                                        MemoryMode::Remote);
    EXPECT_LT(lc, be);
}

TEST(CalibrationFig5, StackingEffectForNweight)
{
    // Paper R7: nweight keeps a remote-local gap even under cpu/l2
    // interference.
    for (IBenchKind kind : {IBenchKind::Cpu, IBenchKind::L2}) {
        const double local = contendedSlowdown(
            sparkBenchmark("nweight"), kind, 8, MemoryMode::Local);
        const double remote = contendedSlowdown(
            sparkBenchmark("nweight"), kind, 8, MemoryMode::Remote);
        EXPECT_GT(remote / local, 1.5)
            << "kind=" << toString(kind);
    }
}

} // namespace
} // namespace adrias::workloads
