file(REMOVE_RECURSE
  "CMakeFiles/ablation_head_norm.dir/ablation_head_norm.cc.o"
  "CMakeFiles/ablation_head_norm.dir/ablation_head_norm.cc.o.d"
  "ablation_head_norm"
  "ablation_head_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_head_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
