# Empty dependencies file for adrias_workloads.
# This may be replaced when dependencies are built.
