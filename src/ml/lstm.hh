/**
 * @file
 * Long Short-Term Memory layer with full backpropagation through time.
 *
 * The Adrias Predictor (paper §V-B) stacks two LSTM layers over the
 * monitored-metric time series; this class implements one such layer
 * over a time-major sequence of (batch x features) matrices.
 */

#ifndef ADRIAS_ML_LSTM_HH
#define ADRIAS_ML_LSTM_HH

#include <vector>

#include "common/rng.hh"
#include "ml/layer.hh"

namespace adrias::ml
{

/**
 * Single LSTM layer.
 *
 * Gate layout inside the packed 4H-wide weight matrices is
 * [input | forget | cell | output].  The forget-gate bias is
 * initialized to one, the standard remedy for early vanishing
 * gradients.
 */
class Lstm
{
  public:
    /**
     * @param input_size per-step feature width.
     * @param hidden_size state width H.
     * @param rng weight-initialization source.
     */
    Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng);

    /**
     * Run the layer across a sequence (initial state is zero).
     *
     * @param sequence time-major input; sequence[t] is (batch x input).
     * @return hidden states; result[t] is (batch x hidden).
     */
    std::vector<Matrix> forwardSequence(const std::vector<Matrix> &sequence);

    /**
     * BPTT through the most recent forwardSequence().
     *
     * @param grad_hidden dLoss/dH_t for every step (zero matrices are
     *        fine for steps whose output is unused).
     * @return dLoss/dX_t for every step; parameter gradients accumulate.
     */
    std::vector<Matrix>
    backwardSequence(const std::vector<Matrix> &grad_hidden);

    /** @return trainable parameters (Wx, Wh, bias). */
    std::vector<Param *> params();

    std::size_t inputSize() const { return wx.value.rows(); }
    std::size_t hiddenSize() const { return wh.value.rows(); }

  private:
    Param wx; ///< (input x 4H)
    Param wh; ///< (hidden x 4H)
    Param b;  ///< (1 x 4H)

    /** Everything backward needs about one timestep. */
    struct StepCache
    {
        Matrix input;
        Matrix hPrev;
        Matrix cPrev;
        Matrix gateI;
        Matrix gateF;
        Matrix gateG;
        Matrix gateO;
        Matrix cell;
        Matrix tanhCell;
    };

    std::vector<StepCache> caches;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_LSTM_HH
