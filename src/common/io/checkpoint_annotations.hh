/**
 * @file
 * Checkpoint-coverage annotations for the tools/analyze static pass.
 *
 * The checkpoint-coverage pass (tools/analyze, DESIGN.md §13) demands
 * that every non-static data member of a class implementing the
 * saveState/restoreState pair is referenced in *both* bodies — a
 * forgotten field is a silent, hours-later divergence after recovery.
 * Members that are deliberately not part of the snapshot (immutable
 * configuration, runtime wiring, transient replay scaffolding) carry
 * this marker, with the reason in the source:
 *
 *   ScenarioConfig config ADRIAS_NOT_CHECKPOINTED(
 *       "construction-time configuration, re-supplied on restore");
 *
 * The macro expands to nothing — it exists purely for the analyzer
 * (and the reader).  Header kept dependency-free so any class can
 * include it.
 */

#ifndef ADRIAS_COMMON_IO_CHECKPOINT_ANNOTATIONS_HH
#define ADRIAS_COMMON_IO_CHECKPOINT_ANNOTATIONS_HH

/** Waive one data member from checkpoint-coverage, with a reason. */
#define ADRIAS_NOT_CHECKPOINTED(reason)

#endif // ADRIAS_COMMON_IO_CHECKPOINT_ANNOTATIONS_HH
