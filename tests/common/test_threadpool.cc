/**
 * @file
 * Unit tests of the shared work-scheduling layer (DESIGN.md §9):
 * exception propagation, drain-on-shutdown, the fixed deterministic
 * partition rule, nested-call semantics and the global-pool override.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.hh"

namespace
{

using adrias::ScopedThreadOverride;
using adrias::ThreadPool;

TEST(ThreadPoolTest, ParallelForZeroItemsIsNoOp)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t, std::size_t) { ++calls; });
    pool.parallelForEach(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (std::size_t total : {1ul, 2ul, 7ul, 63ul, 64ul, 65ul, 1000ul}) {
        std::vector<std::atomic<int>> hits(total);
        pool.parallelForEach(total, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < total; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "total=" << total
                                         << " index=" << i;
    }
}

TEST(ThreadPoolTest, PartitionDependsOnlyOnRangeLength)
{
    for (std::size_t total : {1ul, 5ul, 64ul, 65ul, 129ul, 10000ul}) {
        const std::size_t chunks = ThreadPool::chunkCount(total);
        ASSERT_GE(chunks, 1u);
        ASSERT_LE(chunks, ThreadPool::kMaxChunks);
        // Chunks tile [0, total) exactly, and the bounds come from a
        // pure function of (total, c) — nothing about the pool's size
        // or load enters the computation.
        std::size_t expected_begin = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
            const auto [begin, end] = ThreadPool::chunkBounds(total, c);
            ASSERT_EQ(begin, expected_begin) << "total=" << total;
            ASSERT_GT(end, begin);
            expected_begin = end;
        }
        ASSERT_EQ(expected_begin, total);
    }
}

TEST(ThreadPoolTest, SerialAndParallelVisitOrdersUseTheSameChunks)
{
    // A serial pool must execute the identical chunk sequence, in
    // index order — that is what makes caller-side reductions
    // order-fixed at every thread count.
    ThreadPool serial(1);
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    serial.parallelFor(130, [&](std::size_t begin, std::size_t end) {
        seen.emplace_back(begin, end);
    });
    ASSERT_EQ(seen.size(), ThreadPool::chunkCount(130));
    for (std::size_t c = 0; c < seen.size(); ++c)
        EXPECT_EQ(seen[c], ThreadPool::chunkBounds(130, c));
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        [] { throw std::runtime_error("boom from task"); });
    EXPECT_THROW(
        {
            try {
                future.get();
            } catch (const std::runtime_error &error) {
                EXPECT_STREQ(error.what(), "boom from task");
                throw;
            }
        },
        std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestChunkException)
{
    ThreadPool pool(4);
    // 64 items -> 64 single-item chunks; several of them throw and the
    // caller must observe the lowest chunk index, not the first to
    // finish.
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            pool.parallelForEach(64, [&](std::size_t i) {
                if (i == 11 || i == 40 || i == 63)
                    throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "11");
        }
    }
}

TEST(ThreadPoolTest, AllChunksStillRunWhenOneThrows)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelForEach(64,
                                      [&](std::size_t i) {
                                          ++ran;
                                          if (i == 0)
                                              throw std::runtime_error(
                                                  "first");
                                      }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ShutdownWithQueuedWorkDrainsWithoutDeadlock)
{
    std::atomic<int> completed{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&completed] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++completed;
            }));
        }
        // Destructor runs here with most of the queue still pending.
    }
    EXPECT_EQ(completed.load(), 32);
    for (auto &future : futures)
        EXPECT_NO_THROW(future.get());
}

TEST(ThreadPoolTest, SerialPoolRunsEverythingOnTheCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto caller = std::this_thread::get_id();
    std::thread::id seen_submit, seen_for;
    pool.submit([&] { seen_submit = std::this_thread::get_id(); }).get();
    pool.parallelForEach(
        3, [&](std::size_t) { seen_for = std::this_thread::get_id(); });
    EXPECT_EQ(seen_submit, caller);
    EXPECT_EQ(seen_for, caller);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnTheWorker)
{
    ThreadPool pool(4);
    std::atomic<int> outer_on_worker{0};
    std::atomic<int> inner_hits{0};
    pool.parallelForEach(8, [&](std::size_t) {
        if (ThreadPool::onWorkerThread())
            ++outer_on_worker;
        const auto worker = std::this_thread::get_id();
        pool.parallelForEach(4, [&, worker](std::size_t) {
            ++inner_hits;
            // Inline: the nested body never hops to another thread.
            EXPECT_EQ(std::this_thread::get_id(), worker);
        });
    });
    EXPECT_EQ(outer_on_worker.load(), 8);
    EXPECT_EQ(inner_hits.load(), 8 * 4);
}

TEST(ThreadPoolTest, SubmitFromWorkerThreadIsRejected)
{
    ThreadPool pool(2);
    std::atomic<int> rejected{0};
    pool.parallelForEach(4, [&](std::size_t) {
        try {
            pool.submit([] {});
        } catch (const std::logic_error &) {
            ++rejected;
        }
    });
    EXPECT_EQ(rejected.load(), 4);
}

TEST(ThreadPoolTest, ScopedOverrideSwapsTheGlobalPool)
{
    const unsigned base = ThreadPool::global().threadCount();
    {
        ScopedThreadOverride seven(7);
        EXPECT_EQ(ThreadPool::global().threadCount(), 7u);
        {
            ScopedThreadOverride two(2);
            EXPECT_EQ(ThreadPool::global().threadCount(), 2u);
        }
        EXPECT_EQ(ThreadPool::global().threadCount(), 7u);
    }
    EXPECT_EQ(ThreadPool::global().threadCount(), base);
}

TEST(ThreadPoolTest, ConfiguredThreadsParsesTheEnvironmentKnob)
{
    const char *saved = std::getenv("ADRIAS_THREADS");
    const std::string saved_value = saved ? saved : "";

    ::setenv("ADRIAS_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ::setenv("ADRIAS_THREADS", "1", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 1u);
    // 0 and garbage fall back to hardware concurrency (>= 1).
    ::setenv("ADRIAS_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ::setenv("ADRIAS_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);

    if (saved)
        ::setenv("ADRIAS_THREADS", saved_value.c_str(), 1);
    else
        ::unsetenv("ADRIAS_THREADS");
}

} // namespace
