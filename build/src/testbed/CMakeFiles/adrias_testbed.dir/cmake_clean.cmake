file(REMOVE_RECURSE
  "CMakeFiles/adrias_testbed.dir/counters.cc.o"
  "CMakeFiles/adrias_testbed.dir/counters.cc.o.d"
  "CMakeFiles/adrias_testbed.dir/testbed.cc.o"
  "CMakeFiles/adrias_testbed.dir/testbed.cc.o.d"
  "libadrias_testbed.a"
  "libadrias_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
