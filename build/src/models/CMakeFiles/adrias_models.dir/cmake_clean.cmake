file(REMOVE_RECURSE
  "CMakeFiles/adrias_models.dir/batching.cc.o"
  "CMakeFiles/adrias_models.dir/batching.cc.o.d"
  "CMakeFiles/adrias_models.dir/performance.cc.o"
  "CMakeFiles/adrias_models.dir/performance.cc.o.d"
  "CMakeFiles/adrias_models.dir/predictor.cc.o"
  "CMakeFiles/adrias_models.dir/predictor.cc.o.d"
  "CMakeFiles/adrias_models.dir/system_state.cc.o"
  "CMakeFiles/adrias_models.dir/system_state.cc.o.d"
  "libadrias_models.a"
  "libadrias_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
