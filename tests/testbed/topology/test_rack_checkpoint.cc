/**
 * @file
 * Checkpoint round-trip tests on asymmetric rack topologies: RackTestbed
 * state (noise RNG, link faults, allocations, link totals), the
 * Watcher's per-link sample schema, and the scenario engine's topology
 * stamp.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/io/binary.hh"
#include "scenario/engine.hh"
#include "telemetry/watcher.hh"
#include "testbed/rack.hh"
#include "testbed/topology.hh"

namespace adrias::testbed
{
namespace
{

LoadDescriptor
rackLoad(std::size_t node, std::size_t server, std::size_t link,
         double demand_gbps, DeploymentId id)
{
    LoadDescriptor load;
    load.id = id;
    load.mode = MemoryMode::Remote;
    load.node = node;
    load.server = server;
    load.link = link;
    load.memDemandGBps = demand_gbps;
    return load;
}

/** A mixed workload touching several nodes/links of the 4x4 rack. */
std::vector<LoadDescriptor>
mixed4x4Loads(const Topology &topo)
{
    std::vector<LoadDescriptor> loads;
    loads.push_back(rackLoad(
        0, 0, static_cast<std::size_t>(topo.linkBetween(0, 0)), 3.0, 1));
    loads.push_back(rackLoad(
        1, 1, static_cast<std::size_t>(topo.linkBetween(1, 1)), 5.0, 2));
    loads.push_back(rackLoad(
        3, 2, static_cast<std::size_t>(topo.linkBetween(3, 2)), 2.0, 3));
    LoadDescriptor local;
    local.id = 4;
    local.mode = MemoryMode::Local;
    local.node = 2;
    local.memDemandGBps = 6.0;
    loads.push_back(local);
    return loads;
}

void
expectIdenticalTicks(const RackTickResult &a, const RackTickResult &b)
{
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].achievedGBps, b.outcomes[i].achievedGBps);
        EXPECT_EQ(a.outcomes[i].slowdown, b.outcomes[i].slowdown);
        EXPECT_EQ(a.outcomes[i].latencyNs, b.outcomes[i].latencyNs);
    }
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            EXPECT_EQ(a.nodes[n].counters[e], b.nodes[n].counters[e]);
    ASSERT_EQ(a.links.size(), b.links.size());
    for (std::size_t l = 0; l < a.links.size(); ++l)
        for (std::size_t e = 0; e < kNumLinkEvents; ++e)
            EXPECT_EQ(a.links[l].counters[e], b.links[l].counters[e]);
}

TEST(RackCheckpoint, RoundTripOnAsymmetricRackReproducesTicks)
{
    const Topology topo = Topology::asymmetric4x4();
    const auto loads = mixed4x4Loads(topo);

    // A run with noise, faults and live allocations — every piece of
    // evolving RackTestbed state is exercised.
    RackTestbed original(topo, 42);
    original.setNoise(0.02);
    original.setLinkFault(
        static_cast<std::size_t>(topo.linkBetween(1, 1)), 0.6, 1.5);
    ASSERT_TRUE(original.allocate(0, 100.0).ok());
    ASSERT_TRUE(original.allocate(2, 16.0).ok());
    for (int t = 0; t < 3; ++t)
        original.tick(loads);

    io::BinaryWriter out;
    original.saveState(out);

    // The restoring process rebuilds the rack from configuration (the
    // topology) with a different seed; the payload overrides it.
    RackTestbed restored(topo, 7777);
    io::BinaryReader in(out.data());
    ASSERT_TRUE(restored.restoreState(in).ok());

    EXPECT_EQ(restored.allocatedGb(0), 100.0);
    EXPECT_EQ(restored.allocatedGb(2), 16.0);
    EXPECT_TRUE(restored.anyLinkFaulted());
    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        EXPECT_EQ(restored.linkTotals(l).offeredGb,
                  original.linkTotals(l).offeredGb);
        EXPECT_EQ(restored.linkTotals(l).deliveredGb,
                  original.linkTotals(l).deliveredGb);
        EXPECT_EQ(restored.linkTotals(l).queuedGb,
                  original.linkTotals(l).queuedGb);
        EXPECT_EQ(restored.linkTotals(l).saturatedTicks,
                  original.linkTotals(l).saturatedTicks);
    }

    // The noise RNG resumes at the exact stream position: subsequent
    // ticks are bitwise identical, noisy counters included.
    for (int t = 0; t < 3; ++t)
        expectIdenticalTicks(original.tick(loads), restored.tick(loads));
}

TEST(RackCheckpoint, RestoreIntoDifferentTopologyIsGeometryError)
{
    RackTestbed original(Topology::asymmetric4x4(), 42);
    original.tick(mixed4x4Loads(original.topology()));
    io::BinaryWriter out;
    original.saveState(out);

    RackTestbed other(Topology::symmetric(2, 2, kCxlProfile), 42);
    io::BinaryReader in(out.data());
    const auto status = other.restoreState(in);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, ErrorCode::Geometry);
}

TEST(RackCheckpoint, TruncatedSnapshotIsRejected)
{
    RackTestbed original(Topology::asymmetric4x4(), 42);
    io::BinaryWriter out;
    original.saveState(out);

    const std::string &payload = out.data();
    for (std::size_t cut : {payload.size() / 4, payload.size() / 2,
                            payload.size() - 4}) {
        RackTestbed target(Topology::asymmetric4x4(), 1);
        io::BinaryReader in(std::string_view(payload.data(), cut));
        EXPECT_FALSE(target.restoreState(in).ok()) << "cut=" << cut;
    }
}

TEST(RackCheckpoint, WatcherLinkSchemaRoundTrips)
{
    telemetry::Watcher watcher(32);
    watcher.configureLinks(3);
    for (int t = 0; t < 5; ++t) {
        testbed::CounterSample node{};
        node[0] = 10.0 + t;
        watcher.record(node, t);
        std::vector<LinkCounterSample> row(3);
        for (std::size_t l = 0; l < 3; ++l)
            for (std::size_t e = 0; e < kNumLinkEvents; ++e)
                row[l][e] = 100.0 * t + 10.0 * l + e;
        watcher.recordLinks(row);
    }

    io::BinaryWriter out;
    watcher.saveState(out);
    telemetry::Watcher restored(32);
    io::BinaryReader in(out.data());
    ASSERT_TRUE(restored.restoreState(in).ok());

    EXPECT_EQ(restored.linkCount(), 3u);
    ASSERT_EQ(restored.linkSampleCount(), 5u);
    const auto latest = restored.latestLinks();
    ASSERT_EQ(latest.size(), 3u);
    for (std::size_t l = 0; l < 3; ++l)
        for (std::size_t e = 0; e < kNumLinkEvents; ++e)
            EXPECT_EQ(latest[l][e], 400.0 + 10.0 * l + e);
    for (std::size_t e = 0; e < kNumLinkEvents; ++e) {
        EXPECT_EQ(restored.meanLinkOverTrailing(1, 5)[e],
                  watcher.meanLinkOverTrailing(1, 5)[e]);
    }
}

TEST(RackCheckpoint, WatcherWithoutLinksKeepsLegacySchema)
{
    telemetry::Watcher watcher(16);
    testbed::CounterSample sample{};
    sample[1] = 3.0;
    watcher.record(sample);

    io::BinaryWriter out;
    watcher.saveState(out);
    telemetry::Watcher restored(16);
    io::BinaryReader in(out.data());
    ASSERT_TRUE(restored.restoreState(in).ok());
    EXPECT_EQ(restored.linkCount(), 0u);
    EXPECT_EQ(restored.linkSampleCount(), 0u);
    EXPECT_EQ(restored.sampleCount(), 1u);
}

TEST(RackCheckpoint, EngineSnapshotCarriesTopologyStamp)
{
    scenario::ScenarioConfig config;
    config.durationSec = 40;
    config.seed = 11;
    config.counterNoise = 0.0;

    scenario::ScenarioEngine engine(config);
    scenario::RandomPlacement policy(5);
    for (int t = 0; t < 10; ++t)
        engine.stepTick(policy);

    io::BinaryWriter out;
    engine.saveState(out);

    // Same topology: restore succeeds.
    scenario::ScenarioEngine same(config);
    io::BinaryReader in_same(out.data());
    EXPECT_TRUE(same.restoreState(in_same).ok());

    // A single-node rack topology is a valid engine config, but a
    // paper-pair snapshot must not silently restore onto it.
    scenario::ScenarioConfig other_config = config;
    other_config.topology = "pairs-1";
    scenario::ScenarioEngine other(other_config);
    io::BinaryReader in_other(out.data());
    const auto status = other.restoreState(in_other);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, ErrorCode::Geometry);
}

TEST(RackCheckpoint, EngineRejectsMultiNodeTopology)
{
    scenario::ScenarioConfig config;
    config.topology = "rack-2x2-cxl";
    EXPECT_THROW(scenario::ScenarioEngine engine(config),
                 std::runtime_error);
    scenario::ScenarioConfig unknown;
    unknown.topology = "no-such-rack";
    EXPECT_THROW(scenario::ScenarioEngine engine(unknown),
                 std::runtime_error);
}

} // namespace
} // namespace adrias::testbed
