/**
 * @file
 * Named interconnect tiers for disaggregated-memory links.
 *
 * One table is the single source of truth for link latency/bandwidth
 * constants: the paper's ThymesisFlow prototype channel (observations
 * R1/R2 of §IV), a CXL-like coherent-fabric tier, and an RDMA-like
 * network tier.  TestbedParams defaults, the rack Topology builders and
 * the benches all pull from here, so a calibration change lands
 * everywhere at once instead of drifting between copies.
 */

#ifndef ADRIAS_TESTBED_LINK_PROFILES_HH
#define ADRIAS_TESTBED_LINK_PROFILES_HH

#include <string>
#include <vector>

namespace adrias::testbed
{

/**
 * Calibration of one link tier: sustained bandwidth, load-to-use
 * latency, and the back-pressure latency ramp (base → saturation
 * between rampStart and rampEnd demand pressure).
 */
struct LinkProfile
{
    /** Canonical tier name ("thymesisflow", "cxl", "rdma"). */
    const char *name = "thymesisflow";

    /** Effective data throughput cap, GB/s. */
    double bandwidthGBps = 0.3125;

    /** Remote load-to-use latency at base pressure, ns. */
    double latencyNs = 900.0;

    /** Link latency in cycles at low load. */
    double latencyBaseCycles = 350.0;

    /** Link latency plateau under back-pressure, cycles. */
    double latencySatCycles = 900.0;

    /** Demand pressure (offered / capacity) where the ramp begins. */
    double rampStart = 1.2;

    /** Pressure at which latency reaches the saturation plateau. */
    double rampEnd = 2.6;

    /** Flit size on the link, bytes. */
    double flitBytes = 32.0;
};

/**
 * The paper's OpenCAPI/FPGA ThymesisFlow channel: ~2.5 Gbps effective
 * throughput (R1, three orders of magnitude under DDR4) with the
 * 350 → 900 cycle latency step under saturation (R2).
 */
inline constexpr LinkProfile kThymesisFlowProfile{
    "thymesisflow", 0.3125, 900.0, 350.0, 900.0, 1.2, 2.6, 32.0};

/**
 * CXL-like coherent fabric: an order of magnitude more bandwidth and a
 * ~3x lower load-to-use latency than the FPGA prototype, with a short
 * queueing ramp (credit-based flow control saturates early).
 */
inline constexpr LinkProfile kCxlProfile{
    "cxl", 4.0, 280.0, 120.0, 300.0, 1.0, 2.0, 64.0};

/**
 * RDMA-like network tier: bandwidth between the two, but a much longer
 * round-trip (NIC + network stack) and a deep-queue ramp that keeps
 * absorbing offered load well past saturation.
 */
inline constexpr LinkProfile kRdmaProfile{
    "rdma", 1.5, 1600.0, 500.0, 1500.0, 1.1, 3.0, 256.0};

/**
 * Back-pressure latency of one link tier (observation R2 generalized):
 * constant at low pressure, linear ramp between rampStart and rampEnd,
 * plateau above.
 *
 * @param pressure offered demand divided by effective capacity.
 */
double linkLatencyCycles(const LinkProfile &profile, double pressure);

/** @return every named profile, in a stable order. */
const std::vector<LinkProfile> &allLinkProfiles();

/**
 * Look up a profile by its canonical name.
 *
 * @throws std::runtime_error on an unknown name.
 */
const LinkProfile &linkProfileByName(const std::string &name);

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_LINK_PROFILES_HH
