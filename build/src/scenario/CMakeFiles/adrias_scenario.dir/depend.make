# Empty dependencies file for adrias_scenario.
# This may be replaced when dependencies are built.
