/** @file Tests for the L2 threshold migrator and migration mechanics. */

#include <gtest/gtest.h>

#include "core/adrias.hh"

namespace adrias::core
{
namespace
{

using scenario::RandomPlacement;
using scenario::ScenarioConfig;
using scenario::ScenarioRunner;
using workloads::WorkloadInstance;

testbed::LoadOutcome
outcomeFor(DeploymentId id, double slowdown)
{
    testbed::LoadOutcome outcome;
    outcome.id = id;
    outcome.slowdown = slowdown;
    outcome.achievedGBps = 0.1;
    return outcome;
}

TEST(MigrationMechanics, PauseThenModeSwitch)
{
    WorkloadInstance app(1, workloads::sparkBenchmark("sort"),
                         MemoryMode::Remote, 0, 3);
    EXPECT_FALSE(app.migrating());
    EXPECT_TRUE(app.requestMigration(MemoryMode::Local, 3.0));
    EXPECT_TRUE(app.migrating());

    SimTime now = 0;
    const double progress_before = app.progressFraction();
    for (int t = 0; t < 3; ++t)
        app.advance(outcomeFor(1, 1.0), ++now);
    // No progress during the pause, mode switched after it.
    EXPECT_DOUBLE_EQ(app.progressFraction(), progress_before);
    EXPECT_FALSE(app.migrating());
    EXPECT_EQ(app.mode(), MemoryMode::Local);
    EXPECT_EQ(app.migrationCount(), 1u);
}

TEST(MigrationMechanics, CopyTrafficAccountedOnChannel)
{
    WorkloadInstance app(1, workloads::sparkBenchmark("sort"),
                         MemoryMode::Remote, 0, 3);
    const double before = app.remoteTrafficGB();
    app.requestMigration(MemoryMode::Local, 4.0);
    SimTime now = 0;
    for (int t = 0; t < 4; ++t)
        app.advance(outcomeFor(1, 1.0), ++now);
    // The footprint crossed the channel during the pause.
    EXPECT_NEAR(app.remoteTrafficGB() - before,
                workloads::sparkBenchmark("sort").memoryFootprintGb +
                    4 * 0.1,
                1e-6);
}

TEST(MigrationMechanics, NoOpCases)
{
    WorkloadInstance app(1, workloads::sparkBenchmark("sort"),
                         MemoryMode::Remote, 0, 3);
    EXPECT_FALSE(app.requestMigration(MemoryMode::Remote, 2.0));
    EXPECT_TRUE(app.requestMigration(MemoryMode::Local, 2.0));
    EXPECT_FALSE(app.requestMigration(MemoryMode::Local, 2.0));
    EXPECT_THROW(app.requestMigration(MemoryMode::Local, 0.0),
                 std::runtime_error);
}

TEST(ThresholdMigrator, ConfigValidation)
{
    MigratorConfig bad;
    bad.slowdownThreshold = 1.0;
    EXPECT_THROW(ThresholdMigrator{bad}, std::runtime_error);
    MigratorConfig bad2;
    bad2.ewmaAlpha = 0.0;
    EXPECT_THROW(ThresholdMigrator{bad2}, std::runtime_error);
    MigratorConfig bad3;
    bad3.copyBandwidthGBps = 0.0;
    EXPECT_THROW(ThresholdMigrator{bad3}, std::runtime_error);
}

TEST(ThresholdMigrator, DemotesSufferingRemoteApp)
{
    MigratorConfig config;
    config.slowdownThreshold = 1.5;
    config.warmupTicks = 3;
    ThresholdMigrator migrator(config);

    WorkloadInstance app(7, workloads::sparkBenchmark("nweight"),
                         MemoryMode::Remote, 0, 3);
    testbed::TickResult tick;
    tick.outcomes.push_back(outcomeFor(7, 4.0)); // heavy contention

    SimTime now = 0;
    for (int t = 0; t < 20 && !app.migrating(); ++t) {
        app.advance(tick.outcomes[0], ++now);
        migrator.onTick({&app}, tick, now);
    }
    EXPECT_EQ(migrator.migrationsTriggered(), 1u);
    EXPECT_TRUE(app.migrating());
}

TEST(ThresholdMigrator, LeavesHealthyAndLocalAppsAlone)
{
    MigratorConfig config;
    config.slowdownThreshold = 1.5;
    config.warmupTicks = 2;
    ThresholdMigrator migrator(config);

    WorkloadInstance healthy(1, workloads::sparkBenchmark("gmm"),
                             MemoryMode::Remote, 0, 3);
    WorkloadInstance local(2, workloads::sparkBenchmark("nweight"),
                           MemoryMode::Local, 0, 3);
    testbed::TickResult tick;
    tick.outcomes.push_back(outcomeFor(1, 1.05));
    tick.outcomes.push_back(outcomeFor(2, 5.0));

    SimTime now = 0;
    for (int t = 0; t < 30; ++t) {
        healthy.advance(tick.outcomes[0], ++now);
        local.advance(tick.outcomes[1], now);
        migrator.onTick({&healthy, &local}, tick, now);
    }
    EXPECT_EQ(migrator.migrationsTriggered(), 0u);
    EXPECT_EQ(healthy.mode(), MemoryMode::Remote);
    EXPECT_EQ(local.mode(), MemoryMode::Local);
}

TEST(ThresholdMigrator, RespectsPerAppMigrationCap)
{
    MigratorConfig config;
    config.slowdownThreshold = 1.2;
    config.warmupTicks = 1;
    config.maxMigrationsPerApp = 1;
    ThresholdMigrator migrator(config);

    WorkloadInstance app(9, workloads::sparkBenchmark("sort"),
                         MemoryMode::Remote, 0, 3);
    testbed::TickResult tick;
    tick.outcomes.push_back(outcomeFor(9, 6.0));

    SimTime now = 0;
    for (int t = 0; t < 60 && !app.finished(); ++t) {
        app.advance(tick.outcomes[0], ++now);
        migrator.onTick({&app}, tick, now);
    }
    EXPECT_EQ(migrator.migrationsTriggered(), 1u);
}

TEST(ThresholdMigrator, EndToEndRescuesRecklessPlacement)
{
    // Random placement strands bandwidth-hungry apps on a congested
    // channel; the L2 migrator must improve the BE tail.
    ScenarioConfig config;
    config.durationSec = 1500;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 15;
    config.seed = 515;

    auto be_p75 = [&](scenario::RuntimePolicy *runtime) {
        ScenarioRunner runner(config);
        RandomPlacement policy(5);
        const auto result = runner.run(policy, runtime);
        std::vector<double> times;
        for (const auto &record : result.records)
            if (record.cls == WorkloadClass::BestEffort)
                times.push_back(record.execTimeSec);
        return stats::quantile(times, 0.75);
    };

    MigratorConfig migrator_config;
    migrator_config.slowdownThreshold = 2.0;
    ThresholdMigrator migrator(migrator_config);
    const double with = be_p75(&migrator);
    const double without = be_p75(nullptr);
    EXPECT_GT(migrator.migrationsTriggered(), 0u);
    EXPECT_LT(with, without);
}

TEST(ThresholdMigrator, RecordsCarryMigrationCounts)
{
    ScenarioConfig config;
    config.durationSec = 1200;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 15;
    config.seed = 616;
    ScenarioRunner runner(config);
    RandomPlacement policy(5);
    MigratorConfig migrator_config;
    migrator_config.slowdownThreshold = 1.8;
    ThresholdMigrator migrator(migrator_config);
    const auto result = runner.run(policy, &migrator);

    std::size_t migrated_records = 0;
    for (const auto &record : result.records)
        migrated_records += record.migrations > 0;
    EXPECT_EQ(migrated_records > 0,
              migrator.migrationsTriggered() > 0);
}

} // namespace
} // namespace adrias::core
