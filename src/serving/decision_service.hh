/**
 * @file
 * The DecisionService: the long-running serving half of the Adrias
 * orchestrator (DESIGN.md §15).  Sharded Watcher feeds submit
 * placement requests through bounded lock-free SPSC queues; the
 * service drains them in deterministic shard order, groups them with a
 * size-or-deadline BatchAssembler, and answers whole batches through
 * the fused b32 inference fast-path — every decision in a batch reads
 * one consistent epoch snapshot of system state.
 *
 * Threading model: each shard has exactly ONE producer (its feed
 * thread) calling submit(); ONE consumer thread (or the caller, in
 * tests and the simulator) drives beginEpoch()/pump()/drain().  The
 * service itself spawns no threads — the pump is caller-driven, so
 * scenario time stays logical and decisions stay reproducible.
 *
 * Determinism rule: for a fixed (arrival trace, shard count, config),
 * batch composition and decisions are identical across runs and
 * thread counts.  Everything order-sensitive — queue drain order,
 * batch membership, padding, rule evaluation — is a pure function of
 * the trace; the thread pool only accelerates the already-deterministic
 * fused forward passes.
 */

#ifndef ADRIAS_SERVING_DECISION_SERVICE_HH
#define ADRIAS_SERVING_DECISION_SERVICE_HH

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/io/checkpoint_annotations.hh"
#include "common/io/checkpointable.hh"
#include "common/spsc_queue.hh"
#include "core/orchestrator.hh"
#include "models/batching.hh"
#include "models/guard.hh"
#include "ml/simd.hh"
#include "serving/request.hh"
#include "stats/percentile.hh"
#include "telemetry/sharded.hh"

namespace adrias::serving
{

/** Serving knobs. */
struct DecisionServiceConfig
{
    /** Ingest shards (one SPSC queue each, > 0). */
    std::size_t shards = 4;

    /** Per-shard queue capacity; a full queue back-pressures. */
    std::size_t queueCapacity = 1024;

    /** Inference batch width (the fused b32 fast-path). */
    std::size_t batchSize = 32;

    /**
     * Pad model-row groups up to a batchSize multiple by repeating the
     * last row, so the fused forward always runs at its tuned width;
     * padded outputs are discarded.
     */
    bool padBatches = true;

    /**
     * Kernel tier the batched inference runs on (DESIGN.md §16).
     * nullopt inherits the process-wide tier (the ADRIAS_KERNEL_TIER
     * knob); an explicit value pins every decideBatch dispatch to that
     * tier, demoted to Scalar when the vector tier is unavailable.
     * The vector tier changes last-ulp rounding, so decisions near a
     * rule threshold may legitimately differ from the scalar tier.
     * Served-vs-inline and batch-vs-single equivalence still hold
     * within either tier: the vector kernels are row-local, so batch
     * width never leaks into a row's result.
     */
    std::optional<ml::KernelTier> kernelTier;
};

/** Serving tallies (see stats()). */
struct DecisionServiceStats
{
    std::uint64_t submitted = 0;           ///< accepted into a queue
    std::uint64_t rejectedBackpressure = 0; ///< refused: queue full
    std::uint64_t decisions = 0;
    std::uint64_t batches = 0;
    std::uint64_t fullBatchFlushes = 0;
    std::uint64_t deadlineFlushes = 0;
    std::uint64_t paddedRows = 0;
    std::uint64_t modelDecisions = 0;
    std::uint64_t bootstrapDecisions = 0;
    std::uint64_t coldDecisions = 0;
    std::uint64_t fallbackDecisions = 0;
    std::uint64_t localDecisions = 0;
    std::uint64_t remoteDecisions = 0;
    std::uint64_t missedDeadlines = 0;
    std::uint64_t epochs = 0;
};

/** Batched, epoch-snapshotted placement serving. */
class DecisionService : public io::Checkpointable
{
  public:
    /**
     * @param predictor trained prediction stack (borrowed).
     * @param signatures signature registry (borrowed, read-only here;
     *        bootstrap capture happens at completion, outside the
     *        serving path).
     * @param policy the paper's decision-rule knobs (β, QoS).
     * @param config serving knobs.
     */
    DecisionService(const models::PredictorBase &predictor,
                    const scenario::SignatureStore &signatures,
                    core::AdriasConfig policy = {},
                    DecisionServiceConfig config = {});

    /**
     * Guarded variant: batches flow through the guard's breaker and
     * deadline, and a sick prediction path degrades the whole batch to
     * the heuristic fallback instead of crashing the serving loop.
     */
    DecisionService(models::GuardedPredictor &guard,
                    const scenario::SignatureStore &signatures,
                    core::AdriasConfig policy = {},
                    DecisionServiceConfig config = {});

    // -- producer side (one thread per shard) -------------------------

    /**
     * Enqueue one request on its shard's SPSC queue.  Lock-free; safe
     * against a concurrently pumping consumer.
     *
     * @return false when the shard queue is full (back-pressure: the
     *         caller owns the retry/drop decision).
     */
    bool submit(const PlacementRequest &request);

    // -- consumer side (single thread) --------------------------------

    /**
     * Open a new serving epoch: capture every shard's binned window as
     * the consistent view all subsequent decisions read.
     */
    void beginEpoch(const telemetry::ShardedWatcherSet &feeds,
                    SimTime now);

    /** Epoch from a pre-built snapshot (tests, replay). */
    void beginEpoch(EpochSnapshot snapshot);

    /**
     * One serving tick: drain all shard queues (shard order, FIFO
     * within a shard), then dispatch every batch that is due — full,
     * or flushed because waiting one more tick would cross the
     * earliest pending deadline.
     *
     * @return decisions dispatched this tick, arrival order.
     */
    std::vector<PlacementDecision> pump(SimTime now);

    /**
     * Drain-on-shutdown: pump, then force every still-pending request
     * through regardless of batch fill (in-flight requests are decided,
     * never dropped).
     */
    std::vector<PlacementDecision> drain(SimTime now);

    /** Requests queued or batched but not yet decided. */
    std::size_t inflightCount() const;

    /** Tallies; includes the producer-side submit/reject counters. */
    DecisionServiceStats stats() const;

    /** p99 of decision latency in ticks (NaN before any decision). */
    double p99LatencyTicks() const;

    /** Decision-latency samples, chronological (ticks). */
    const stats::PercentileTracker &latency() const
    {
        return latencyTracker;
    }

    const DecisionServiceConfig &config() const { return knobs; }
    const core::AdriasConfig &policyConfig() const { return policy; }

    /** Deterministic request routing (id % shards). */
    std::size_t
    shardFor(DeploymentId id) const
    {
        return static_cast<std::size_t>(id) % knobs.shards;
    }

    // -- checkpoint/restore (src/recovery integration) ----------------
    //
    // Quiescent-only: producers and the consumer must be stopped (the
    // same rule every Checkpointable in the scenario stack follows —
    // snapshots are taken between ticks, not mid-flight).

    std::string checkpointTag() const override;
    void saveState(io::BinaryWriter &out) const override;
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in) override;

  private:
    const models::PredictorBase *predictor ADRIAS_NOT_CHECKPOINTED(
        "borrowed model wiring, re-attached at construction");
    models::GuardedPredictor *guardGate ADRIAS_NOT_CHECKPOINTED(
        "the guard checkpoints separately under its own tag") = nullptr;
    const scenario::SignatureStore *signatures ADRIAS_NOT_CHECKPOINTED(
        "borrowed registry; checkpointed by the owning orchestrator");
    core::AdriasConfig policy ADRIAS_NOT_CHECKPOINTED(
        "construction-time configuration, re-supplied on restore");
    DecisionServiceConfig knobs ADRIAS_NOT_CHECKPOINTED(
        "construction-time configuration, re-supplied on restore");

    /** One bounded SPSC ingest queue per shard (contents serialized;
     *  the queue objects themselves are construction-time wiring). */
    std::vector<std::unique_ptr<SpscQueue<PlacementRequest>>> queues;

    /** Accepted-but-undecided requests, arrival order. */
    std::deque<PlacementRequest> inflight;

    /** Batch grouping over inflight; items are arrival sequence
     *  numbers (sanity-checked against the deque front on take). */
    models::BatchAssembler assembler ADRIAS_NOT_CHECKPOINTED(
        "derived state: rebuilt from the inflight deque on restore");

    /** Next arrival sequence number handed to the assembler. */
    std::uint64_t nextSeq = 0;

    /** Oldest inflight request's sequence number. */
    std::uint64_t headSeq = 0;

    std::uint64_t batchCounter = 0;
    EpochSnapshot snapshot;
    DecisionServiceStats tallies;
    stats::PercentileTracker latencyTracker;

    /** Producer-side counters (atomic: one writer per shard races
     *  only against the stats() reader, never another writer of the
     *  same request). */
    std::atomic<std::uint64_t> submitCount{0};
    std::atomic<std::uint64_t> rejectCount{0};

    /** Move every queued request into the inflight/assembler stage. */
    void drainQueues();

    /** Dispatch one due batch; appends its decisions to `out`. */
    void decideBatch(SimTime now, std::vector<PlacementDecision> &out);

    /** QoS threshold for one LC app (policy map lookup). */
    double qosFor(const std::string &app) const;

    /** Degraded-mode placement when predictions are unavailable. */
    MemoryMode fallbackMode(WorkloadClass cls) const;

    void recordDecision(const PlacementRequest &request, MemoryMode mode,
                        DecisionPath path, SimTime now,
                        std::vector<PlacementDecision> &out);
};

} // namespace adrias::serving

#endif // ADRIAS_SERVING_DECISION_SERVICE_HH
