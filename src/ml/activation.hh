/**
 * @file
 * Element-wise activation layers (ReLU, Tanh, Sigmoid).
 */

#ifndef ADRIAS_ML_ACTIVATION_HH
#define ADRIAS_ML_ACTIVATION_HH

#include "ml/layer.hh"

namespace adrias::ml
{

/** Rectified linear unit: y = max(0, x). */
class ReLU : public Layer
{
  public:
    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    Matrix lastInput;
};

/** Hyperbolic tangent activation. */
class Tanh : public Layer
{
  public:
    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    Matrix lastOutput;
};

/** Logistic sigmoid activation. */
class Sigmoid : public Layer
{
  public:
    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    Matrix lastOutput;
};

/**
 * Scalar sigmoid/tanh helpers used by the LSTM cell and activation
 * layers.  Both delegate to ml/fastmath.hh — every nonlinearity in the
 * model must evaluate through the same scalar functions so the fused
 * and reference kernel paths stay bitwise interchangeable.
 */
double sigmoidScalar(double x);
double tanhScalar(double x);

} // namespace adrias::ml

#endif // ADRIAS_ML_ACTIVATION_HH
