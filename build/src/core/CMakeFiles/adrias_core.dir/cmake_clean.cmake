file(REMOVE_RECURSE
  "CMakeFiles/adrias_core.dir/adrias.cc.o"
  "CMakeFiles/adrias_core.dir/adrias.cc.o.d"
  "CMakeFiles/adrias_core.dir/cluster_orchestrator.cc.o"
  "CMakeFiles/adrias_core.dir/cluster_orchestrator.cc.o.d"
  "CMakeFiles/adrias_core.dir/orchestrator.cc.o"
  "CMakeFiles/adrias_core.dir/orchestrator.cc.o.d"
  "CMakeFiles/adrias_core.dir/runtime_migrator.cc.o"
  "CMakeFiles/adrias_core.dir/runtime_migrator.cc.o.d"
  "libadrias_core.a"
  "libadrias_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
