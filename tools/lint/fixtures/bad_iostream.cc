// Lint fixture: deliberate iostream-include violation (applies under a
// src/ label other than common/logging.cc).  Never compiled.
#include <iostream> // line 3: iostream-include

void
shout()
{
    std::cout << "library code must use the Logger\n";
}
