#include "recovery/checkpoint.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "common/io/binary.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace adrias::recovery
{

namespace
{

/** Manifest version string opening every snapshot. */
constexpr const char *kSnapshotVersion = "adrias-checkpoint-v1";

constexpr const char *kSnapshotPrefix = "snap-";
constexpr const char *kSnapshotSuffix = ".adck";

/** Parse the tick out of "snap-<tick>.adck"; -1 when not a snapshot. */
SimTime
parseSnapshotTick(const std::string &filename)
{
    const std::string prefix(kSnapshotPrefix);
    const std::string suffix(kSnapshotSuffix);
    if (filename.size() <= prefix.size() + suffix.size() ||
        filename.compare(0, prefix.size(), prefix) != 0 ||
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
        return -1;
    const std::string digits = filename.substr(
        prefix.size(), filename.size() - prefix.size() - suffix.size());
    SimTime tick = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return -1;
        tick = tick * 10 + (c - '0');
    }
    return tick;
}

/** Monotonic milliseconds for checkpoint/restore latency metrics. */
double
monotonicMs()
{
    // NOLINTNEXTLINE(wall-clock): measuring real I/O latency.
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(
               now.time_since_epoch())
        .count();
}

} // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config_)
    : config(std::move(config_))
{
    if (config.dir.empty())
        fatal("CheckpointManager: directory must not be empty");
    if (config.intervalSec <= 0)
        fatal("CheckpointManager: interval must be positive");
    if (config.keep == 0)
        fatal("CheckpointManager: must keep at least one snapshot");
}

void
CheckpointManager::attach(io::Checkpointable &section)
{
    for (const io::Checkpointable *existing : sections)
        if (existing->checkpointTag() == section.checkpointTag())
            panic("CheckpointManager: duplicate section tag '" +
                  section.checkpointTag() + "'");
    sections.push_back(&section);
}

std::string
CheckpointManager::snapshotPath(SimTime tick) const
{
    return config.dir + "/" + kSnapshotPrefix + std::to_string(tick) +
           kSnapshotSuffix;
}

std::vector<SimTime>
CheckpointManager::snapshotTicks() const
{
    std::vector<SimTime> ticks;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(config.dir, ec)) {
        const SimTime tick =
            parseSnapshotTick(entry.path().filename().string());
        if (tick >= 0)
            ticks.push_back(tick);
    }
    std::sort(ticks.begin(), ticks.end());
    return ticks;
}

SimTime
CheckpointManager::oldestKeptTick() const
{
    const std::vector<SimTime> ticks = snapshotTicks();
    return ticks.empty() ? 0 : ticks.front();
}

Result<void>
CheckpointManager::checkpointNow(SimTime now)
{
    if (sections.empty())
        panic("CheckpointManager::checkpointNow with no sections");

    const double startMs = monotonicMs();
    std::string image = io::beginRecordFileImage();

    io::BinaryWriter manifest;
    manifest.writeString(kSnapshotVersion);
    manifest.writeI64(now);
    manifest.writeU64(sections.size());
    io::appendFramedRecord(image, manifest.data());

    for (const io::Checkpointable *section : sections) {
        io::BinaryWriter payload;
        section->saveState(payload);
        io::BinaryWriter record;
        record.writeString(section->checkpointTag());
        record.writeString(payload.data());
        io::appendFramedRecord(image, record.data());
    }

    io::AtomicWriteOptions options;
    options.chaos = chaos;
    if (Result<void> written =
            atomicWriteFile(snapshotPath(now), image, options);
        !written.ok())
        return written.error();
    lastTick = now;

#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        static obs::Counter &written_c =
            reg.counter("recovery.checkpoints_written");
        static obs::Counter &bytes_c =
            reg.counter("recovery.checkpoint_bytes");
        static obs::Histogram &write_ms_h =
            reg.histogram("recovery.checkpoint_write_ms");
        written_c.add();
        bytes_c.add(image.size());
        write_ms_h.observe(monotonicMs() - startMs, now);
    }
#endif

    pruneSnapshots();
    return {};
}

void
CheckpointManager::pruneSnapshots() const
{
    std::vector<SimTime> ticks = snapshotTicks();
    if (ticks.size() <= config.keep)
        return;
    const std::size_t excess = ticks.size() - config.keep;
    for (std::size_t i = 0; i < excess; ++i) {
        std::error_code ec;
        std::filesystem::remove(snapshotPath(ticks[i]), ec);
    }
#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &pruned_c =
            obs::MetricsRegistry::global().counter(
                "recovery.snapshots_pruned");
        pruned_c.add(excess);
    }
#endif
}

void
CheckpointManager::removeOrphanTempFiles() const
{
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(config.dir, ec)) {
        if (entry.path().extension() == ".tmp") {
            std::error_code ignored;
            std::filesystem::remove(entry.path(), ignored);
        }
    }
}

Result<void>
CheckpointManager::restoreSnapshot(const std::string &path,
                                   SimTime expectedTick,
                                   bool &stateTouched)
{
    // Phase 1 — structural validation, no state mutated.  readStrict
    // already rejects truncation, bit flips and bad magic via CRC.
    Result<std::vector<std::string>> read =
        io::readRecordFileStrict(path);
    if (!read.ok())
        return read.error();
    const std::vector<std::string> &records = read.value();

    if (records.size() != sections.size() + 1)
        return makeError(ErrorCode::Geometry,
                         "snapshot '" + path + "' has " +
                             std::to_string(records.size()) +
                             " records, expected " +
                             std::to_string(sections.size() + 1));

    io::BinaryReader manifest(records.front());
    const std::string version = manifest.readString();
    const SimTime tick = manifest.readI64();
    const std::uint64_t count = manifest.readU64();
    if (Result<void> status = manifest.status(); !status.ok())
        return status.error();
    if (version != kSnapshotVersion)
        return makeError(ErrorCode::BadHeader,
                         "snapshot '" + path +
                             "' has unknown version '" + version + "'");
    if (tick != expectedTick)
        return makeError(ErrorCode::BadNumber,
                         "snapshot '" + path + "' claims tick " +
                             std::to_string(tick) + ", filename says " +
                             std::to_string(expectedTick));
    if (count != sections.size())
        return makeError(ErrorCode::Geometry,
                         "snapshot '" + path + "' holds " +
                             std::to_string(count) +
                             " sections, expected " +
                             std::to_string(sections.size()));

    std::vector<std::string> payloads;
    payloads.reserve(sections.size());
    for (std::size_t i = 0; i < sections.size(); ++i) {
        io::BinaryReader record(records[i + 1]);
        const std::string tag = record.readString();
        std::string payload = record.readString();
        if (Result<void> status = record.status(); !status.ok())
            return status.error();
        if (tag != sections[i]->checkpointTag())
            return makeError(ErrorCode::BadToken,
                             "snapshot '" + path + "' section " +
                                 std::to_string(i) + " is '" + tag +
                                 "', expected '" +
                                 sections[i]->checkpointTag() + "'");
        payloads.push_back(std::move(payload));
    }

    // Phase 2 — restore in attach order.  A failure here leaves
    // partial state; the caller either falls back to an older snapshot
    // (which re-restores every section) or reports the error up.
    stateTouched = true;
    for (std::size_t i = 0; i < sections.size(); ++i) {
        io::BinaryReader payload(payloads[i]);
        if (Result<void> restored = sections[i]->restoreState(payload);
            !restored.ok())
            return restored.error();
    }
    return {};
}

Result<RestoreOutcome>
CheckpointManager::restoreLatest()
{
    if (sections.empty())
        panic("CheckpointManager::restoreLatest with no sections");

    const double startMs = monotonicMs();
    std::vector<SimTime> ticks = snapshotTicks();
    std::sort(ticks.begin(), ticks.end(), std::greater<>());

    RestoreOutcome outcome;
    bool anyStateTouched = false;
    for (SimTime tick : ticks) {
        const std::string path = snapshotPath(tick);
        bool stateTouched = false;
        Result<void> restored =
            restoreSnapshot(path, tick, stateTouched);
        anyStateTouched = anyStateTouched || stateTouched;
        if (restored.ok()) {
            outcome.restored = true;
            outcome.snapshotTick = tick;
            lastTick = tick;
            break;
        }
        ++outcome.rejectedSnapshots;
        logWarn("CheckpointManager: rejecting snapshot '" + path +
                "': " + restored.error().toString());
    }

#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        static obs::Counter &rejected_c =
            reg.counter("recovery.snapshots_rejected");
        static obs::Counter &restores_c = reg.counter("recovery.restores");
        static obs::Histogram &restore_ms_h =
            reg.histogram("recovery.restore_ms");
        rejected_c.add(outcome.rejectedSnapshots);
        if (outcome.restored) {
            restores_c.add();
            restore_ms_h.observe(monotonicMs() - startMs,
                                 outcome.snapshotTick);
        }
    }
#endif

    if (!outcome.restored && anyStateTouched)
        return makeError(
            ErrorCode::Io,
            "CheckpointManager: every snapshot failed section restore "
            "after structural validation; attached state is partial "
            "and must be rebuilt");
    return outcome;
}

} // namespace adrias::recovery
