file(REMOVE_RECURSE
  "libadrias_common.a"
)
