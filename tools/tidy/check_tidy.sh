#!/bin/sh
# clang-tidy check for the `tidy` CTest target.  Exit codes:
#   0   no diagnostics
#   1   clang-tidy reported problems
#   125 clang-tidy or compile_commands.json unavailable -> test skipped
set -u

repo="${1:-}"
build="${2:-}"
tidy="${3:-}"

if [ -z "$repo" ] || [ ! -d "$repo" ] || [ -z "$build" ]; then
    echo "usage: check_tidy.sh <repo-root> <build-dir> [clang-tidy]" >&2
    exit 1
fi
if [ -z "$tidy" ] || [ "$tidy" = "ADRIAS_CLANG_TIDY-NOTFOUND" ] \
        || ! command -v "$tidy" >/dev/null 2>&1; then
    echo "clang-tidy not available; skipping tidy check"
    exit 125
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "no compile_commands.json (configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON); skipping tidy check"
    exit 125
fi

cd "$repo" || exit 1
files=$(find src tools/lint \( -name '*.cc' \) ! -path '*/fixtures/*' | sort)
[ -n "$files" ] || { echo "no sources found under $repo" >&2; exit 1; }

status=0
for f in $files; do
    "$tidy" -p "$build" --quiet "$f" || status=1
done
exit $status
