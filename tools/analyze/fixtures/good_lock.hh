// Analyzer fixture: a lock-discipline-clean class.  Never compiled —
// parsed by tools/analyze self-tests.

#ifndef ADRIAS_ANALYZE_FIXTURE_GOOD_LOCK_HH
#define ADRIAS_ANALYZE_FIXTURE_GOOD_LOCK_HH

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace adrias::fixture
{

class HitCache
{
  public:
    void record(bool hit);

  private:
    mutable Mutex mu;

    std::size_t hits ADRIAS_GUARDED_BY(mu) = 0;
    double rate ADRIAS_GUARDED_BY(mu) = 0.0;

    /** Waived with a reason: must NOT be flagged. */
    std::size_t capacityHint ADRIAS_LOCK_FREE(
        "set once before any worker thread is spawned") = 0;

    std::atomic<bool> warm{false};
    std::condition_variable_any refreshed;
    const int capacity = 8;
};

} // namespace adrias::fixture

#endif // ADRIAS_ANALYZE_FIXTURE_GOOD_LOCK_HH
