#include "serving/decision_service.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "scenario/runner.hh"

namespace adrias::serving
{

std::string
toString(DecisionPath path)
{
    switch (path) {
      case DecisionPath::Model:
        return "model";
      case DecisionPath::Bootstrap:
        return "bootstrap";
      case DecisionPath::Cold:
        return "cold";
      case DecisionPath::Fallback:
        return "fallback";
    }
    panic("unknown DecisionPath");
}

DecisionService::DecisionService(const models::PredictorBase &predictor_,
                                 const scenario::SignatureStore &signatures_,
                                 core::AdriasConfig policy_,
                                 DecisionServiceConfig config_)
    : predictor(&predictor_), signatures(&signatures_), policy(policy_),
      knobs(config_),
      assembler(models::BatchAssemblerConfig{config_.batchSize})
{
    if (knobs.shards == 0)
        fatal("DecisionService: shard count must be positive");
    if (knobs.queueCapacity == 0)
        fatal("DecisionService: queue capacity must be positive");
    if (knobs.batchSize == 0)
        fatal("DecisionService: batch size must be positive");
    if (!predictor->trained())
        fatal("DecisionService requires a trained Predictor");
    if (policy.beta <= 0.0 || policy.beta > 1.5)
        fatal("DecisionService: beta out of sensible range");
    queues.reserve(knobs.shards);
    for (std::size_t s = 0; s < knobs.shards; ++s)
        queues.push_back(std::make_unique<SpscQueue<PlacementRequest>>(
            knobs.queueCapacity));
    snapshot.shardWindows.resize(knobs.shards);
}

DecisionService::DecisionService(models::GuardedPredictor &guard,
                                 const scenario::SignatureStore &signatures_,
                                 core::AdriasConfig policy_,
                                 DecisionServiceConfig config_)
    : DecisionService(static_cast<const models::PredictorBase &>(guard),
                      signatures_, policy_, config_)
{
    guardGate = &guard;
}

bool
DecisionService::submit(const PlacementRequest &request)
{
    if (request.shard >= queues.size())
        fatal("DecisionService::submit: shard out of range");
    if (!queues[request.shard]->tryPush(request)) {
        rejectCount.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    submitCount.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
DecisionService::beginEpoch(const telemetry::ShardedWatcherSet &feeds,
                            SimTime now)
{
    if (feeds.shardCount() != knobs.shards)
        fatal("DecisionService::beginEpoch: shard count mismatch");
    EpochSnapshot next;
    next.takenAt = now;
    next.shardWindows =
        feeds.binnedWindows(scenario::ScenarioRunner::kWindowSec,
                            scenario::ScenarioRunner::kWindowBins);
    beginEpoch(std::move(next));
}

void
DecisionService::beginEpoch(EpochSnapshot next)
{
    if (next.shardWindows.size() != knobs.shards)
        fatal("DecisionService::beginEpoch: snapshot shard mismatch");
    ++tallies.epochs;
    next.epoch = tallies.epochs;
    snapshot = std::move(next);
}

void
DecisionService::drainQueues()
{
    // Deterministic ingest order: ascending shard, FIFO within the
    // shard.  Batch composition therefore depends only on what each
    // producer had queued before this pump, never on thread timing
    // between the queues.
    for (auto &queue : queues) {
        PlacementRequest request;
        while (queue->tryPop(request)) {
            assembler.push(static_cast<std::size_t>(nextSeq),
                           request.deadline);
            ++nextSeq;
            inflight.push_back(std::move(request));
        }
    }
}

std::vector<PlacementDecision>
DecisionService::pump(SimTime now)
{
    drainQueues();
    std::vector<PlacementDecision> decisions;
    while (assembler.pending() > 0 && assembler.flushDue(now))
        decideBatch(now, decisions);
    return decisions;
}

std::vector<PlacementDecision>
DecisionService::drain(SimTime now)
{
    std::vector<PlacementDecision> decisions = pump(now);
    // Shutdown rule: in-flight requests are decided, never dropped.
    while (assembler.pending() > 0)
        decideBatch(now, decisions);
    return decisions;
}

std::size_t
DecisionService::inflightCount() const
{
    std::size_t queued = 0;
    for (const auto &queue : queues)
        queued += queue->size();
    return queued + inflight.size();
}

DecisionServiceStats
DecisionService::stats() const
{
    DecisionServiceStats merged = tallies;
    merged.submitted = submitCount.load(std::memory_order_relaxed);
    merged.rejectedBackpressure =
        rejectCount.load(std::memory_order_relaxed);
    return merged;
}

double
DecisionService::p99LatencyTicks() const
{
    return latencyTracker.quantile(0.99);
}

double
DecisionService::qosFor(const std::string &app) const
{
    const auto it = policy.qosP99Ms.find(app);
    return it == policy.qosP99Ms.end() ? policy.defaultQosP99Ms
                                       : it->second;
}

MemoryMode
DecisionService::fallbackMode(WorkloadClass cls) const
{
    return cls == WorkloadClass::LatencyCritical ? policy.degradedLcMode
                                                 : policy.degradedBeMode;
}

void
DecisionService::recordDecision(const PlacementRequest &request,
                                MemoryMode mode, DecisionPath path,
                                SimTime now,
                                std::vector<PlacementDecision> &out)
{
    PlacementDecision decision;
    decision.id = request.id;
    decision.mode = mode;
    decision.path = path;
    decision.decided = now;
    decision.latencyTicks = now - request.submitted;
    decision.missedDeadline = now >= request.deadline;
    decision.epoch = snapshot.epoch;
    decision.batchSeq = batchCounter;

    ++tallies.decisions;
    if (mode == MemoryMode::Remote)
        ++tallies.remoteDecisions;
    else
        ++tallies.localDecisions;
    switch (path) {
      case DecisionPath::Model:
        ++tallies.modelDecisions;
        break;
      case DecisionPath::Bootstrap:
        ++tallies.bootstrapDecisions;
        break;
      case DecisionPath::Cold:
        ++tallies.coldDecisions;
        break;
      case DecisionPath::Fallback:
        ++tallies.fallbackDecisions;
        break;
    }
    if (decision.missedDeadline)
        ++tallies.missedDeadlines;
    latencyTracker.add(static_cast<double>(decision.latencyTicks));
    out.push_back(std::move(decision));
}

void
DecisionService::decideBatch(SimTime now,
                             std::vector<PlacementDecision> &out)
{
    // Pin the configured kernel tier for everything this batch infers
    // (DESIGN.md §16).  Safe on the single consumer thread: the tier
    // knob is only read by the kernel dispatch sites this call runs.
    std::optional<ml::ScopedKernelTier> tier_pin;
    if (knobs.kernelTier)
        tier_pin.emplace(*knobs.kernelTier);

    const bool flushed_full = assembler.pending() >= knobs.batchSize;
    const std::vector<std::size_t> seqs = assembler.take();

    std::vector<PlacementRequest> requests;
    requests.reserve(seqs.size());
    for (std::size_t seq : seqs) {
        if (inflight.empty() || seq != headSeq)
            panic("DecisionService: assembler/inflight desync");
        requests.push_back(std::move(inflight.front()));
        inflight.pop_front();
        ++headSeq;
    }

    ++tallies.batches;
    ++batchCounter;
    if (flushed_full)
        ++tallies.fullBatchFlushes;
    else
        ++tallies.deadlineFlushes;

    // Partition the batch: requests the paper's rules can decide
    // without a model (bootstrap, cold shard) versus model rows.  BE
    // requests contribute two rows (local and remote hypotheticals),
    // LC requests one (remote), all in arrival order.
    enum class Kind : std::uint8_t { Bootstrap, Cold, Model };
    std::vector<Kind> kinds(requests.size(), Kind::Model);
    std::vector<models::PredictorBase::PerfQuery> be_rows, lc_rows;
    std::vector<std::size_t> be_owners, lc_owners;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const PlacementRequest &request = requests[i];
        if (request.shard >= knobs.shards)
            fatal("DecisionService: request shard out of range");
        if (!signatures->has(request.app)) {
            kinds[i] = Kind::Bootstrap;
            continue;
        }
        if (snapshot.shardWindows[request.shard].empty()) {
            kinds[i] = Kind::Cold;
            continue;
        }
        const std::vector<ml::Matrix> &window =
            snapshot.shardWindows[request.shard];
        const std::vector<ml::Matrix> &signature =
            signatures->get(request.app);
        if (request.cls == WorkloadClass::BestEffort) {
            be_rows.push_back({&window, &signature, MemoryMode::Local});
            be_rows.push_back({&window, &signature, MemoryMode::Remote});
            be_owners.push_back(i);
        } else if (request.cls == WorkloadClass::LatencyCritical) {
            lc_rows.push_back({&window, &signature, MemoryMode::Remote});
            lc_owners.push_back(i);
        } else {
            panic("DecisionService asked to place a trasher");
        }
    }

    // Fused inference in batchSize-wide chunks, padded by repeating
    // the last row so the b32 fast-path always runs at its tuned
    // width; padded outputs are dropped.  One guard admission per
    // chunk; any failure degrades the WHOLE batch to the heuristic —
    // the partially predicted values are discarded so batch members
    // are never decided from mixed healthy/sick inference.
    const auto predictChunked =
        [this](WorkloadClass cls,
               const std::vector<models::PredictorBase::PerfQuery> &rows) {
            std::vector<double> predictions;
            predictions.reserve(rows.size());
            for (std::size_t begin = 0; begin < rows.size();
                 begin += knobs.batchSize) {
                const std::size_t end =
                    std::min(rows.size(), begin + knobs.batchSize);
                std::vector<models::PredictorBase::PerfQuery> chunk(
                    rows.begin() + static_cast<std::ptrdiff_t>(begin),
                    rows.begin() + static_cast<std::ptrdiff_t>(end));
                if (knobs.padBatches) {
                    while (chunk.size() < knobs.batchSize) {
                        chunk.push_back(chunk.back());
                        ++tallies.paddedRows;
                    }
                }
                const std::vector<double> chunk_out =
                    predictor->predictPerformanceBatch(cls, chunk);
                for (std::size_t i = 0; i < end - begin; ++i)
                    predictions.push_back(chunk_out[i]);
            }
            return predictions;
        };

    if (guardGate != nullptr)
        guardGate->beginDecision(now);
    bool degraded = false;
    std::vector<double> be_pred, lc_pred;
    try {
        if (!be_rows.empty())
            be_pred = predictChunked(WorkloadClass::BestEffort, be_rows);
        if (!lc_rows.empty())
            lc_pred =
                predictChunked(WorkloadClass::LatencyCritical, lc_rows);
    } catch (const models::PredictionUnavailable &err) {
        logWarn(std::string("DecisionService degraded: ") + err.what());
        degraded = true;
    }

    std::vector<MemoryMode> modes(requests.size(), MemoryMode::Local);
    std::vector<DecisionPath> paths(requests.size(), DecisionPath::Model);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        switch (kinds[i]) {
          case Kind::Bootstrap:
            modes[i] = MemoryMode::Remote;
            paths[i] = DecisionPath::Bootstrap;
            break;
          case Kind::Cold:
            modes[i] = MemoryMode::Local;
            paths[i] = DecisionPath::Cold;
            break;
          case Kind::Model:
            if (degraded) {
                modes[i] = fallbackMode(requests[i].cls);
                paths[i] = DecisionPath::Fallback;
            }
            break;
        }
    }
    if (!degraded) {
        for (std::size_t j = 0; j < be_owners.size(); ++j)
            modes[be_owners[j]] = core::AdriasOrchestrator::decideBestEffort(
                be_pred[2 * j], be_pred[2 * j + 1], policy.beta);
        for (std::size_t j = 0; j < lc_owners.size(); ++j)
            modes[lc_owners[j]] =
                core::AdriasOrchestrator::decideLatencyCritical(
                    lc_pred[j], qosFor(requests[lc_owners[j]].app));
    }

    for (std::size_t i = 0; i < requests.size(); ++i)
        recordDecision(requests[i], modes[i], paths[i], now, out);
}

std::string
DecisionService::checkpointTag() const
{
    return "decision-service";
}

void
DecisionService::saveState(io::BinaryWriter &out) const
{
    // Quiescent-only (see header): producers stopped, so the queue
    // snapshots are exact and no request can race the payload.
    out.writeU64(nextSeq);
    out.writeU64(headSeq);
    out.writeU64(batchCounter);
    out.writeU64(submitCount.load(std::memory_order_relaxed));
    out.writeU64(rejectCount.load(std::memory_order_relaxed));

    out.writeU64(tallies.decisions);
    out.writeU64(tallies.batches);
    out.writeU64(tallies.fullBatchFlushes);
    out.writeU64(tallies.deadlineFlushes);
    out.writeU64(tallies.paddedRows);
    out.writeU64(tallies.modelDecisions);
    out.writeU64(tallies.bootstrapDecisions);
    out.writeU64(tallies.coldDecisions);
    out.writeU64(tallies.fallbackDecisions);
    out.writeU64(tallies.localDecisions);
    out.writeU64(tallies.remoteDecisions);
    out.writeU64(tallies.missedDeadlines);
    out.writeU64(tallies.epochs);

    out.writeF64Vector(latencyTracker.values());

    const auto writeRequest = [&out](const PlacementRequest &request) {
        out.writeU64(request.id);
        out.writeString(request.app);
        out.writeU8(static_cast<std::uint8_t>(request.cls));
        out.writeU64(request.shard);
        out.writeI64(request.submitted);
        out.writeI64(request.deadline);
    };

    // Epoch snapshot: every shard's window, matrices as raw rows.
    out.writeU64(snapshot.epoch);
    out.writeI64(snapshot.takenAt);
    out.writeU64(snapshot.shardWindows.size());
    for (const auto &window : snapshot.shardWindows) {
        out.writeU64(window.size());
        for (const ml::Matrix &step : window) {
            out.writeU64(step.cols());
            for (std::size_t c = 0; c < step.cols(); ++c)
                out.writeF64(step.at(0, c));
        }
    }

    // In-flight stage: batched-but-undecided requests (the assembler
    // is rebuilt from these on restore), then each queue's content.
    out.writeU64(inflight.size());
    for (const PlacementRequest &request : inflight)
        writeRequest(request);
    out.writeU64(queues.size());
    for (const auto &queue : queues) {
        const std::vector<PlacementRequest> queued =
            queue->snapshotContents();
        out.writeU64(queued.size());
        for (const PlacementRequest &request : queued)
            writeRequest(request);
    }
}

Result<void>
DecisionService::restoreState(io::BinaryReader &in)
{
    nextSeq = in.readU64();
    headSeq = in.readU64();
    batchCounter = in.readU64();
    submitCount.store(in.readU64(), std::memory_order_relaxed);
    rejectCount.store(in.readU64(), std::memory_order_relaxed);

    tallies.decisions = in.readU64();
    tallies.batches = in.readU64();
    tallies.fullBatchFlushes = in.readU64();
    tallies.deadlineFlushes = in.readU64();
    tallies.paddedRows = in.readU64();
    tallies.modelDecisions = in.readU64();
    tallies.bootstrapDecisions = in.readU64();
    tallies.coldDecisions = in.readU64();
    tallies.fallbackDecisions = in.readU64();
    tallies.localDecisions = in.readU64();
    tallies.remoteDecisions = in.readU64();
    tallies.missedDeadlines = in.readU64();
    tallies.epochs = in.readU64();

    latencyTracker.clear();
    for (double sample : in.readF64Vector())
        latencyTracker.add(sample);

    const auto readRequest = [&in]() {
        PlacementRequest request;
        request.id = in.readU64();
        request.app = in.readString();
        request.cls = static_cast<WorkloadClass>(in.readU8());
        request.shard = static_cast<std::size_t>(in.readU64());
        request.submitted = in.readI64();
        request.deadline = in.readI64();
        return request;
    };

    snapshot.epoch = in.readU64();
    snapshot.takenAt = in.readI64();
    const std::uint64_t shard_count = in.readU64();
    if (!in.ok() || shard_count != knobs.shards)
        return makeError(ErrorCode::BadNumber,
                         "DecisionService: snapshot shard mismatch");
    snapshot.shardWindows.assign(knobs.shards, {});
    for (auto &window : snapshot.shardWindows) {
        const std::uint64_t steps = in.readU64();
        if (!in.ok())
            return makeError(ErrorCode::Truncated,
                             "DecisionService: truncated snapshot");
        window.resize(steps);
        for (ml::Matrix &step : window) {
            const std::uint64_t cols = in.readU64();
            if (!in.ok())
                return makeError(ErrorCode::Truncated,
                                 "DecisionService: truncated snapshot");
            step = ml::Matrix(1, static_cast<std::size_t>(cols));
            for (std::size_t c = 0; c < cols; ++c)
                step.at(0, c) = in.readF64();
        }
    }

    // Rebuild the in-flight stage: the assembler is re-fed in arrival
    // order with the restored sequence numbers.
    inflight.clear();
    assembler = models::BatchAssembler(
        models::BatchAssemblerConfig{knobs.batchSize});
    const std::uint64_t inflight_count = in.readU64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "DecisionService: truncated in-flight section");
    for (std::uint64_t i = 0; i < inflight_count; ++i) {
        PlacementRequest request = readRequest();
        assembler.push(static_cast<std::size_t>(headSeq + i),
                       request.deadline);
        inflight.push_back(std::move(request));
    }

    const std::uint64_t queue_count = in.readU64();
    if (!in.ok() || queue_count != queues.size())
        return makeError(ErrorCode::BadNumber,
                         "DecisionService: queue count mismatch");
    for (auto &queue : queues) {
        PlacementRequest discard;
        while (queue->tryPop(discard)) {
        }
        const std::uint64_t queued = in.readU64();
        if (!in.ok() || queued > queue->capacity())
            return makeError(ErrorCode::BadNumber,
                             "DecisionService: queue payload overflow");
        for (std::uint64_t i = 0; i < queued; ++i) {
            if (!queue->tryPush(readRequest()))
                return makeError(ErrorCode::BadNumber,
                                 "DecisionService: queue refill failed");
        }
    }
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "DecisionService: truncated snapshot section");
    return {};
}

} // namespace adrias::serving
