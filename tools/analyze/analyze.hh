/**
 * @file
 * Cross-file semantic static analysis for the Adrias tree
 * (DESIGN.md §13).  Three whole-tree passes over the declaration
 * index built by tools/analyze/index.hh:
 *
 *   checkpoint-coverage  every non-static data member of a class
 *                        implementing the Checkpointable
 *                        saveState/restoreState pair must be
 *                        referenced in *both* bodies (delegation to
 *                        same-class helpers is followed), or carry
 *                        ADRIAS_NOT_CHECKPOINTED(reason).  A forgotten
 *                        field is a silent divergence after restore.
 *
 *   lock-discipline      in a class owning an adrias::Mutex, every
 *                        mutable data member must be
 *                        ADRIAS_GUARDED_BY-annotated or carry
 *                        ADRIAS_LOCK_FREE(reason).  Const members,
 *                        atomics and condition variables are
 *                        intrinsically safe and exempt.
 *
 *   determinism-hazard   flags (a) range-for iteration over
 *                        unordered containers or pointer-keyed maps
 *                        inside functions that feed checkpoints, CSV
 *                        datasets or binary snapshots — iteration
 *                        order would leak into reproducible outputs —
 *                        and (b) `x += ...` float accumulation into
 *                        variables declared outside a
 *                        parallelFor/parallelForEach chunk region,
 *                        which races and reorders; the blessed
 *                        pattern is per-chunk partial slots combined
 *                        in chunk index order (DESIGN.md §9).
 *
 * Pass ids double as suppression rule names: the shared NOLINT
 * machinery (tools/lint/source.hh) applies, e.g.
 * `// NOLINT(determinism-hazard)` on the offending line.  Prefer the
 * reasoned waiver macros (ADRIAS_NOT_CHECKPOINTED / ADRIAS_LOCK_FREE)
 * for the member-level passes — they carry the why.
 */

#ifndef ADRIAS_TOOLS_ANALYZE_ANALYZE_HH
#define ADRIAS_TOOLS_ANALYZE_ANALYZE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/index.hh"

namespace adrias::analyze
{

/** One pass finding at a specific source line. */
struct Finding
{
    /** Normalized repo-relative path ("src/scenario/engine.hh"). */
    std::string file;

    /** 1-based line number. */
    std::size_t line = 0;

    /** Pass id ("checkpoint-coverage", ...). */
    std::string pass;

    /** Human-readable explanation, including the fix options. */
    std::string detail;
};

/** Pass metadata for --list-passes and the self-tests. */
struct PassInfo
{
    std::string id;
    std::string description;
};

/** @return every registered pass (stable order). */
const std::vector<PassInfo> &passes();

/**
 * Analyze a set of files as one program: build the merged declaration
 * index, run every pass, drop findings suppressed by NOLINT escapes
 * (pass ids are the rule names), and return the rest sorted by
 * (file, line).
 */
std::vector<Finding> analyzeFiles(const std::vector<SourceFile> &files);

/**
 * Recursively analyze src/ under a repo root: *.cc and *.hh, skipping
 * any path containing a `fixtures` directory.  tests/ and bench/ are
 * out of scope — the invariants the passes check (checkpoint
 * round-trips, lock discipline, dataset determinism) live in src/.
 */
std::vector<Finding> analyzeTree(const std::string &repo_root);

/** "src/foo.hh:12: [checkpoint-coverage] ..." */
std::string formatFinding(const Finding &finding);

} // namespace adrias::analyze

#endif // ADRIAS_TOOLS_ANALYZE_ANALYZE_HH
