#include "core/adrias.hh"

#include "common/logging.hh"

namespace adrias::core
{

AdriasStack::AdriasStack() : AdriasStack(BuildOptions{}) {}

AdriasStack::AdriasStack(BuildOptions options)
{
    if (options.scenarios == 0)
        fatal("AdriasStack: need at least one scenario");

    // 1. Design-time signatures for every catalogued application.
    scenario::collectAllSignatures(store, options.testbed, options.seed);

    // 2. Interference-aware trace collection: random placement across
    //    a spread of arrival intensities (paper §V-B1), one scenario
    //    per sweep item so independent seeds run in parallel.
    const SimTime spawn_maxes[] = {20, 30, 40, 50, 60};
    std::vector<scenario::SweepItem> sweep(options.scenarios);
    for (std::size_t i = 0; i < options.scenarios; ++i) {
        sweep[i].config.durationSec = options.scenarioDurationSec;
        sweep[i].config.spawnMinSec = 5;
        sweep[i].config.spawnMaxSec =
            spawn_maxes[i % std::size(spawn_maxes)];
        sweep[i].config.seed = options.seed + i;
        sweep[i].policySeed = options.seed + 1000 + i;
    }
    collected = scenario::runScenarioSweep(sweep, options.testbed);

    // 3. Datasets and model training ({120, Ŝ} stacked configuration).
    const auto state_samples =
        scenario::DatasetBuilder::systemState(collected);
    const auto be_samples = scenario::DatasetBuilder::performance(
        collected, store, WorkloadClass::BestEffort);
    const auto lc_samples = scenario::DatasetBuilder::performance(
        collected, store, WorkloadClass::LatencyCritical);

    stack = models::Predictor(options.model);
    stack.train(state_samples, be_samples, lc_samples);
}

} // namespace adrias::core
