/** @file Tests for the cluster-level Adrias orchestrator (§VII). */

#include <gtest/gtest.h>

#include "core/adrias.hh"
#include "core/schedulers.hh"
#include "testbed/topology.hh"

namespace adrias::core
{
namespace
{

using scenario::ClusterScenarioRunner;
using scenario::ScenarioConfig;

class ClusterOrchestratorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        AdriasStack::BuildOptions options;
        options.scenarios = 3;
        options.scenarioDurationSec = 1500;
        options.seed = 1700;
        options.model.epochs = 18;
        options.model.hidden = 16;
        options.model.headWidth = 24;
        stack = new AdriasStack(options);
    }

    static void
    TearDownTestSuite()
    {
        delete stack;
    }

    static ScenarioConfig
    evalConfig(std::uint64_t seed)
    {
        ScenarioConfig config;
        config.durationSec = 1200;
        config.spawnMinSec = 3;
        config.spawnMaxSec = 12;
        config.seed = seed;
        return config;
    }

    static AdriasStack *stack;
};

AdriasStack *ClusterOrchestratorTest::stack = nullptr;

TEST_F(ClusterOrchestratorTest, RequiresTrainedPredictorAndSaneBeta)
{
    models::Predictor untrained;
    scenario::SignatureStore store;
    EXPECT_THROW(
        AdriasClusterOrchestrator(untrained, store, AdriasConfig{}),
        std::runtime_error);

    AdriasConfig bad;
    bad.beta = -1.0;
    EXPECT_THROW(AdriasClusterOrchestrator(stack->predictor(),
                                           stack->signatures(), bad),
                 std::runtime_error);
}

TEST_F(ClusterOrchestratorTest, NameEncodesBeta)
{
    AdriasConfig config;
    config.beta = 0.8;
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), config);
    EXPECT_EQ(orchestrator.name(), "adrias-cluster-b0.8");
}

TEST_F(ClusterOrchestratorTest, UnknownAppBootstrapsOnLeastLoaded)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 5}, {&w1, 2}};
    workloads::WorkloadSpec novel = workloads::sparkBenchmark("sort");
    novel.name = "never-seen";
    const auto placement =
        orchestrator.place(novel, nodes, 0);
    EXPECT_EQ(placement.node, 1u);
    EXPECT_EQ(placement.mode, MemoryMode::Remote);
}

TEST_F(ClusterOrchestratorTest, ColdClusterFallsBackToLeastLoadedLocal)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 4}, {&w1, 1}};
    const auto placement = orchestrator.place(
        workloads::sparkBenchmark("sort"), nodes, 0);
    EXPECT_EQ(placement.node, 1u);
    EXPECT_EQ(placement.mode, MemoryMode::Local);
}

TEST_F(ClusterOrchestratorTest, PrefersQuietNodeForBestEffort)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});

    // Node 0: heavily congested telemetry; node 1: idle telemetry.
    testbed::Testbed busy_bed, idle_bed;
    busy_bed.setNoise(0.0);
    idle_bed.setNoise(0.0);
    telemetry::Watcher busy(200), idle(200);
    std::vector<testbed::LoadDescriptor> heavy_loads;
    for (int i = 0; i < 12; ++i)
        heavy_loads.push_back(
            workloads::ibenchSpec(workloads::IBenchKind::MemBw)
                .toLoad(static_cast<DeploymentId>(i),
                        MemoryMode::Remote));
    for (int t = 0; t < 150; ++t) {
        busy.record(busy_bed.tick(heavy_loads).counters);
        idle.record(idle_bed.tick({}).counters);
    }

    std::vector<scenario::NodeView> nodes{{&busy, 12}, {&idle, 12}};
    const auto placement = orchestrator.place(
        workloads::sparkBenchmark("lr"), nodes, 200);
    EXPECT_EQ(placement.node, 1u);
}

TEST_F(ClusterOrchestratorTest, EndToEndComparableToLeastLoaded)
{
    // The cluster orchestrator must not lose to the load-balancing
    // baseline on median BE performance while actually using remote
    // memory.
    AdriasConfig config;
    config.beta = 0.8;
    config.defaultQosP99Ms = 5.0;
    AdriasClusterOrchestrator adrias(stack->predictor(),
                                     stack->signatures(), config);
    scenario::LeastLoadedLocalPolicy baseline;

    auto be_median_and_offloads =
        [&](scenario::ClusterPolicy &policy) {
            ClusterScenarioRunner runner(3, evalConfig(1801));
            const auto result = runner.run(policy);
            std::vector<double> times;
            std::size_t offloads = 0;
            for (const auto &entry : result.allRecords()) {
                if (entry.record->cls != WorkloadClass::BestEffort)
                    continue;
                times.push_back(entry.record->execTimeSec);
                offloads += entry.record->mode == MemoryMode::Remote;
            }
            return std::pair<double, std::size_t>(
                stats::quantile(times, 0.5), offloads);
        };

    const auto [adrias_median, adrias_offloads] =
        be_median_and_offloads(adrias);
    const auto [baseline_median, baseline_offloads] =
        be_median_and_offloads(baseline);
    (void)baseline_offloads;
    EXPECT_LT(adrias_median, baseline_median * 1.25);
    EXPECT_GT(adrias_offloads, 0u);
}

// ---------------------------------------------------------------------
// Rack-aware placement (placeRack) across 1×1, 2×2, 4×4 and degenerate
// topologies.
// ---------------------------------------------------------------------

/** A rack view over `topo` with every server fully available and every
 *  link healthy; tests then poke individual entries. */
scenario::RackView
fullView(const testbed::Topology &topo)
{
    scenario::RackView view;
    view.topology = &topo;
    view.servers.resize(topo.serverCount());
    for (std::size_t s = 0; s < topo.serverCount(); ++s) {
        view.servers[s].capacityGb = topo.server(s).capacityGb;
        view.servers[s].availableGb = topo.server(s).capacityGb;
    }
    view.links.resize(topo.linkCount());
    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        view.links[l].node = topo.link(l).node;
        view.links[l].server = topo.link(l).server;
    }
    return view;
}

/** An app the signature store has never seen: the orchestrator's
 *  bootstrap path deterministically prefers Remote on the least-loaded
 *  node, giving placeRack a Remote decision to route. */
workloads::WorkloadSpec
novelSpec(double footprint_gb = 4.0)
{
    workloads::WorkloadSpec spec = workloads::sparkBenchmark("sort");
    spec.name = "never-seen-rack";
    spec.memoryFootprintGb = footprint_gb;
    return spec;
}

TEST_F(ClusterOrchestratorTest, PlaceRackRoutesPaperPairSingleLink)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    const testbed::Topology topo = testbed::Topology::paperPair();
    telemetry::Watcher w0(16);
    std::vector<scenario::NodeView> nodes{{&w0, 0}};
    const auto placement = orchestrator.placeRack(
        novelSpec(), nodes, fullView(topo), 0);
    EXPECT_EQ(placement.node, 0u);
    EXPECT_EQ(placement.mode, MemoryMode::Remote);
    EXPECT_EQ(placement.server, 0u);
    EXPECT_EQ(placement.link, 0u);
}

TEST_F(ClusterOrchestratorTest, PlaceRackPrefersRoomiestServer)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    const testbed::Topology topo = testbed::Topology::symmetric(
        2, 2, testbed::kCxlProfile, 128.0);
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 1}, {&w1, 5}};

    scenario::RackView view = fullView(topo);
    view.servers[0].availableGb = 10.0;
    view.servers[1].availableGb = 90.0;
    const auto placement =
        orchestrator.placeRack(novelSpec(), nodes, view, 0);
    EXPECT_EQ(placement.node, 0u); // least loaded
    EXPECT_EQ(placement.mode, MemoryMode::Remote);
    EXPECT_EQ(placement.server, 1u);
    EXPECT_EQ(placement.link,
              static_cast<std::size_t>(topo.linkBetween(0, 1)));
}

TEST_F(ClusterOrchestratorTest, PlaceRackRetriesSurvivingNodesInLoadOrder)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    const testbed::Topology topo = testbed::Topology::symmetric(
        3, 2, testbed::kCxlProfile, 128.0);
    telemetry::Watcher w0(16), w1(16), w2(16);
    // Node 0 is predicted-best (least loaded) but loses both links;
    // node 2 is the least-loaded survivor and must win over node 1.
    std::vector<scenario::NodeView> nodes{{&w0, 0}, {&w1, 6}, {&w2, 2}};

    scenario::RackView view = fullView(topo);
    for (std::size_t l : topo.linksFrom(0))
        view.links[l].bwScale = 0.01;
    const auto placement =
        orchestrator.placeRack(novelSpec(), nodes, view, 0);
    EXPECT_EQ(placement.mode, MemoryMode::Remote);
    EXPECT_EQ(placement.node, 2u);
}

TEST_F(ClusterOrchestratorTest, PlaceRackDegradesToLocalWhenRackExhausted)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    const testbed::Topology topo = testbed::Topology::symmetric(
        2, 2, testbed::kCxlProfile, 128.0);
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 1}, {&w1, 3}};

    // Every server drained below the footprint: no node has a route.
    scenario::RackView view = fullView(topo);
    view.servers[0].availableGb = 0.5;
    view.servers[1].availableGb = 0.5;
    const auto placement =
        orchestrator.placeRack(novelSpec(4.0), nodes, view, 0);
    EXPECT_EQ(placement.mode, MemoryMode::Local);
    EXPECT_EQ(placement.node, 0u); // keeps the predicted-best node
}

TEST_F(ClusterOrchestratorTest, PlaceRackAvoidsDrainedServerOn4x4)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    const testbed::Topology topo = testbed::Topology::asymmetric4x4();
    telemetry::Watcher w0(16), w1(16), w2(16), w3(16);
    // Node 0 reaches all four servers, including the drained s3.
    std::vector<scenario::NodeView> nodes{
        {&w0, 0}, {&w1, 4}, {&w2, 4}, {&w3, 4}};
    const auto placement = orchestrator.placeRack(
        novelSpec(), nodes, fullView(topo), 0);
    EXPECT_EQ(placement.node, 0u);
    EXPECT_EQ(placement.mode, MemoryMode::Remote);
    EXPECT_NE(placement.server, 3u); // zero-capacity server never lends
    EXPECT_EQ(placement.server, 0u); // s0 has the most available room
}

TEST_F(ClusterOrchestratorTest, PlaceRackLocalDecisionSkipsRouting)
{
    // A known app against cold telemetry falls back to least-loaded
    // *local*; placeRack must pass that decision through untouched.
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    const testbed::Topology topo = testbed::Topology::symmetric(
        2, 2, testbed::kCxlProfile, 128.0);
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 4}, {&w1, 1}};
    const auto placement = orchestrator.placeRack(
        workloads::sparkBenchmark("sort"), nodes, fullView(topo), 0);
    EXPECT_EQ(placement.mode, MemoryMode::Local);
    EXPECT_EQ(placement.node, 1u);
}

TEST_F(ClusterOrchestratorTest, DefaultPolicyRoutingDemotesWithoutRetry)
{
    // The base-class placeRack (LeastLoadedRemotePolicy) routes on the
    // chosen node only: when that node's links die it demotes to Local
    // instead of retrying other nodes — the orchestrator's retry is a
    // genuine improvement over the baseline.
    LeastLoadedRemotePolicy baseline;
    const testbed::Topology topo = testbed::Topology::symmetric(
        2, 2, testbed::kCxlProfile, 128.0);
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 0}, {&w1, 5}};

    scenario::RackView view = fullView(topo);
    for (std::size_t l : topo.linksFrom(0))
        view.links[l].bwScale = 0.01;
    const auto placement = baseline.placeRack(
        workloads::sparkBenchmark("sort"), nodes, view, 0);
    EXPECT_EQ(placement.mode, MemoryMode::Local);
    EXPECT_EQ(placement.node, 0u);
}

} // namespace
} // namespace adrias::core
