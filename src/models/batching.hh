/**
 * @file
 * Minibatch assembly helpers shared by the model trainers and the
 * decision-serving path: stacking equal-length (1 x F) sequences into
 * time-major (B x F) batches, plus the BatchAssembler that groups
 * placement requests into inference batches under a size-or-deadline
 * flush rule.
 */

#ifndef ADRIAS_MODELS_BATCHING_HH
#define ADRIAS_MODELS_BATCHING_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "ml/matrix.hh"

namespace adrias::models
{

/**
 * Stack per-sample sequences into a batched time-major sequence.
 *
 * @param sequences one entry per batch row; all must share length and
 *        width, each step (1 x F).
 * @return sequence of (B x F) matrices.
 */
std::vector<ml::Matrix>
stackSequences(const std::vector<const std::vector<ml::Matrix> *> &sequences);

/** Stack (1 x F) row vectors into a (B x F) matrix. */
ml::Matrix stackRows(const std::vector<const ml::Matrix *> &rows);

/** BatchAssembler tuning. */
struct BatchAssemblerConfig
{
    /** Flush as soon as this many items are pending (the fused b32
     *  fast-path width). */
    std::size_t batchSize = 32;
};

/**
 * Groups individually arriving work items (request indices) into
 * batches under a size-or-deadline flush rule:
 *
 *  - a batch flushes as soon as batchSize items are pending, or
 *  - as soon as waiting one more tick would cross the earliest
 *    pending item's deadline (deadlines are exclusive, matching the
 *    guard's hard-budget semantics: an item decided exactly at its
 *    deadline tick has already missed it).
 *
 * Items leave in arrival order, so for a fixed push sequence the batch
 * composition is a pure function of (arrival order, deadlines, config)
 * — never of thread scheduling.  Time is logical SimTime supplied by
 * the caller; the assembler never reads a clock.
 */
class BatchAssembler
{
  public:
    explicit BatchAssembler(BatchAssemblerConfig config = {});

    /**
     * Enqueue one item.
     *
     * @param item opaque index of the request (caller-owned storage).
     * @param deadline absolute tick by which the item must have been
     *        decided (exclusive; see class comment).
     */
    void push(std::size_t item, SimTime deadline);

    /**
     * @return true when take() should run now: a full batch is
     *         pending, or deferring past `now` would miss the earliest
     *         deadline (now + 1 >= earliest).
     */
    bool flushDue(SimTime now) const;

    /** Pop up to batchSize items, arrival order. @pre pending() > 0. */
    std::vector<std::size_t> take();

    /** Items currently queued. */
    std::size_t pending() const { return queue.size(); }

    /** Earliest deadline among pending items. @pre pending() > 0. */
    SimTime earliestDeadline() const;

    const BatchAssemblerConfig &config() const { return knobs; }

  private:
    struct Pending
    {
        std::size_t item = 0;
        SimTime deadline = 0;
    };

    BatchAssemblerConfig knobs;
    std::deque<Pending> queue;

    /** Min over pending deadlines, maintained incrementally (arrival
     *  order does not imply deadline order). */
    SimTime earliest = 0;

    void recomputeEarliest();
};

} // namespace adrias::models

#endif // ADRIAS_MODELS_BATCHING_HH
