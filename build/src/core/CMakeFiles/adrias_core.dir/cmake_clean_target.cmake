file(REMOVE_RECURSE
  "libadrias_core.a"
)
