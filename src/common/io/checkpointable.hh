/**
 * @file
 * The Checkpointable interface: anything that participates in a
 * crash-consistent snapshot (scenario engine, placement policies,
 * predictor guard, ...) implements it and gets serialized as one
 * tagged section of a CheckpointManager snapshot.
 *
 * Contracts:
 *  - saveState() must capture *all* state that influences future
 *    behaviour — including RNG stream positions — so a restore is
 *    bitwise-faithful.
 *  - restoreState() reads exactly what saveState() wrote and reports
 *    version/shape skew as a typed error (never a partial silent
 *    restore: the CheckpointManager then falls back to an older
 *    snapshot).
 *  - checkpointTag() is stable across versions; the snapshot format
 *    matches sections by tag, in attach order.
 */

#ifndef ADRIAS_COMMON_IO_CHECKPOINTABLE_HH
#define ADRIAS_COMMON_IO_CHECKPOINTABLE_HH

#include <string>

#include "common/error.hh"
#include "common/io/binary.hh"

namespace adrias::io
{

/** One restorable section of a checkpoint snapshot. */
class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;

    /** Stable section tag ("scenario-engine", "random-placement"...). */
    virtual std::string checkpointTag() const = 0;

    /** Serialize the complete behavioural state. */
    virtual void saveState(BinaryWriter &out) const = 0;

    /** Restore from a payload produced by saveState(). */
    [[nodiscard]] virtual Result<void>
    restoreState(BinaryReader &in) = 0;
};

} // namespace adrias::io

#endif // ADRIAS_COMMON_IO_CHECKPOINTABLE_HH
