/** @file Unit tests for common/types. */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace adrias
{
namespace
{

TEST(Types, MemoryModeToString)
{
    EXPECT_EQ(toString(MemoryMode::Local), "local");
    EXPECT_EQ(toString(MemoryMode::Remote), "remote");
}

TEST(Types, WorkloadClassToString)
{
    EXPECT_EQ(toString(WorkloadClass::BestEffort), "best-effort");
    EXPECT_EQ(toString(WorkloadClass::LatencyCritical), "latency-critical");
    EXPECT_EQ(toString(WorkloadClass::Interference), "interference");
}

TEST(Types, MemoryModeRoundTrip)
{
    EXPECT_EQ(memoryModeFromString(toString(MemoryMode::Local)),
              MemoryMode::Local);
    EXPECT_EQ(memoryModeFromString(toString(MemoryMode::Remote)),
              MemoryMode::Remote);
}

TEST(Types, MemoryModeFromStringRejectsJunk)
{
    EXPECT_THROW(memoryModeFromString("LOCAL"), std::invalid_argument);
    EXPECT_THROW(memoryModeFromString(""), std::invalid_argument);
    EXPECT_THROW(memoryModeFromString("near"), std::invalid_argument);
}

} // namespace
} // namespace adrias
