/** @file Gradient-checked tests for Dense, activations, BatchNorm, Dropout. */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "ml/activation.hh"
#include "ml/batchnorm.hh"
#include "ml/dense.hh"
#include "ml/dropout.hh"
#include "ml/loss.hh"
#include "ml/sequential.hh"
#include "gradient_check.hh"

namespace adrias::ml
{
namespace
{

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (double &x : m.raw())
        x = rng.gaussian();
    return m;
}

TEST(Dense, ForwardShapeAndBias)
{
    Rng rng(1);
    Dense layer(3, 2, rng);
    const Matrix out = layer.forward(Matrix(4, 3));
    EXPECT_EQ(out.rows(), 4u);
    EXPECT_EQ(out.cols(), 2u);
    // zero input -> pure bias, which starts at zero
    EXPECT_DOUBLE_EQ(out.maxAbs(), 0.0);
}

TEST(Dense, InputGradientMatchesNumerical)
{
    Rng rng(2);
    Dense layer(4, 3, rng);
    Matrix input = randomMatrix(5, 4, rng);
    Matrix target = randomMatrix(5, 3, rng);

    Matrix grad_pred;
    mseLoss(layer.forward(input), target, &grad_pred);
    const Matrix grad_input = layer.backward(grad_pred);

    const double err = testutil::maxGradientError(
        input, grad_input,
        [&] { return mseLoss(layer.forward(input), target); });
    EXPECT_LT(err, 1e-5);
}

TEST(Dense, ParameterGradientsMatchNumerical)
{
    Rng rng(3);
    Dense layer(3, 2, rng);
    Matrix input = randomMatrix(4, 3, rng);
    Matrix target = randomMatrix(4, 2, rng);

    for (Param *p : layer.params())
        p->zeroGrad();
    Matrix grad_pred;
    mseLoss(layer.forward(input), target, &grad_pred);
    layer.backward(grad_pred);

    for (Param *p : layer.params()) {
        const double err = testutil::maxGradientError(
            p->value, p->grad,
            [&] { return mseLoss(layer.forward(input), target); });
        EXPECT_LT(err, 1e-5) << "param " << p->name;
    }
}

TEST(ReLU, ForwardClampsNegatives)
{
    ReLU relu;
    Matrix in(1, 4, {-2.0, -0.5, 0.0, 3.0});
    const Matrix out = relu.forward(in);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(out.at(0, 3), 3.0);
}

TEST(ReLU, BackwardMasksNegatives)
{
    ReLU relu;
    Matrix in(1, 3, {-1.0, 2.0, 0.0});
    relu.forward(in);
    Matrix grad(1, 3, {5.0, 5.0, 5.0});
    const Matrix gin = relu.backward(grad);
    EXPECT_DOUBLE_EQ(gin.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(gin.at(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(gin.at(0, 2), 0.0);
}

TEST(TanhLayer, GradientMatchesNumerical)
{
    Rng rng(5);
    Tanh layer;
    Matrix input = randomMatrix(3, 4, rng);
    Matrix target = randomMatrix(3, 4, rng);

    Matrix grad_pred;
    mseLoss(layer.forward(input), target, &grad_pred);
    const Matrix grad_input = layer.backward(grad_pred);
    const double err = testutil::maxGradientError(
        input, grad_input,
        [&] { return mseLoss(layer.forward(input), target); });
    EXPECT_LT(err, 1e-5);
}

TEST(SigmoidLayer, GradientMatchesNumerical)
{
    Rng rng(6);
    Sigmoid layer;
    Matrix input = randomMatrix(3, 4, rng);
    Matrix target = randomMatrix(3, 4, rng);

    Matrix grad_pred;
    mseLoss(layer.forward(input), target, &grad_pred);
    const Matrix grad_input = layer.backward(grad_pred);
    const double err = testutil::maxGradientError(
        input, grad_input,
        [&] { return mseLoss(layer.forward(input), target); });
    EXPECT_LT(err, 1e-5);
}

TEST(SigmoidScalar, StableAtExtremes)
{
    EXPECT_NEAR(sigmoidScalar(0.0), 0.5, 1e-12);
    EXPECT_NEAR(sigmoidScalar(700.0), 1.0, 1e-12);
    EXPECT_NEAR(sigmoidScalar(-700.0), 0.0, 1e-12);
}

TEST(BatchNorm, TrainOutputIsStandardized)
{
    Rng rng(7);
    BatchNorm1d bn(3);
    Matrix input = randomMatrix(64, 3, rng);
    const Matrix out = bn.forward(input);
    for (std::size_t c = 0; c < 3; ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < out.rows(); ++r)
            mean += out.at(r, c);
        mean /= static_cast<double>(out.rows());
        double var = 0.0;
        for (std::size_t r = 0; r < out.rows(); ++r) {
            const double d = out.at(r, c) - mean;
            var += d * d;
        }
        var /= static_cast<double>(out.rows());
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(BatchNorm, RunningStatsConverge)
{
    Rng rng(8);
    BatchNorm1d bn(1, 0.5);
    for (int i = 0; i < 200; ++i) {
        Matrix batch(32, 1);
        for (double &x : batch.raw())
            x = rng.gaussian(4.0, 2.0);
        bn.forward(batch);
    }
    EXPECT_NEAR(bn.runningMean().at(0, 0), 4.0, 0.5);
    EXPECT_NEAR(bn.runningVar().at(0, 0), 4.0, 1.0);
}

TEST(BatchNorm, EvalUsesRunningStats)
{
    BatchNorm1d bn(1);
    bn.setRunningStats(Matrix(1, 1, {10.0}), Matrix(1, 1, {4.0}));
    bn.setTraining(false);
    Matrix in(1, 1, {12.0});
    const Matrix out = bn.forward(in);
    EXPECT_NEAR(out.at(0, 0), 1.0, 1e-2); // (12-10)/sqrt(4+eps)
}

TEST(BatchNorm, TrainGradientMatchesNumerical)
{
    Rng rng(9);
    BatchNorm1d bn(3);
    Matrix input = randomMatrix(8, 3, rng);
    Matrix target = randomMatrix(8, 3, rng);

    for (Param *p : bn.params())
        p->zeroGrad();
    Matrix grad_pred;
    mseLoss(bn.forward(input), target, &grad_pred);
    const Matrix grad_input = bn.backward(grad_pred);

    const double err = testutil::maxGradientError(
        input, grad_input,
        [&] { return mseLoss(bn.forward(input), target); });
    EXPECT_LT(err, 1e-4);

    for (Param *p : bn.params()) {
        // Re-run to refresh caches after perturbations in the check
        // above; gradient accumulators were filled once pre-check.
        const double perr = testutil::maxGradientError(
            p->value, p->grad,
            [&] { return mseLoss(bn.forward(input), target); });
        EXPECT_LT(perr, 1e-4) << "param " << p->name;
    }
}

TEST(BatchNorm, RejectsBadMomentum)
{
    EXPECT_THROW(BatchNorm1d(2, 0.0), std::runtime_error);
    EXPECT_THROW(BatchNorm1d(2, 1.5), std::runtime_error);
}

TEST(Dropout, EvalIsIdentity)
{
    Rng rng(10);
    Dropout drop(0.5, rng);
    drop.setTraining(false);
    Matrix in(2, 2, {1, 2, 3, 4});
    const Matrix out = drop.forward(in);
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_DOUBLE_EQ(out.raw()[i], in.raw()[i]);
}

TEST(Dropout, TrainZeroesApproximatelyPFraction)
{
    Rng rng(11);
    Dropout drop(0.3, rng);
    Matrix in = Matrix::constant(100, 100, 1.0);
    const Matrix out = drop.forward(in);
    std::size_t zeros = 0;
    for (double v : out.raw())
        zeros += (v == 0.0);
    EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(Dropout, SurvivorsAreScaled)
{
    Rng rng(12);
    Dropout drop(0.5, rng);
    Matrix in = Matrix::constant(10, 10, 1.0);
    const Matrix out = drop.forward(in);
    for (double v : out.raw())
        EXPECT_TRUE(v == 0.0 || std::fabs(v - 2.0) < 1e-12);
}

TEST(Dropout, BackwardUsesSameMask)
{
    Rng rng(13);
    Dropout drop(0.5, rng);
    Matrix in = Matrix::constant(4, 4, 1.0);
    const Matrix out = drop.forward(in);
    const Matrix gin = drop.backward(Matrix::constant(4, 4, 1.0));
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_DOUBLE_EQ(gin.raw()[i], out.raw()[i]);
}

TEST(Dropout, RejectsInvalidProbability)
{
    Rng rng(14);
    EXPECT_THROW(Dropout(-0.1, rng), std::runtime_error);
    EXPECT_THROW(Dropout(1.0, rng), std::runtime_error);
}

TEST(Sequential, ComposesAndPropagatesTrainingMode)
{
    Rng rng(15);
    auto head = makeNonLinearHead(6, 8, 1, 0.1, rng);
    EXPECT_GT(head->layerCount(), 9u);
    head->setTraining(false);
    const Matrix out = head->forward(randomMatrix(3, 6, rng));
    EXPECT_EQ(out.rows(), 3u);
    EXPECT_EQ(out.cols(), 1u);
}

TEST(Sequential, GradientThroughHeadMatchesNumerical)
{
    Rng rng(16);
    // No dropout (stochastic) for the check; eval-mode batchnorm keeps
    // the loss deterministic w.r.t. individual inputs.
    auto head = makeNonLinearHead(4, 6, 2, 0.0, rng);
    head->setTraining(false);

    Matrix input = randomMatrix(5, 4, rng);
    Matrix target = randomMatrix(5, 2, rng);

    Matrix grad_pred;
    mseLoss(head->forward(input), target, &grad_pred);
    const Matrix grad_input = head->backward(grad_pred);
    const double err = testutil::maxGradientError(
        input, grad_input,
        [&] { return mseLoss(head->forward(input), target); });
    EXPECT_LT(err, 1e-4);
}

} // namespace
} // namespace adrias::ml
