/**
 * @file
 * Fig. 17 — Orchestration evaluation for latency-critical
 * applications: number of QoS violations and number of offloads for
 * Redis and Memcached across five QoS levels, under Random,
 * Round-Robin, All-Local and Adrias.
 *
 * Paper: Adrias eliminates most violations at loose QoS levels (0-2)
 * while offloading ~1/3 of servers; at strict levels it tracks
 * All-Local with ~5% (Redis) / ~20% (Memcached) extra violations.
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

/** QoS levels derived from the Fig. 10 distributions (p99 quantiles
 *  of random placements): level 0 loosest .. level 4 strictest. */
std::vector<double>
qosLevels(const std::vector<double> &p99s)
{
    return {
        stats::quantile(p99s, 0.95), stats::quantile(p99s, 0.85),
        stats::quantile(p99s, 0.70), stats::quantile(p99s, 0.55),
        stats::quantile(p99s, 0.40),
    };
}

struct LcOutcome
{
    std::size_t violations = 0;
    std::size_t offloads = 0;
    std::size_t total = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromArgs(argc, argv);
    bench::banner("Fig. 17 — LC orchestration: QoS violations vs "
                  "offloads",
                  "Adrias ~ All-Local violations while offloading ~1/3 "
                  "at loose QoS; near-All-Local at strict QoS");

    core::AdriasStack stack(bench::stackOptions());
    const auto repeats = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) / 2 + 1);

    // Calibrate QoS levels per server from random-placement runs
    // (independent repeats, one policy seed each, swept in parallel).
    std::map<std::string, std::vector<double>> p99_pool;
    {
        std::vector<scenario::SweepItem> sweep(repeats);
        for (std::size_t i = 0; i < repeats; ++i) {
            sweep[i].config = bench::evalScenario(4000 + i * 3, 25);
            sweep[i].config.lcFraction = 0.30;
            sweep[i].policySeed = 5 + i;
        }
        for (const auto &result : scenario::runScenarioSweep(sweep))
            for (const auto &record : result.records)
                if (record.cls == WorkloadClass::LatencyCritical)
                    p99_pool[record.name].push_back(record.p99Ms);
    }

    for (const auto &spec : workloads::latencyCriticalBenchmarks()) {
        const auto levels = qosLevels(p99_pool[spec.name]);
        std::cout << "\n--- " << spec.name << " (QoS levels, p99 ms: ";
        for (double q : levels)
            std::cout << formatDouble(q, 2) << " ";
        std::cout << ") ---\n";

        TextTable table({"policy", "QoS0 viol/off", "QoS1 viol/off",
                         "QoS2 viol/off", "QoS3 viol/off",
                         "QoS4 viol/off"});

        auto eval_policy = [&](scenario::PlacementPolicy &policy,
                               bool adrias_qos, double qos_value) {
            LcOutcome outcome;
            for (std::size_t i = 0; i < repeats; ++i) {
                scenario::ScenarioConfig config =
                    bench::evalScenario(4000 + i * 3, 25);
                config.lcFraction = 0.30;
                scenario::ScenarioRunner runner(config);
                const auto result = runner.run(policy);
                for (const auto &record : result.records) {
                    if (record.cls != WorkloadClass::LatencyCritical ||
                        record.name != spec.name)
                        continue;
                    ++outcome.total;
                    outcome.violations += record.p99Ms > qos_value;
                    outcome.offloads +=
                        record.mode == MemoryMode::Remote;
                }
            }
            (void)adrias_qos;
            return outcome;
        };

        auto row_for = [&](const std::string &label, auto make_policy) {
            std::vector<std::string> cells{label};
            for (double qos : levels) {
                auto policy = make_policy(qos);
                const LcOutcome outcome = eval_policy(*policy, true, qos);
                cells.push_back(std::to_string(outcome.violations) + "/" +
                                std::to_string(outcome.offloads));
            }
            table.addRow(cells);
        };

        row_for("random", [&](double) {
            return std::make_unique<scenario::RandomPlacement>(5);
        });
        row_for("round-robin", [&](double) {
            return std::make_unique<core::RoundRobinScheduler>();
        });
        row_for("all-local", [&](double) {
            return std::make_unique<core::AllLocalScheduler>();
        });
        row_for("adrias", [&](double qos) {
            core::AdriasConfig config;
            config.beta = 0.8;
            config.defaultQosP99Ms = qos;
            return std::make_unique<core::AdriasOrchestrator>(
                stack.predictor(), stack.signatures(), config);
        });

        std::cout << table.toString();
    }

    std::cout << "\nShape check: Adrias rows show near-All-Local "
                 "violation counts with substantially more offloads at "
                 "loose QoS levels.\n";

    const std::string obs_report = obs::finishRun();
    if (!obs_report.empty())
        std::cout << "\nObservability summary:\n" << obs_report;
    return 0;
}
