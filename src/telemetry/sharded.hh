/**
 * @file
 * Sharded Watcher feeds for the decision-serving path (DESIGN.md §15):
 * rack-scale deployments split telemetry across several Watchers —
 * one per feed/shard, each with its own sampling producer — and the
 * DecisionService snapshots all of them at an epoch boundary so every
 * decision in a batch sees one consistent system view.
 */

#ifndef ADRIAS_TELEMETRY_SHARDED_HH
#define ADRIAS_TELEMETRY_SHARDED_HH

#include <memory>
#include <vector>

#include "telemetry/watcher.hh"

namespace adrias::telemetry
{

/**
 * Fixed-size set of independent Watchers, one per telemetry shard.
 *
 * Each shard is a full Watcher (thread-safe, self-repairing), so one
 * sampling thread per shard can record concurrently while a consumer
 * snapshots binned windows.  The set itself is immutable after
 * construction — no shard is ever added or removed — which is what
 * makes the lock-free ingest queues (one SPSC queue per shard) safe to
 * wire up once at service construction.
 */
class ShardedWatcherSet
{
  public:
    /**
     * @param shards number of feeds (> 0).
     * @param capacity_seconds per-shard history retention.
     */
    explicit ShardedWatcherSet(std::size_t shards,
                               std::size_t capacity_seconds = 600);

    /** Number of shards, fixed at construction. */
    std::size_t shardCount() const { return watchers.size(); }

    /** One shard's Watcher. @pre shard < shardCount(). */
    Watcher &shard(std::size_t shard_index);
    const Watcher &shard(std::size_t shard_index) const;

    /**
     * Deterministic request routing: which shard serves a deployment.
     * A pure function of (id, shard count) so a fixed arrival trace
     * always produces the same per-shard queues.
     */
    std::size_t
    shardFor(DeploymentId id) const
    {
        return static_cast<std::size_t>(id) % watchers.size();
    }

    /**
     * Epoch snapshot input: every shard's binned history window, in
     * shard order.  A shard with no samples yet (cold start) yields an
     * empty sequence — the serving layer maps those requests to the
     * cold-start placement instead of predicting from padding.
     */
    std::vector<std::vector<ml::Matrix>>
    binnedWindows(std::size_t window_seconds, std::size_t bins) const;

    /** Health tallies summed across shards. */
    WatcherHealth aggregateHealth() const;

  private:
    /** Watchers own a Mutex (immovable), hence the indirection. */
    std::vector<std::unique_ptr<Watcher>> watchers;
};

} // namespace adrias::telemetry

#endif // ADRIAS_TELEMETRY_SHARDED_HH
