#include "fault/circuit_breaker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adrias::fault
{

std::string
toString(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    panic("unknown BreakerState");
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : knobs(config), backoffSec(config.backoffStartSec)
{
    if (knobs.failureThreshold == 0)
        fatal("CircuitBreaker: failureThreshold must be positive");
    if (knobs.backoffStartSec <= 0 || knobs.backoffMaxSec <
                                          knobs.backoffStartSec)
        fatal("CircuitBreaker: invalid backoff range");
    if (knobs.backoffMultiplier < 1.0)
        fatal("CircuitBreaker: backoff multiplier must be >= 1");
    if (knobs.halfOpenSuccesses == 0)
        fatal("CircuitBreaker: halfOpenSuccesses must be positive");
}

void
CircuitBreaker::trip(SimTime now)
{
    current = BreakerState::Open;
    openedAt = now;
    consecutiveFailures = 0;
    probeSuccesses = 0;
    ++tallies.trips;
}

bool
CircuitBreaker::allowRequest(SimTime now)
{
    switch (current) {
      case BreakerState::Closed:
      case BreakerState::HalfOpen:
        return true;
      case BreakerState::Open:
        if (now - openedAt >= backoffSec) {
            current = BreakerState::HalfOpen;
            probeSuccesses = 0;
            return true;
        }
        ++tallies.rejected;
        return false;
    }
    panic("unknown BreakerState");
}

void
CircuitBreaker::recordSuccess(SimTime now)
{
    (void)now;
    ++tallies.successes;
    switch (current) {
      case BreakerState::Closed:
        consecutiveFailures = 0;
        break;
      case BreakerState::HalfOpen:
        if (++probeSuccesses >= knobs.halfOpenSuccesses) {
            current = BreakerState::Closed;
            consecutiveFailures = 0;
            backoffSec = knobs.backoffStartSec;
            ++tallies.recoveries;
        }
        break;
      case BreakerState::Open:
        // A success while Open can only come from a caller ignoring
        // allowRequest(); tolerate it without state change.
        break;
    }
}

void
CircuitBreaker::recordFailure(SimTime now)
{
    ++tallies.failures;
    switch (current) {
      case BreakerState::Closed:
        if (++consecutiveFailures >= knobs.failureThreshold)
            trip(now);
        break;
      case BreakerState::HalfOpen:
        // Failed probe: reopen with an exponentially longer backoff.
        backoffSec = std::min(
            knobs.backoffMaxSec,
            static_cast<SimTime>(static_cast<double>(backoffSec) *
                                 knobs.backoffMultiplier));
        trip(now);
        break;
      case BreakerState::Open:
        break;
    }
}

void
CircuitBreaker::reset()
{
    current = BreakerState::Closed;
    tallies = BreakerStats{};
    consecutiveFailures = 0;
    probeSuccesses = 0;
    openedAt = 0;
    backoffSec = knobs.backoffStartSec;
}

BreakerSnapshot
CircuitBreaker::exportState() const
{
    BreakerSnapshot snapshot;
    snapshot.state = current;
    snapshot.stats = tallies;
    snapshot.consecutiveFailures = consecutiveFailures;
    snapshot.probeSuccesses = probeSuccesses;
    snapshot.openedAt = openedAt;
    snapshot.backoffSec = backoffSec;
    return snapshot;
}

void
CircuitBreaker::restoreState(const BreakerSnapshot &snapshot)
{
    current = snapshot.state;
    tallies = snapshot.stats;
    consecutiveFailures = snapshot.consecutiveFailures;
    probeSuccesses = snapshot.probeSuccesses;
    openedAt = snapshot.openedAt;
    backoffSec = std::clamp(snapshot.backoffSec, knobs.backoffStartSec,
                            knobs.backoffMaxSec);
}

void
CircuitBreaker::saveState(io::BinaryWriter &out) const
{
    const BreakerSnapshot snapshot = exportState();
    out.writeU8(static_cast<std::uint8_t>(snapshot.state));
    out.writeU64(snapshot.stats.successes);
    out.writeU64(snapshot.stats.failures);
    out.writeU64(snapshot.stats.trips);
    out.writeU64(snapshot.stats.recoveries);
    out.writeU64(snapshot.stats.rejected);
    out.writeU64(snapshot.consecutiveFailures);
    out.writeU64(snapshot.probeSuccesses);
    out.writeI64(snapshot.openedAt);
    out.writeI64(snapshot.backoffSec);
}

Result<void>
CircuitBreaker::restoreState(io::BinaryReader &in)
{
    BreakerSnapshot snapshot;
    const std::uint8_t rawState = in.readU8();
    if (rawState > static_cast<std::uint8_t>(BreakerState::HalfOpen))
        return makeError(ErrorCode::BadNumber,
                         "CircuitBreaker: invalid breaker state in snapshot");
    snapshot.state = static_cast<BreakerState>(rawState);
    snapshot.stats.successes = in.readU64();
    snapshot.stats.failures = in.readU64();
    snapshot.stats.trips = in.readU64();
    snapshot.stats.recoveries = in.readU64();
    snapshot.stats.rejected = in.readU64();
    snapshot.consecutiveFailures = in.readU64();
    snapshot.probeSuccesses = in.readU64();
    snapshot.openedAt = in.readI64();
    snapshot.backoffSec = in.readI64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "CircuitBreaker: truncated breaker snapshot");
    restoreState(snapshot);
    return {};
}

} // namespace adrias::fault
