/**
 * @file
 * Minibatch assembly helpers shared by the model trainers: stacking
 * equal-length (1 x F) sequences into time-major (B x F) batches.
 */

#ifndef ADRIAS_MODELS_BATCHING_HH
#define ADRIAS_MODELS_BATCHING_HH

#include <vector>

#include "ml/matrix.hh"

namespace adrias::models
{

/**
 * Stack per-sample sequences into a batched time-major sequence.
 *
 * @param sequences one entry per batch row; all must share length and
 *        width, each step (1 x F).
 * @return sequence of (B x F) matrices.
 */
std::vector<ml::Matrix>
stackSequences(const std::vector<const std::vector<ml::Matrix> *> &sequences);

/** Stack (1 x F) row vectors into a (B x F) matrix. */
ml::Matrix stackRows(const std::vector<const ml::Matrix *> &rows);

} // namespace adrias::models

#endif // ADRIAS_MODELS_BATCHING_HH
