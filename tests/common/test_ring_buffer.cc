/** @file Unit tests for common/ring_buffer. */

#include <gtest/gtest.h>

#include <string>

#include "common/ring_buffer.hh"

namespace adrias
{
namespace
{

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.capacity(), 4u);
}

TEST(RingBuffer, RejectsZeroCapacity)
{
    EXPECT_THROW(RingBuffer<int>(0), std::runtime_error);
}

TEST(RingBuffer, PushUntilFull)
{
    RingBuffer<int> buf(3);
    buf.push(1);
    buf.push(2);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_FALSE(buf.full());
    buf.push(3);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.oldest(), 1);
    EXPECT_EQ(buf.newest(), 3);
}

TEST(RingBuffer, EvictsOldestWhenFull)
{
    RingBuffer<int> buf(3);
    for (int v = 1; v <= 5; ++v)
        buf.push(v);
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.at(0), 3);
    EXPECT_EQ(buf.at(1), 4);
    EXPECT_EQ(buf.at(2), 5);
}

TEST(RingBuffer, ChronologicalOrderAcrossManyWraps)
{
    RingBuffer<int> buf(7);
    for (int v = 0; v < 100; ++v)
        buf.push(v);
    for (std::size_t i = 0; i < buf.size(); ++i)
        EXPECT_EQ(buf.at(i), 93 + static_cast<int>(i));
}

TEST(RingBuffer, AtOutOfRangePanics)
{
    RingBuffer<int> buf(2);
    buf.push(1);
    EXPECT_THROW(buf.at(1), std::logic_error);
}

TEST(RingBuffer, ClearResetsButKeepsCapacity)
{
    RingBuffer<int> buf(3);
    buf.push(1);
    buf.push(2);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.capacity(), 3u);
    buf.push(9);
    EXPECT_EQ(buf.newest(), 9);
    EXPECT_EQ(buf.oldest(), 9);
}

TEST(RingBuffer, ToVectorMatchesChronology)
{
    RingBuffer<std::string> buf(3);
    buf.push("a");
    buf.push("b");
    buf.push("c");
    buf.push("d");
    const auto v = buf.toVector();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "b");
    EXPECT_EQ(v[1], "c");
    EXPECT_EQ(v[2], "d");
}

TEST(RingBuffer, AccessorsOnEmptyPanic)
{
    RingBuffer<int> buf(3);
    EXPECT_THROW(buf.newest(), std::logic_error);
    EXPECT_THROW(buf.oldest(), std::logic_error);
    EXPECT_THROW(buf.at(0), std::logic_error);
    EXPECT_TRUE(buf.toVector().empty());
}

TEST(RingBuffer, SingleElement)
{
    RingBuffer<int> buf(5);
    buf.push(42);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.newest(), 42);
    EXPECT_EQ(buf.oldest(), 42);
    EXPECT_EQ(buf.toVector(), std::vector<int>{42});
}

TEST(RingBuffer, WrapBoundaryExactlyAtCapacity)
{
    // The interesting off-by-one: capacity pushes (no eviction yet)
    // versus capacity + 1 (first eviction).
    RingBuffer<int> buf(4);
    for (int v = 1; v <= 4; ++v)
        buf.push(v);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.oldest(), 1);

    buf.push(5); // first wrap
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.oldest(), 2);
    EXPECT_EQ(buf.newest(), 5);
    EXPECT_EQ(buf.toVector(), (std::vector<int>{2, 3, 4, 5}));
}

TEST(RingBuffer, ToVectorAndAtAgreeAtExactlyCapacityPushes)
{
    // At exactly `capacity` pushes the head has wrapped back to slot 0
    // but nothing was evicted yet: every chronological index must map
    // straight through, by at() and by toVector() alike.
    RingBuffer<int> buf(5);
    for (int v = 10; v < 15; ++v)
        buf.push(v);
    ASSERT_TRUE(buf.full());
    ASSERT_EQ(buf.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(buf.at(i), 10 + static_cast<int>(i)) << "index " << i;
    EXPECT_EQ(buf.toVector(), (std::vector<int>{10, 11, 12, 13, 14}));
}

TEST(RingBuffer, ToVectorAndAtAgreeAtCapacityPlusOnePushes)
{
    // capacity + 1 pushes: the first eviction.  Chronological index 0
    // must now live at physical slot 1, and toVector() must replay
    // at() exactly.
    RingBuffer<int> buf(5);
    for (int v = 10; v < 16; ++v)
        buf.push(v);
    ASSERT_EQ(buf.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(buf.at(i), 11 + static_cast<int>(i)) << "index " << i;
    const auto v = buf.toVector();
    ASSERT_EQ(v.size(), buf.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(v[i], buf.at(i)) << "index " << i;
    EXPECT_EQ(v, (std::vector<int>{11, 12, 13, 14, 15}));
}

TEST(RingBuffer, AllEqualElementsSurviveWrap)
{
    RingBuffer<int> buf(3);
    for (int i = 0; i < 10; ++i)
        buf.push(7);
    EXPECT_TRUE(buf.full());
    for (std::size_t i = 0; i < buf.size(); ++i)
        EXPECT_EQ(buf.at(i), 7);
}

TEST(RingBuffer, ClearAfterWrapThenRefill)
{
    RingBuffer<int> buf(3);
    for (int v = 0; v < 7; ++v)
        buf.push(v);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    buf.push(100);
    buf.push(101);
    EXPECT_EQ(buf.toVector(), (std::vector<int>{100, 101}));
}

TEST(RingBuffer, CapacityOneAlwaysKeepsNewest)
{
    RingBuffer<int> buf(1);
    for (int v = 0; v < 10; ++v) {
        buf.push(v);
        EXPECT_EQ(buf.newest(), v);
        EXPECT_EQ(buf.oldest(), v);
        EXPECT_EQ(buf.size(), 1u);
    }
}

} // namespace
} // namespace adrias
