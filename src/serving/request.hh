/**
 * @file
 * Wire types of the decision-serving path (DESIGN.md §15): the
 * placement request a sharded Watcher feed submits, the decision the
 * service returns, and the per-epoch system-state snapshot every
 * decision in a batch reads from.
 */

#ifndef ADRIAS_SERVING_REQUEST_HH
#define ADRIAS_SERVING_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ml/matrix.hh"

namespace adrias::serving
{

/**
 * One placement question, queued from a shard's producer thread.
 * Deadlines are absolute ticks and EXCLUSIVE: a request decided at
 * tick `deadline` has already missed it (the same hard-budget boundary
 * the GuardedPredictor applies to inference latency).
 */
struct PlacementRequest
{
    DeploymentId id = 0;

    /** Application name (signature-store key). */
    std::string app;

    WorkloadClass cls = WorkloadClass::BestEffort;

    /** Telemetry shard whose feed produced this request. */
    std::size_t shard = 0;

    /** Submission tick. */
    SimTime submitted = 0;

    /** Absolute decision deadline, exclusive. */
    SimTime deadline = 0;
};

/** Which rule produced a decision. */
enum class DecisionPath : std::uint8_t
{
    Model,     ///< predicted, paper decision rules
    Bootstrap, ///< unknown app: remote, capture signature
    Cold,      ///< shard has no telemetry yet: conventional local
    Fallback,  ///< prediction path sick: degraded-mode heuristic
};

/** @return human-readable name of a decision path. */
std::string toString(DecisionPath path);

/** The service's answer to one PlacementRequest. */
struct PlacementDecision
{
    DeploymentId id = 0;
    MemoryMode mode = MemoryMode::Local;
    DecisionPath path = DecisionPath::Model;

    /** Tick the decision batch was dispatched. */
    SimTime decided = 0;

    /** decided - submitted (whole ticks spent queued + batched). */
    SimTime latencyTicks = 0;

    /** true iff decided >= deadline (deadlines are exclusive). */
    bool missedDeadline = false;

    /** Epoch snapshot the decision read. */
    std::uint64_t epoch = 0;

    /** Running batch number the decision was served in. */
    std::uint64_t batchSeq = 0;
};

/**
 * Consistent system view for one serving epoch: every shard's binned
 * history window, captured together.  An empty per-shard window means
 * that shard is still cold.  All decisions between two beginEpoch()
 * calls read the same snapshot, so batch composition can never leak
 * into what a decision observes.
 */
struct EpochSnapshot
{
    std::uint64_t epoch = 0;
    SimTime takenAt = 0;

    /** One binned window per shard (empty sequence == cold shard). */
    std::vector<std::vector<ml::Matrix>> shardWindows;
};

} // namespace adrias::serving

#endif // ADRIAS_SERVING_REQUEST_HH
