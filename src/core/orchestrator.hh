/**
 * @file
 * The Adrias Orchestrator (paper §V-C): the interference-aware
 * placement policy that queries the Predictor and applies the paper's
 * decision rules —
 *
 *   BE:  local  iff  t̂_local < β · t̂_remote
 *   LC:  remote iff  p̂99_remote ≤ QoS
 *
 * Applications without a stored signature are bootstrapped on remote
 * memory and their signature is captured from their execution window.
 */

#ifndef ADRIAS_CORE_ORCHESTRATOR_HH
#define ADRIAS_CORE_ORCHESTRATOR_HH

#include <map>
#include <string>

#include "models/predictor.hh"
#include "scenario/placement.hh"
#include "scenario/signature.hh"

namespace adrias::core
{

/** Policy knobs of the orchestrator. */
struct AdriasConfig
{
    /**
     * Slack β for best-effort apps: the performance-loss margin we
     * accept to leverage remote memory (paper sweeps 1.0 … 0.6).
     */
    double beta = 0.8;

    /** QoS constraint on predicted p99, ms, per LC application name. */
    std::map<std::string, double> qosP99Ms;

    /** Fallback QoS when an LC app has no explicit entry. */
    double defaultQosP99Ms = 1.0;
};

/** Per-run decision statistics. */
struct OrchestratorStats
{
    std::size_t localPlacements = 0;
    std::size_t remotePlacements = 0;
    std::size_t bootstrapPlacements = 0; ///< unknown-app remote runs
};

/** Interference-aware memory orchestrator. */
class AdriasOrchestrator : public scenario::PlacementPolicy
{
  public:
    /**
     * @param predictor trained prediction stack (borrowed).
     * @param signatures signature registry (borrowed; grows as unknown
     *        apps are bootstrapped).
     * @param config policy knobs.
     */
    AdriasOrchestrator(const models::PredictorBase &predictor,
                       scenario::SignatureStore &signatures,
                       AdriasConfig config = {});

    std::string name() const override;

    MemoryMode place(const workloads::WorkloadSpec &spec,
                     const telemetry::Watcher &watcher,
                     SimTime now) override;

    void onCompletion(const scenario::DeploymentRecord &record) override;

    const OrchestratorStats &stats() const { return decisionStats; }
    const AdriasConfig &config() const { return policy; }

    /** QoS threshold applied to one LC application. */
    double qosFor(const std::string &name) const;

  private:
    const models::PredictorBase *predictor;
    scenario::SignatureStore *signatures;
    AdriasConfig policy;
    OrchestratorStats decisionStats;
};

} // namespace adrias::core

#endif // ADRIAS_CORE_ORCHESTRATOR_HH
