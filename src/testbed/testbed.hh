/**
 * @file
 * The simulated two-node ThymesisFlow machine.
 *
 * Testbed::tick() is the heart of the reproduction: given the loads
 * active during one second, it resolves the shared-resource contention
 * (CPU, LLC capacity, local DRAM bandwidth, remote channel bandwidth
 * and latency) and returns both per-app slowdowns and the performance
 * counters the Watcher samples.  The model is deliberately stateless
 * per tick so every piece is unit-testable.
 */

#ifndef ADRIAS_TESTBED_TESTBED_HH
#define ADRIAS_TESTBED_TESTBED_HH

#include <vector>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/io/checkpoint_annotations.hh"
#include "common/rng.hh"
#include "testbed/counters.hh"
#include "testbed/load.hh"
#include "testbed/params.hh"

namespace adrias::testbed
{

/** Aggregate result of one simulated second. */
struct TickResult
{
    /** Per-deployment outcome, in input order. */
    std::vector<LoadOutcome> outcomes;

    /** The Watcher's counter sample for this tick. */
    CounterSample counters{};

    /** Total achieved remote traffic, GB/s. */
    double remoteTrafficGBps = 0.0;

    /** Total achieved local traffic, GB/s. */
    double localTrafficGBps = 0.0;

    /** Channel demand pressure (demand / capacity). */
    double channelPressure = 0.0;

    /** Channel latency this tick, cycles. */
    double channelLatencyCycles = 350.0;
};

/**
 * LLC capacity-contention submodel.
 *
 * Proportional occupancy: when the sum of hot footprints exceeds
 * capacity, every app keeps capacity/total of its working set resident
 * and its hit rate degrades linearly with the evicted fraction.
 *
 * @param base_hit_rate hit rate with a fully resident working set.
 * @param footprint_mb this app's hot working set.
 * @param total_footprint_mb sum over co-located apps.
 * @param capacity_mb LLC capacity.
 * @return effective hit rate in [0, base_hit_rate].
 */
double llcEffectiveHitRate(double base_hit_rate, double footprint_mb,
                           double total_footprint_mb, double capacity_mb);

/**
 * Channel back-pressure latency (observation R2): constant at low
 * pressure, linear ramp between rampStart and rampEnd, plateau above.
 *
 * @param pressure total channel demand divided by capacity.
 */
double channelLatencyCycles(const TestbedParams &params, double pressure);

/**
 * Assert the physical conservation laws of one resolved tick
 * (ADRIAS_INVARIANT; see common/invariant.hh):
 *
 *  - per-app achieved bandwidth, latency and counters are finite and
 *    non-negative; slowdowns are >= 1; hit rates stay within
 *    [0, baseHitRate];
 *  - total achieved remote throughput does not exceed the (possibly
 *    fault-derated) channel capacity;
 *  - total achieved local traffic does not exceed the local pool cap;
 *  - resident LLC occupancy shares sum to at most the LLC capacity;
 *  - channel pressure is non-negative and the back-pressure latency
 *    never drops below its base value.
 *
 * Called automatically at the end of Testbed::tick() in builds with
 * ADRIAS_INVARIANTS=ON; exposed so tests can feed it deliberately
 * corrupted results and prove each check fires.
 *
 * @param loads the tick's input deployments.
 * @param result the resolved tick under test.
 * @param params hardware calibration in use.
 * @param channel_bw_scale fault derating applied to the channel.
 */
void checkTickInvariants(const std::vector<LoadDescriptor> &loads,
                         const TickResult &result,
                         const TestbedParams &params,
                         double channel_bw_scale = 1.0);

/** The simulated machine. */
class Testbed
{
  public:
    /**
     * @param params hardware calibration.
     * @param seed RNG seed for counter measurement noise.
     */
    explicit Testbed(TestbedParams params = {}, std::uint64_t seed = 1);

    /**
     * Resolve one second of execution.
     *
     * @param loads all deployments active during this tick.
     * @return slowdowns, achieved traffic and counters.
     */
    TickResult tick(const std::vector<LoadDescriptor> &loads);

    /** @return calibration in use. */
    const TestbedParams &params() const { return parameters; }

    /**
     * Relative counter noise amplitude (0 disables measurement noise;
     * default 1%).
     */
    void setNoise(double relative_sigma) { noiseSigma = relative_sigma; }

    /**
     * Degrade the remote channel (fault injection): scale its
     * effective bandwidth by `bw_scale` in (0, 1] and its back-pressure
     * latency by `latency_scale` >= 1.  Persists until changed.
     */
    void setChannelFault(double bw_scale, double latency_scale);

    /** Restore the healthy channel. */
    void clearChannelFault() { setChannelFault(1.0, 1.0); }

    /** @return true while a channel fault is applied. */
    bool
    channelFaulted() const
    {
        return channelBwScale < 1.0 || channelLatencyScale > 1.0;
    }

    /**
     * Serialize the evolving state: noise RNG position, noise sigma,
     * channel fault scales and observability bookkeeping.  Calibration
     * (TestbedParams) is configuration and stays out of the payload.
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore a payload written by saveState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    TestbedParams parameters ADRIAS_NOT_CHECKPOINTED(
        "calibration configuration; stays out of the payload (see "
        "saveState doc)");
    Rng rng;
    double noiseSigma = 0.01;
    double channelBwScale = 1.0;
    double channelLatencyScale = 1.0;

    /** Ticks resolved so far (observability: instant timestamps). */
    std::int64_t obsTickCount = 0;

    /** Last tick's back-pressure state (observability: transitions). */
    bool obsBackpressured = false;

    /** Apply multiplicative measurement noise to a counter value. */
    double noisy(double value);
};

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_TESTBED_HH
