/**
 * @file
 * Determinism tests for rack topologies: identical seeds must reproduce
 * identical ticks and identical cluster runs, bitwise, regardless of
 * the ADRIAS_THREADS setting the CI matrix applies.  ADRIAS_TOPOLOGY
 * selects the rack under test (default "rack-2x2-cxl") so one binary
 * covers the whole topology x thread-count matrix.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/cluster.hh"
#include "testbed/rack.hh"
#include "testbed/topology.hh"

namespace adrias::testbed
{
namespace
{

std::string
topologyUnderTest()
{
    const char *env = std::getenv("ADRIAS_TOPOLOGY");
    return env != nullptr && *env != '\0' ? env : "rack-2x2-cxl";
}

/** A deterministic per-node load mix on whatever rack is under test. */
std::vector<LoadDescriptor>
loadsFor(const Topology &topo)
{
    std::vector<LoadDescriptor> loads;
    DeploymentId id = 1;
    for (std::size_t n = 0; n < topo.nodeCount(); ++n) {
        LoadDescriptor local;
        local.id = id++;
        local.mode = MemoryMode::Local;
        local.node = n;
        local.memDemandGBps = 2.0 + 0.5 * static_cast<double>(n);
        loads.push_back(local);
        for (std::size_t l : topo.linksFrom(n)) {
            LoadDescriptor remote;
            remote.id = id++;
            remote.mode = MemoryMode::Remote;
            remote.node = n;
            remote.server = topo.link(l).server;
            remote.link = l;
            remote.memDemandGBps =
                1.0 + 0.25 * static_cast<double>(l);
            loads.push_back(remote);
        }
    }
    return loads;
}

void
expectBitwiseEqualTicks(const RackTickResult &a, const RackTickResult &b)
{
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].achievedGBps, b.outcomes[i].achievedGBps);
        EXPECT_EQ(a.outcomes[i].slowdown, b.outcomes[i].slowdown);
        EXPECT_EQ(a.outcomes[i].latencyNs, b.outcomes[i].latencyNs);
        EXPECT_EQ(a.outcomes[i].hitRate, b.outcomes[i].hitRate);
    }
    for (std::size_t n = 0; n < a.nodes.size(); ++n)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            EXPECT_EQ(a.nodes[n].counters[e], b.nodes[n].counters[e]);
    for (std::size_t l = 0; l < a.links.size(); ++l) {
        EXPECT_EQ(a.links[l].offeredGBps, b.links[l].offeredGBps);
        EXPECT_EQ(a.links[l].queuedGBps, b.links[l].queuedGBps);
        for (std::size_t e = 0; e < kNumLinkEvents; ++e)
            EXPECT_EQ(a.links[l].counters[e], b.links[l].counters[e]);
    }
}

TEST(RackDeterminism, SameSeedTicksAreBitwiseIdentical)
{
    const Topology topo = topologyByName(topologyUnderTest());
    const auto loads = loadsFor(topo);
    RackTestbed a(topo, 1234);
    RackTestbed b(topo, 1234);
    for (int t = 0; t < 20; ++t)
        expectBitwiseEqualTicks(a.tick(loads), b.tick(loads));
}

TEST(RackDeterminism, NoiseSeedAffectsCountersNotPhysics)
{
    const Topology topo = topologyByName(topologyUnderTest());
    const auto loads = loadsFor(topo);
    RackTestbed a(topo, 1);
    RackTestbed b(topo, 2);
    const auto tick_a = a.tick(loads);
    const auto tick_b = b.tick(loads);
    // The contention physics is seed-free...
    for (std::size_t i = 0; i < loads.size(); ++i) {
        EXPECT_EQ(tick_a.outcomes[i].achievedGBps,
                  tick_b.outcomes[i].achievedGBps);
        EXPECT_EQ(tick_a.outcomes[i].slowdown, tick_b.outcomes[i].slowdown);
    }
    // ...while the measurement noise stream is not.
    bool any_differs = false;
    for (std::size_t n = 0; n < topo.nodeCount() && !any_differs; ++n)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            if (tick_a.nodes[n].counters[e] != tick_b.nodes[n].counters[e])
                any_differs = true;
    EXPECT_TRUE(any_differs);
}

TEST(RackDeterminism, ClusterRackRunsAreBitwiseIdentical)
{
    const Topology topo = topologyByName(topologyUnderTest());
    scenario::ScenarioConfig config;
    config.durationSec = 300;
    config.spawnMinSec = 4;
    config.spawnMaxSec = 15;
    config.seed = 2024;

    auto run_once = [&]() {
        scenario::ClusterScenarioRunner runner(topo, config);
        scenario::RandomClusterPolicy policy(31);
        return runner.run(policy);
    };
    const scenario::ClusterResult a = run_once();
    const scenario::ClusterResult b = run_once();

    EXPECT_EQ(a.topologyName, topo.name());
    EXPECT_EQ(a.totalRemoteTrafficGB, b.totalRemoteTrafficGB);
    EXPECT_EQ(a.droppedArrivals, b.droppedArrivals);
    EXPECT_EQ(a.remoteFallbacks, b.remoteFallbacks);
    ASSERT_EQ(a.linkTotals.size(), b.linkTotals.size());
    for (std::size_t l = 0; l < a.linkTotals.size(); ++l) {
        EXPECT_EQ(a.linkTotals[l].offeredGb, b.linkTotals[l].offeredGb);
        EXPECT_EQ(a.linkTotals[l].deliveredGb,
                  b.linkTotals[l].deliveredGb);
        EXPECT_EQ(a.linkTotals[l].queuedGb, b.linkTotals[l].queuedGb);
        EXPECT_EQ(a.linkTotals[l].saturatedTicks,
                  b.linkTotals[l].saturatedTicks);
    }
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
        ASSERT_EQ(a.nodes[n].trace.size(), b.nodes[n].trace.size());
        for (std::size_t t = 0; t < a.nodes[n].trace.size(); ++t)
            for (std::size_t e = 0; e < kNumPerfEvents; ++e)
                EXPECT_EQ(a.nodes[n].trace[t][e], b.nodes[n].trace[t][e]);
        ASSERT_EQ(a.nodes[n].records.size(), b.nodes[n].records.size());
        for (std::size_t r = 0; r < a.nodes[n].records.size(); ++r) {
            EXPECT_EQ(a.nodes[n].records[r].id, b.nodes[n].records[r].id);
            EXPECT_EQ(a.nodes[n].records[r].meanSlowdown,
                      b.nodes[n].records[r].meanSlowdown);
            EXPECT_EQ(a.nodes[n].records[r].execTimeSec,
                      b.nodes[n].records[r].execTimeSec);
        }
    }
}

TEST(RackDeterminism, LinkConservationHoldsOverEnvTopologyRun)
{
    // Cumulative conservation on the CI-selected topology: across a
    // whole cluster run, every link satisfies offered = delivered +
    // queued in total.
    const Topology topo = topologyByName(topologyUnderTest());
    scenario::ScenarioConfig config;
    config.durationSec = 300;
    config.seed = 77;

    scenario::ClusterScenarioRunner runner(topo, config);
    scenario::RandomClusterPolicy policy(5);
    const scenario::ClusterResult result = runner.run(policy);
    ASSERT_EQ(result.linkTotals.size(), topo.linkCount());
    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        const LinkTotals &totals = result.linkTotals[l];
        EXPECT_NEAR(totals.offeredGb,
                    totals.deliveredGb + totals.queuedGb,
                    1e-6 + 1e-9 * totals.offeredGb);
        EXPECT_GE(totals.saturatedTicks, 0);
        EXPECT_LE(totals.saturatedTicks,
                  static_cast<std::int64_t>(config.durationSec));
    }
}

} // namespace
} // namespace adrias::testbed
