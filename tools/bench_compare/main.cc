/**
 * @file
 * CLI for the perf-regression gate:
 *   bench_compare <baseline.json> <current.json> [--tolerance X]
 *
 * Exit codes: 0 pass, 1 gross regression or missing benchmark,
 * 2 usage/parse error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_compare/bench_compare.hh"

namespace
{

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path;
    std::string current_path;
    double tolerance = 2.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::cerr << "bench_compare: --tolerance needs a value\n";
                return 2;
            }
            tolerance = std::stod(argv[++i]);
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            std::cerr << "bench_compare: unexpected argument '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty()) {
        std::cerr << "usage: bench_compare <baseline.json> "
                     "<current.json> [--tolerance X]\n";
        return 2;
    }
    if (tolerance < 1.0) {
        std::cerr << "bench_compare: tolerance must be >= 1\n";
        return 2;
    }

    std::string baseline_text;
    std::string current_text;
    if (!readFile(baseline_path, &baseline_text)) {
        std::cerr << "bench_compare: cannot read " << baseline_path
                  << "\n";
        return 2;
    }
    if (!readFile(current_path, &current_text)) {
        std::cerr << "bench_compare: cannot read " << current_path
                  << "\n";
        return 2;
    }

    using namespace adrias::bench_compare;
    std::string error;
    const auto baseline = parseBenchJson(baseline_text, &error);
    if (baseline.empty()) {
        std::cerr << "bench_compare: " << baseline_path << ": " << error
                  << "\n";
        return 2;
    }
    const auto current = parseBenchJson(current_text, &error);
    if (current.empty()) {
        std::cerr << "bench_compare: " << current_path << ": " << error
                  << "\n";
        return 2;
    }

    const CompareResult result = compare(baseline, current, tolerance);
    std::cout << formatReport(result, tolerance);
    return result.pass ? 0 : 1;
}
