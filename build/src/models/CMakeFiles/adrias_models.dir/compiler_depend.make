# Empty compiler generated dependencies file for adrias_models.
# This may be replaced when dependencies are built.
