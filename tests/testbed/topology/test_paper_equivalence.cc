/**
 * @file
 * Paper-pair equivalence: the RackTestbed instantiated on the
 * "paper-pair" topology reproduces the legacy two-node Testbed.  The
 * two implementations apply the same shares in a different
 * multiplication order, so outcomes agree to ~1e-9 relative tolerance
 * (the figure-level bitwise guarantee is carried by the scenario layer
 * short-circuiting "paper-pair" onto the legacy Testbed, covered by
 * the engine test below and the golden scenario suite).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "scenario/engine.hh"
#include "scenario/runner.hh"
#include "testbed/rack.hh"
#include "testbed/testbed.hh"
#include "testbed/topology.hh"

namespace adrias::testbed
{
namespace
{

void
expectNear(double a, double b)
{
    EXPECT_NEAR(a, b, 1e-9 * std::max({std::fabs(a), std::fabs(b), 1.0}));
}

/** A representative mixed tick: local + remote, CPU + LLC pressure. */
std::vector<LoadDescriptor>
mixedLoads(double remote_demand)
{
    std::vector<LoadDescriptor> loads;
    LoadDescriptor local;
    local.id = 1;
    local.mode = MemoryMode::Local;
    local.cpuCores = 40.0;
    local.cpuFraction = 0.6;
    local.memDemandGBps = 9.0;
    local.cacheFootprintMb = 14.0;
    local.llcAccessGBps = 3.0;
    loads.push_back(local);

    LoadDescriptor remote;
    remote.id = 2;
    remote.mode = MemoryMode::Remote;
    remote.cpuCores = 30.0;
    remote.cpuFraction = 0.3;
    remote.memDemandGBps = remote_demand;
    remote.latencyBoundFraction = 0.4;
    remote.cacheFootprintMb = 10.0;
    remote.llcAccessGBps = 2.0;
    loads.push_back(remote);
    return loads;
}

class PaperEquivalence : public ::testing::TestWithParam<double>
{
};

TEST_P(PaperEquivalence, RackMatchesLegacyTestbed)
{
    const double remote_demand = GetParam();
    const TestbedParams params;

    Testbed legacy(params, 1);
    legacy.setNoise(0.0);
    RackTestbed rack(Topology::paperPair(params), 1);
    rack.setNoise(0.0);

    const auto loads = mixedLoads(remote_demand);
    const TickResult expected = legacy.tick(loads);
    const RackTickResult actual = rack.tick(loads);

    ASSERT_EQ(actual.outcomes.size(), expected.outcomes.size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
        expectNear(actual.outcomes[i].achievedGBps,
                   expected.outcomes[i].achievedGBps);
        expectNear(actual.outcomes[i].slowdown,
                   expected.outcomes[i].slowdown);
        expectNear(actual.outcomes[i].latencyNs,
                   expected.outcomes[i].latencyNs);
        expectNear(actual.outcomes[i].hitRate,
                   expected.outcomes[i].hitRate);
    }
    expectNear(actual.links[0].pressure, expected.channelPressure);
    expectNear(actual.links[0].latencyCycles,
               expected.channelLatencyCycles);
    expectNear(actual.nodes[0].remoteTrafficGBps,
               expected.remoteTrafficGBps);
    expectNear(actual.nodes[0].localTrafficGBps,
               expected.localTrafficGBps);
    for (std::size_t e = 0; e < kNumPerfEvents; ++e)
        expectNear(actual.nodes[0].counters[e], expected.counters[e]);
}

// Quiet channel, below ramp, mid-ramp, past saturation.
INSTANTIATE_TEST_SUITE_P(Pressures, PaperEquivalence,
                         ::testing::Values(0.05, 0.45, 0.9, 2.0));

TEST(PaperEquivalenceFault, ChannelFaultMatchesLinkFault)
{
    const TestbedParams params;
    Testbed legacy(params, 1);
    legacy.setNoise(0.0);
    legacy.setChannelFault(0.5, 1.8);
    RackTestbed rack(Topology::paperPair(params), 1);
    rack.setNoise(0.0);
    rack.setLinkFault(0, 0.5, 1.8);

    const auto loads = mixedLoads(0.4);
    const TickResult expected = legacy.tick(loads);
    const RackTickResult actual = rack.tick(loads);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        expectNear(actual.outcomes[i].achievedGBps,
                   expected.outcomes[i].achievedGBps);
        expectNear(actual.outcomes[i].slowdown,
                   expected.outcomes[i].slowdown);
    }
    expectNear(actual.links[0].latencyCycles,
               expected.channelLatencyCycles);
}

TEST(PaperEquivalenceEngine, PaperPairConfigIsBitwiseDefault)
{
    // The scenario engine runs "paper-pair" through the legacy Testbed
    // untouched: a config naming the topology explicitly produces a
    // bitwise-identical run to the historical default — this is the
    // mechanism behind the fig02-fig17 reproduction guarantee.
    scenario::ScenarioConfig base;
    base.durationSec = 120;
    base.seed = 99;

    scenario::ScenarioConfig named = base;
    named.topology = "paper-pair";

    auto run = [](const scenario::ScenarioConfig &config) {
        scenario::ScenarioEngine engine(config);
        scenario::RandomPlacement policy(7);
        while (!engine.finished())
            engine.stepTick(policy);
        return engine.finish();
    };
    const scenario::ScenarioResult a = run(base);
    const scenario::ScenarioResult b = run(named);

    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t t = 0; t < a.trace.size(); ++t)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            EXPECT_EQ(a.trace[t][e], b.trace[t][e]);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t r = 0; r < a.records.size(); ++r) {
        EXPECT_EQ(a.records[r].id, b.records[r].id);
        EXPECT_EQ(a.records[r].mode, b.records[r].mode);
        EXPECT_EQ(a.records[r].execTimeSec, b.records[r].execTimeSec);
        EXPECT_EQ(a.records[r].meanSlowdown, b.records[r].meanSlowdown);
    }
    EXPECT_EQ(a.totalRemoteTrafficGB, b.totalRemoteTrafficGB);
}

TEST(PaperEquivalenceCluster, IndependentPairsMatchLegacyClusterShape)
{
    // The rack model on "pairs-N" keeps nodes fully isolated, like the
    // legacy N-pair cluster: traffic on one pair never queues another.
    const Topology topo = Topology::independentPairs(2);
    RackTestbed rack(topo, 3);
    rack.setNoise(0.0);

    std::vector<LoadDescriptor> loads;
    LoadDescriptor heavy;
    heavy.id = 1;
    heavy.mode = MemoryMode::Remote;
    heavy.node = 0;
    heavy.server = 0;
    heavy.link = static_cast<std::size_t>(topo.linkBetween(0, 0));
    heavy.memDemandGBps = 2.0;
    heavy.latencyBoundFraction = 0.0;
    loads.push_back(heavy);
    LoadDescriptor quiet = heavy;
    quiet.id = 2;
    quiet.node = 1;
    quiet.server = 1;
    quiet.link = static_cast<std::size_t>(topo.linkBetween(1, 1));
    quiet.memDemandGBps = 0.05;
    loads.push_back(quiet);

    const auto result = rack.tick(loads);
    // Pair 0 saturates its ThymesisFlow link; pair 1 is untouched.
    EXPECT_GT(result.links[loads[0].link].queuedGBps, 0.0);
    EXPECT_DOUBLE_EQ(result.outcomes[1].achievedGBps, 0.05);
    EXPECT_DOUBLE_EQ(result.links[loads[1].link].queuedGBps, 0.0);
    EXPECT_DOUBLE_EQ(result.links[loads[1].link].latencyCycles,
                     kThymesisFlowProfile.latencyBaseCycles);
}

} // namespace
} // namespace adrias::testbed
