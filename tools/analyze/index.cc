#include "analyze/index.hh"

#include <algorithm>
#include <cctype>

#include "lint/source.hh"

namespace adrias::analyze
{

namespace
{

using lint::identifiersIn;
using lint::isIdentChar;
using lint::splitLines;
using lint::startsWith;
using lint::stripCommentsAndStrings;
using lint::trimmed;

/**
 * The flattened, stripped text of one file plus the scanning cursor
 * machinery.  Preprocessor lines are blanked so #if/#include never
 * look like statements.
 */
struct Scanner
{
    std::string text;             ///< '\n'-joined stripped lines
    std::vector<std::size_t> lineStart;

    explicit Scanner(const std::string &content)
    {
        std::vector<std::string> raw = splitLines(content);
        std::vector<std::string> stripped = stripCommentsAndStrings(raw);
        bool continued = false; // previous pp line ended with backslash
        for (std::size_t i = 0; i < stripped.size(); ++i) {
            const std::string t = trimmed(raw[i]);
            const bool pp = continued || (!t.empty() && t[0] == '#');
            continued = pp && !t.empty() && t.back() == '\\';
            lineStart.push_back(text.size());
            text += pp ? std::string(stripped[i].size(), ' ')
                       : stripped[i];
            text += '\n';
        }
    }

    /** 0-based line of a text position. */
    std::size_t
    lineOf(std::size_t pos) const
    {
        std::size_t line = 0;
        for (std::size_t i = 1; i < lineStart.size(); ++i) {
            if (lineStart[i] > pos)
                break;
            line = i;
        }
        return line;
    }
};

/** Last non-space character of `s`, or '\0'. */
char
lastNonSpace(const std::string &s)
{
    for (std::size_t i = s.size(); i-- > 0;) {
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            return s[i];
    }
    return '\0';
}

/** Is `token` an ADRIAS_* annotation macro name (all caps)? */
bool
isAnnotationMacro(const std::string &token)
{
    if (!startsWith(token, "ADRIAS_"))
        return false;
    return std::all_of(token.begin(), token.end(), [](char c) {
        return (std::isupper(static_cast<unsigned char>(c)) != 0) ||
               c == '_' || (std::isdigit(static_cast<unsigned char>(c)) != 0);
    });
}

/** Annotation flags found on one declaration. */
struct Annotations
{
    bool guarded = false;
    bool notCheckpointed = false;
    bool lockFree = false;
};

/**
 * Remove ADRIAS_* macro invocations (and bare macro tokens) from a
 * declaration, recording the waiver/guard flags they carry.
 */
std::string
removeAnnotationMacros(const std::string &decl, Annotations &flags)
{
    std::string out;
    std::size_t i = 0;
    while (i < decl.size()) {
        if (isIdentChar(decl[i]) &&
            !std::isdigit(static_cast<unsigned char>(decl[i])) &&
            (i == 0 || !isIdentChar(decl[i - 1]))) {
            std::size_t end = i;
            while (end < decl.size() && isIdentChar(decl[end]))
                ++end;
            const std::string token = decl.substr(i, end - i);
            if (isAnnotationMacro(token)) {
                if (token == "ADRIAS_GUARDED_BY" ||
                    token == "ADRIAS_PT_GUARDED_BY")
                    flags.guarded = true;
                else if (token == "ADRIAS_NOT_CHECKPOINTED")
                    flags.notCheckpointed = true;
                else if (token == "ADRIAS_LOCK_FREE")
                    flags.lockFree = true;
                i = end;
                // Swallow the macro's balanced argument list, if any.
                while (i < decl.size() &&
                       std::isspace(static_cast<unsigned char>(decl[i])))
                    ++i;
                if (i < decl.size() && decl[i] == '(') {
                    int depth = 0;
                    do {
                        if (decl[i] == '(')
                            ++depth;
                        else if (decl[i] == ')')
                            --depth;
                        ++i;
                    } while (i < decl.size() && depth > 0);
                }
                continue;
            }
            out += token;
            i = end;
            continue;
        }
        out += decl[i];
        ++i;
    }
    return out;
}

/** Strip leading access labels ("public:", "private:", ...). */
std::string
stripAccessLabels(std::string decl)
{
    for (;;) {
        decl = trimmed(decl);
        bool stripped_one = false;
        for (const std::string label : {"public", "private", "protected"}) {
            if (!startsWith(decl, label))
                continue;
            std::size_t at = label.size();
            while (at < decl.size() &&
                   std::isspace(static_cast<unsigned char>(decl[at])))
                ++at;
            if (at < decl.size() && decl[at] == ':' &&
                (at + 1 >= decl.size() || decl[at + 1] != ':')) {
                decl = decl.substr(at + 1);
                stripped_one = true;
                break;
            }
        }
        if (!stripped_one)
            return decl;
    }
}

/** Position of the first '(' at angle-bracket depth 0, or npos. */
std::size_t
topLevelParen(const std::string &decl)
{
    int angle = 0;
    for (std::size_t i = 0; i < decl.size(); ++i) {
        const char c = decl[i];
        if (c == '<')
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '(' && angle == 0)
            return i;
    }
    return std::string::npos;
}

/** The identifier ending right before `pos` (skipping spaces and ~). */
std::string
identifierBefore(const std::string &decl, std::size_t pos)
{
    std::size_t end = pos;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(decl[end - 1])))
        --end;
    std::size_t begin = end;
    while (begin > 0 && isIdentChar(decl[begin - 1]))
        --begin;
    return decl.substr(begin, end - begin);
}

/** First identifier token of `text`, or "". */
std::string
firstIdentifier(const std::string &text)
{
    const auto ids = identifiersIn(text);
    return ids.empty() ? std::string() : ids.front().first;
}

/** Does the token list contain `token`? */
bool
hasToken(const std::string &text, const std::string &token)
{
    for (const auto &[id, col] : identifiersIn(text)) {
        (void)col;
        if (id == token)
            return true;
    }
    return false;
}

/** Parse a class head: "template<...>? (class|struct) Name : bases". */
bool
parseClassHead(const std::string &head, std::string &name,
               std::vector<std::string> &bases)
{
    Annotations ignored;
    std::string h = removeAnnotationMacros(head, ignored);
    h = trimmed(h);
    if (startsWith(h, "template")) {
        // Skip the parameter list: templates of classes are indexed
        // like plain classes (parameters don't matter to the passes).
        const std::size_t open = h.find('<');
        if (open == std::string::npos)
            return false;
        int depth = 0;
        std::size_t i = open;
        for (; i < h.size(); ++i) {
            if (h[i] == '<')
                ++depth;
            else if (h[i] == '>' && --depth == 0)
                break;
        }
        h = trimmed(h.substr(i + 1));
    }
    const bool isClass = startsWith(h, "class ") || h == "class";
    const bool isStruct = startsWith(h, "struct ") || h == "struct";
    if (!isClass && !isStruct)
        return false;
    h = trimmed(h.substr(isClass ? 5 : 6));

    const auto ids = identifiersIn(h);
    if (ids.empty())
        return false;
    name = ids.front().first;

    // Base clause: the ':' that is not part of a '::'.
    std::size_t colon = std::string::npos;
    for (std::size_t i = 0; i < h.size(); ++i) {
        if (h[i] != ':')
            continue;
        if ((i + 1 < h.size() && h[i + 1] == ':') ||
            (i > 0 && h[i - 1] == ':')) {
            continue;
        }
        colon = i;
        break;
    }
    if (colon != std::string::npos) {
        std::string clause = h.substr(colon + 1);
        std::string segment;
        int angle = 0;
        auto flush = [&]() {
            const auto segIds = identifiersIn(segment);
            for (std::size_t k = segIds.size(); k-- > 0;) {
                const std::string &id = segIds[k].first;
                if (id != "public" && id != "protected" &&
                    id != "private" && id != "virtual") {
                    bases.push_back(id);
                    break;
                }
            }
            segment.clear();
        };
        for (char c : clause) {
            if (c == '<')
                ++angle;
            else if (c == '>')
                --angle;
            if (c == ',' && angle == 0)
                flush();
            else
                segment.push_back(c);
        }
        flush();
    }
    return true;
}

/** Remove a top-level trailing "= ..." initializer. */
std::string
removeInitializer(const std::string &decl)
{
    int angle = 0;
    int paren = 0;
    for (std::size_t i = 0; i < decl.size(); ++i) {
        const char c = decl[i];
        if (c == '<')
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '=' && angle == 0 && paren == 0) {
            const char prev = i > 0 ? decl[i - 1] : '\0';
            const char next = i + 1 < decl.size() ? decl[i + 1] : '\0';
            if (prev != '=' && prev != '!' && prev != '<' &&
                prev != '>' && next != '=')
                return decl.substr(0, i);
        }
    }
    return decl;
}

/** Remove top-level [...] array extents. */
std::string
removeArrayExtents(const std::string &decl)
{
    std::string out;
    int depth = 0;
    for (char c : decl) {
        if (c == '[') {
            ++depth;
            continue;
        }
        if (c == ']') {
            if (depth > 0)
                --depth;
            continue;
        }
        if (depth == 0)
            out.push_back(c);
    }
    return out;
}

const std::set<std::string> kSkipStatementKeywords = {
    "using",  "typedef", "friend",    "static_assert",
    "class",  "struct",  "enum",      "namespace",
    "public", "private", "protected", "template",
};

/** The per-file parser; results are merged into the Index afterwards. */
class FileParser
{
  public:
    FileParser(const SourceFile &file, Index &index)
        : label(file.label), scanner(file.content), out(index)
    {
    }

    void
    run()
    {
        std::size_t pos = 0;
        statementBegin(pos);
        while (pos < scanner.text.size())
            step(pos);
    }

  private:
    /** One open scope: a namespace, an indexed class, or opaque. */
    struct Scope
    {
        enum class Kind
        {
            Namespace,
            Class,
            Opaque,
        };
        Kind kind = Kind::Opaque;
        std::size_t classIndex = 0; ///< into `classes` when Class
        std::string nsName;         ///< "adrias::obs" when Namespace
    };

    std::string label;
    Scanner scanner;
    Index &out;

    std::vector<Scope> scopes;
    std::string stmt;
    std::size_t stmtLine = 0; ///< 0-based line the statement began on
    bool stmtStarted = false;

    void
    statementBegin(std::size_t pos)
    {
        stmt.clear();
        stmtStarted = false;
        (void)pos;
    }

    bool
    inClass() const
    {
        return !scopes.empty() &&
               scopes.back().kind == Scope::Kind::Class;
    }

    /** Qualified name prefix of the current scope stack. */
    std::string
    qualifiedPrefix() const
    {
        std::string prefix;
        for (const Scope &scope : scopes) {
            if (scope.kind == Scope::Kind::Namespace &&
                !scope.nsName.empty()) {
                if (!prefix.empty())
                    prefix += "::";
                prefix += scope.nsName;
            } else if (scope.kind == Scope::Kind::Class) {
                // Class names are stored fully qualified already.
                prefix = out.classes[scope.classIndex].name;
            }
        }
        return prefix;
    }

    /**
     * Consume a balanced {...} starting at `pos` (which points at the
     * '{').  @return the text between the braces, newlines preserved.
     */
    std::string
    slurpBraces(std::size_t &pos)
    {
        int depth = 0;
        const std::size_t open = pos;
        while (pos < scanner.text.size()) {
            const char c = scanner.text[pos];
            if (c == '{')
                ++depth;
            else if (c == '}' && --depth == 0) {
                ++pos;
                return scanner.text.substr(open + 1, pos - open - 2);
            }
            ++pos;
        }
        return scanner.text.substr(open + 1);
    }

    void
    step(std::size_t &pos)
    {
        const char c = scanner.text[pos];
        if (c == '{') {
            handleOpenBrace(pos);
            return;
        }
        if (c == '}') {
            if (!scopes.empty())
                scopes.pop_back();
            ++pos;
            statementBegin(pos);
            return;
        }
        if (c == ';') {
            if (inClass())
                parseClassStatement(stmt, stmtLine);
            ++pos;
            statementBegin(pos);
            return;
        }
        if (!stmtStarted &&
            !std::isspace(static_cast<unsigned char>(c))) {
            stmtStarted = true;
            stmtLine = scanner.lineOf(pos);
        }
        stmt.push_back(c);
        ++pos;
    }

    void
    handleOpenBrace(std::size_t &pos)
    {
        const char tail = lastNonSpace(stmt);
        // An initializer brace inside a statement ("= {...}", default
        // arguments, nested list elements): swallow it and keep the
        // statement going.
        if (tail == '=' || tail == ',' || tail == '(' || tail == '<') {
            slurpBraces(pos);
            stmt += "{}";
            return;
        }

        const std::string head = trimmed(stripAccessLabels(stmt));
        std::string name;
        std::vector<std::string> bases;

        if (parseClassHead(head, name, bases)) {
            const std::string prefix = qualifiedPrefix();
            Class cls;
            cls.name = prefix.empty() ? name : prefix + "::" + name;
            cls.file = label;
            cls.line = stmtLine + 1;
            cls.bases = bases;
            out.classes.push_back(std::move(cls));
            scopes.push_back(
                {Scope::Kind::Class, out.classes.size() - 1, ""});
            ++pos;
            statementBegin(pos);
            return;
        }
        if (head == "namespace" || startsWith(head, "namespace ") ||
            startsWith(head, "inline namespace")) {
            // "namespace adrias::obs" -> "adrias::obs"; anonymous
            // namespaces contribute nothing to qualified names.
            std::string nsName;
            for (const auto &[id, col] : identifiersIn(head)) {
                (void)col;
                if (id == "namespace" || id == "inline")
                    continue;
                if (!nsName.empty())
                    nsName += "::";
                nsName += id;
            }
            scopes.push_back({Scope::Kind::Namespace, 0, nsName});
            ++pos;
            statementBegin(pos);
            return;
        }
        if (startsWith(head, "enum ") || head == "enum") {
            slurpBraces(pos);
            statementBegin(pos);
            return;
        }

        Annotations flags;
        const std::string cleaned =
            trimmed(removeAnnotationMacros(head, flags));
        const std::size_t paren = topLevelParen(cleaned);
        if (paren == std::string::npos) {
            // Member/global brace initialization without '=':
            // `std::atomic<uint64_t> value{0};` — swallow the braces,
            // finish the statement on the following ';'.
            slurpBraces(pos);
            stmt += "{}";
            return;
        }

        // A function body.  Record it: as an inline method when we
        // are inside a class, as an (out-of-line or free) function at
        // namespace scope.
        const std::size_t bodyLine = scanner.lineOf(pos);
        const std::string fnName = identifierBefore(cleaned, paren);
        std::string body = slurpBraces(pos);

        if (inClass()) {
            Method method;
            method.name = fnName;
            method.head = cleaned;
            method.body = std::move(body);
            method.file = label;
            method.line = stmtLine + 1;
            method.bodyLine = bodyLine + 1;
            method.isStatic = hasToken(cleaned.substr(0, paren), "static");
            out.classes[scopes.back().classIndex].methods.push_back(
                std::move(method));
        } else {
            // Walk the "A::B::name" qualifier chain left of the name.
            std::string className;
            std::size_t end = paren;
            while (end > 0 && std::isspace(static_cast<unsigned char>(
                                  cleaned[end - 1])))
                --end;
            end -= fnName.size();
            std::vector<std::string> qualifiers;
            while (end >= 2 && cleaned[end - 1] == ':' &&
                   cleaned[end - 2] == ':') {
                end -= 2;
                const std::string qualifier =
                    identifierBefore(cleaned, end);
                if (qualifier.empty())
                    break;
                qualifiers.push_back(qualifier);
                end -= qualifier.size();
            }
            for (std::size_t i = qualifiers.size(); i-- > 0;) {
                if (!className.empty())
                    className += "::";
                className += qualifiers[i];
            }
            // Qualify with the enclosing namespace blocks so
            // `Histogram::add` in `namespace adrias::obs { ... }`
            // matches adrias::obs::Histogram, not a same-named class
            // in another namespace.
            if (!className.empty()) {
                const std::string prefix = qualifiedPrefix();
                if (!prefix.empty())
                    className = prefix + "::" + className;
            }
            Function fn;
            fn.className = className;
            fn.name = fnName;
            fn.head = cleaned;
            fn.body = std::move(body);
            fn.file = label;
            fn.line = stmtLine + 1;
            fn.bodyLine = bodyLine + 1;
            out.functions.push_back(std::move(fn));
        }
        statementBegin(pos);
    }

    void
    parseClassStatement(const std::string &raw_stmt, std::size_t line)
    {
        const std::string labeled = trimmed(stripAccessLabels(raw_stmt));
        if (labeled.empty())
            return;
        const std::string first = firstIdentifier(labeled);
        if (kSkipStatementKeywords.count(first))
            return;

        Annotations flags;
        std::string cleaned =
            trimmed(removeAnnotationMacros(labeled, flags));
        if (cleaned.empty())
            return;

        Class &cls = out.classes[scopes.back().classIndex];
        const std::size_t paren = topLevelParen(cleaned);
        if (paren != std::string::npos) {
            // Method declaration without an inline body.
            Method method;
            method.name = identifierBefore(cleaned, paren);
            method.head = cleaned;
            method.file = label;
            method.line = line + 1;
            method.isStatic =
                hasToken(cleaned.substr(0, paren), "static");
            if (!method.name.empty())
                cls.methods.push_back(std::move(method));
            return;
        }

        // Data member.
        cleaned = trimmed(removeInitializer(cleaned));
        cleaned = trimmed(removeArrayExtents(cleaned));
        const auto ids = identifiersIn(cleaned);
        if (ids.size() < 2)
            return; // needs at least a type and a name
        Member member;
        member.name = ids.back().first;
        member.type = trimmed(cleaned.substr(0, ids.back().second));
        member.file = label;
        member.line = line + 1;
        member.isStatic = hasToken(member.type, "static");
        member.isConst = hasToken(member.type, "const") ||
                         hasToken(member.type, "constexpr");
        member.isMutable = hasToken(member.type, "mutable");
        member.isReference = member.type.find('&') != std::string::npos;
        member.guarded = flags.guarded;
        member.notCheckpointed = flags.notCheckpointed;
        member.lockFree = flags.lockFree;
        cls.members.push_back(std::move(member));
    }
};

} // namespace

const Class *
Index::findClass(const std::string &name) const
{
    for (const Class &cls : classes) {
        if (cls.name == name)
            return &cls;
    }
    // Unqualified lookup: unique suffix match ("Watcher" finds
    // "adrias::telemetry::Watcher").
    const Class *match = nullptr;
    for (const Class &cls : classes) {
        if (!lint::endsWith(cls.name, "::" + name))
            continue;
        if (match != nullptr)
            return nullptr; // ambiguous
        match = &cls;
    }
    return match;
}

std::string
Index::mergedBodies(const Class &cls,
                    const std::set<std::string> &names) const
{
    std::string merged;
    for (const Method &method : cls.methods) {
        if (names.count(method.name) && !method.body.empty()) {
            merged += method.body;
            merged += '\n';
        }
    }
    for (const Function &fn : functions) {
        if (fn.className == cls.name && names.count(fn.name)) {
            merged += fn.body;
            merged += '\n';
        }
    }
    return merged;
}

std::string
Index::transitiveBodies(const Class &cls,
                        const std::set<std::string> &names) const
{
    std::set<std::string> included = names;
    std::string merged = mergedBodies(cls, included);
    for (;;) {
        const std::set<std::string> ids = identifierSet(merged);
        std::set<std::string> next = included;
        for (const Method &method : cls.methods) {
            if (ids.count(method.name))
                next.insert(method.name);
        }
        if (next == included)
            return merged;
        included = std::move(next);
        merged = mergedBodies(cls, included);
    }
}

std::set<std::string>
identifierSet(const std::string &text)
{
    std::set<std::string> ids;
    for (const std::string &line : splitLines(text)) {
        for (const auto &[id, col] : identifiersIn(line)) {
            (void)col;
            ids.insert(id);
        }
    }
    return ids;
}

Index
buildIndex(const std::vector<SourceFile> &files)
{
    Index index;
    for (const SourceFile &file : files) {
        FileParser parser(file, index);
        parser.run();
    }

    // Merge same-named classes (declaration split across #if branches
    // or re-opened in another file) into the first occurrence.
    std::vector<Class> merged;
    for (Class &cls : index.classes) {
        Class *existing = nullptr;
        for (Class &m : merged) {
            if (m.name == cls.name) {
                existing = &m;
                break;
            }
        }
        if (existing == nullptr) {
            merged.push_back(std::move(cls));
            continue;
        }
        for (Member &member : cls.members) {
            const bool duplicate = std::any_of(
                existing->members.begin(), existing->members.end(),
                [&](const Member &m) { return m.name == member.name; });
            if (!duplicate)
                existing->members.push_back(std::move(member));
        }
        for (Method &method : cls.methods)
            existing->methods.push_back(std::move(method));
    }
    index.classes = std::move(merged);
    return index;
}

} // namespace adrias::analyze
