/**
 * @file
 * Minimal severity-levelled logging used across the library.
 *
 * Follows the gem5 convention of separating user errors (fatal) from
 * internal invariant violations (panic).  All output goes to stderr so
 * bench binaries can print clean tables on stdout.
 */

#ifndef ADRIAS_COMMON_LOGGING_HH
#define ADRIAS_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace adrias
{

/** Log severity levels, ordered by verbosity. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/**
 * Process-wide log sink with a level filter.
 *
 * Thread-compatible: concurrent logging from multiple threads interleaves
 * whole lines only.
 */
class Logger
{
  public:
    /** @return the process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum severity that is emitted. */
    void setLevel(LogLevel level) { minLevel = level; }

    /** @return the current minimum severity. */
    LogLevel level() const { return minLevel; }

    /** Emit one line at the given severity (no trailing newline needed). */
    void log(LogLevel level, const std::string &message);

  private:
    Logger() = default;

    LogLevel minLevel = LogLevel::Warn;
};

/** Emit a debug-level message. */
void logDebug(const std::string &message);
/** Emit an info-level message. */
void logInfo(const std::string &message);
/** Emit a warning about questionable but survivable conditions. */
void logWarn(const std::string &message);
/** Emit an error message (does not terminate). */
void logError(const std::string &message);

/**
 * Abort on a user-caused unrecoverable condition (bad configuration,
 * invalid arguments).  Mirrors gem5's fatal().
 *
 * @throws std::runtime_error always.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Abort on an internal invariant violation (a bug in this library).
 * Mirrors gem5's panic().
 *
 * @throws std::logic_error always.
 */
[[noreturn]] void panic(const std::string &message);

} // namespace adrias

#endif // ADRIAS_COMMON_LOGGING_HH
