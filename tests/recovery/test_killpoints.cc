/**
 * @file
 * Kill-point chaos tests (ctest -L recovery): a RecoverableScenario is
 * crashed at every interesting instant — between ticks, mid-snapshot
 * write, just before the snapshot rename, mid-journal append — and a
 * fresh process recovering from the same directory must finish with a
 * ScenarioResult that is BITWISE identical to an uninterrupted run.
 *
 * On top of the kill matrix, the on-disk artifacts are corrupted
 * (truncated / bit-flipped / zero-length snapshots and journals)
 * between death and recovery; recovery must fall back or compact and
 * STILL reproduce the exact same bytes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/io/binary.hh"
#include "fault/crash.hh"
#include "recovery/recoverable.hh"
#include "scenario/runner.hh"

namespace adrias::recovery
{
namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

scenario::ScenarioConfig
scenarioConfig()
{
    scenario::ScenarioConfig config;
    config.durationSec = 300;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = 20230228;
    return config;
}

RecoveryConfig
recoveryConfig(const std::string &dir)
{
    RecoveryConfig config;
    config.dir = dir;
    config.checkpointEverySec = 60;
    config.keepSnapshots = 2;
    return config;
}

constexpr std::uint64_t kPolicySeed = 31;

/**
 * Serialize EVERY field of a ScenarioResult with exact bit patterns
 * (writeF64 round-trips NaN and -0.0), so two digests are equal iff
 * the results are bitwise identical.
 */
std::string
digest(const scenario::ScenarioResult &result)
{
    io::BinaryWriter out;
    out.writeU64(result.trace.size());
    for (const testbed::CounterSample &sample : result.trace)
        for (double v : sample)
            out.writeF64(v);
    out.writeI32Vector(result.concurrency);

    out.writeU64(result.records.size());
    for (const scenario::DeploymentRecord &r : result.records) {
        out.writeU64(r.id);
        out.writeString(r.name);
        out.writeU8(static_cast<std::uint8_t>(r.cls));
        out.writeU8(static_cast<std::uint8_t>(r.mode));
        out.writeI64(r.arrival);
        out.writeI64(r.completion);
        out.writeF64(r.execTimeSec);
        out.writeF64(r.p99Ms);
        out.writeF64(r.p999Ms);
        out.writeF64(r.meanLatencyMs);
        out.writeF64(r.meanSlowdown);
        out.writeF64(r.remoteTrafficGB);
        out.writeU64(r.migrations);
        for (const auto *window : {&r.historyWindow, &r.executionWindow}) {
            out.writeU64(window->size());
            for (const ml::Matrix &m : *window) {
                out.writeU64(m.rows());
                out.writeU64(m.cols());
                for (std::size_t i = 0; i < m.rows(); ++i)
                    for (std::size_t j = 0; j < m.cols(); ++j)
                        out.writeF64(m.at(i, j));
            }
        }
    }

    out.writeF64(result.totalRemoteTrafficGB);
    out.writeU64(result.faultSummary.linkFaultTicks);
    out.writeU64(result.faultSummary.samplesDropped);
    out.writeU64(result.faultSummary.samplesStale);
    out.writeU64(result.faultSummary.samplesCorrupted);
    out.writeU64(result.faultSummary.predictorCrashes);
    out.writeU64(result.faultSummary.predictorLatencySpikes);
    out.writeU64(result.watcherHealth.samplesAccepted);
    out.writeU64(result.watcherHealth.samplesRepaired);
    out.writeU64(result.watcherHealth.eventsRepaired);
    out.writeU64(result.watcherHealth.samplesDropped);
    out.writeU64(result.watcherHealth.stalenessSec);
    out.writeU64(result.watcherHealth.maxStalenessSec);
    return out.take();
}

/** The ground truth: the same scenario driven by the plain runner. */
const std::string &
baselineDigest()
{
    static const std::string d = [] {
        scenario::ScenarioRunner runner(scenarioConfig());
        scenario::RandomPlacement policy(kPolicySeed);
        return digest(runner.run(policy));
    }();
    return d;
}

/** Run phase 1 in `dir` until the planned crash kills it. */
void
runUntilCrash(const std::string &dir, const fault::CrashPlan &plan)
{
    RecoverableScenario victim(scenarioConfig(), {},
                               recoveryConfig(dir));
    scenario::RandomPlacement policy(kPolicySeed);
    victim.attachSection(policy);
    fault::CrashInjector injector(plan);
    victim.setCrashInjector(&injector);

    Result<RecoveryReport> started = victim.start();
    ASSERT_TRUE(started.ok());
    EXPECT_FALSE(started.value().restored);

    EXPECT_THROW((void)victim.run(policy), fault::InjectedCrash);
    EXPECT_TRUE(injector.fired());
}

/** Phase 2: a fresh "process" over the same directory finishes the
 *  run; returns its digest (reportOut optional). */
std::string
recoverAndFinish(const std::string &dir,
                 RecoveryReport *reportOut = nullptr)
{
    RecoverableScenario revived(scenarioConfig(), {},
                                recoveryConfig(dir));
    scenario::RandomPlacement policy(kPolicySeed);
    revived.attachSection(policy);

    Result<RecoveryReport> started = revived.start();
    EXPECT_TRUE(started.ok());
    if (!started.ok())
        return {};
    if (reportOut != nullptr)
        *reportOut = started.value();
    return digest(revived.run(policy));
}

TEST(KillPoints, UninterruptedRecoverableRunMatchesPlainRunner)
{
    // The checkpoint/journal machinery itself must not perturb the
    // simulation: no crash, just overhead.
    const std::string dir = freshDir("adrias_kp_uninterrupted");
    RecoverableScenario scenario(scenarioConfig(), {},
                                 recoveryConfig(dir));
    scenario::RandomPlacement policy(kPolicySeed);
    scenario.attachSection(policy);
    ASSERT_TRUE(scenario.start().ok());
    EXPECT_EQ(digest(scenario.run(policy)), baselineDigest());

    // The cadence produced snapshots and rotated journal epochs.
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/snap-240.adck"));
}

TEST(KillPoints, CrashBetweenTicksMidEpoch)
{
    const std::string dir = freshDir("adrias_kp_midepoch");
    runUntilCrash(dir, {fault::CrashSite::BetweenTicks, 150});

    RecoveryReport report;
    const std::string recovered = recoverAndFinish(dir, &report);
    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.snapshotTick, 120);
    EXPECT_EQ(recovered, baselineDigest());
}

TEST(KillPoints, CrashBeforeFirstCheckpointRecoversFromJournalAlone)
{
    const std::string dir = freshDir("adrias_kp_early");
    runUntilCrash(dir, {fault::CrashSite::BetweenTicks, 30});

    RecoveryReport report;
    const std::string recovered = recoverAndFinish(dir, &report);
    // No snapshot existed yet: fresh engine + full journal replay.
    EXPECT_FALSE(report.restored);
    EXPECT_GT(report.replayedDecisions, 0u);
    EXPECT_EQ(recovered, baselineDigest());
}

TEST(KillPoints, CrashMidCheckpointWrite)
{
    const std::string dir = freshDir("adrias_kp_midsnap");
    runUntilCrash(dir, {fault::CrashSite::MidCheckpoint, 120});

    // The snap-120 write died halfway: only a torn .tmp exists.
    EXPECT_FALSE(std::filesystem::exists(dir + "/snap-120.adck"));

    RecoveryReport report;
    const std::string recovered = recoverAndFinish(dir, &report);
    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.snapshotTick, 60);
    EXPECT_EQ(report.rejectedSnapshots, 0u);
    EXPECT_EQ(recovered, baselineDigest());
}

TEST(KillPoints, CrashBeforeCheckpointRename)
{
    const std::string dir = freshDir("adrias_kp_prerename");
    runUntilCrash(dir, {fault::CrashSite::BeforeCheckpointRename, 120});

    // Fully-written temp, never renamed: recovery must ignore it.
    EXPECT_TRUE(std::filesystem::exists(dir + "/snap-120.adck.tmp"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/snap-120.adck"));

    RecoveryReport report;
    const std::string recovered = recoverAndFinish(dir, &report);
    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.snapshotTick, 60);
    EXPECT_EQ(recovered, baselineDigest());
    EXPECT_FALSE(std::filesystem::exists(dir + "/snap-120.adck.tmp"));
}

TEST(KillPoints, CrashMidJournalAppend)
{
    const std::string dir = freshDir("adrias_kp_midappend");
    runUntilCrash(dir, {fault::CrashSite::MidJournalAppend, 130});

    RecoveryReport report;
    const std::string recovered = recoverAndFinish(dir, &report);
    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.snapshotTick, 120);
    // The half-written decision record was compacted away and
    // re-derived during the resumed run.
    EXPECT_GE(report.tornTails, 1u);
    EXPECT_EQ(recovered, baselineDigest());
}

TEST(KillPoints, CorruptNewestSnapshotFallsBackToOlder)
{
    for (const char *corruption : {"truncate", "bitflip", "zero"}) {
        const std::string dir = freshDir(
            std::string("adrias_kp_snapcorrupt_") + corruption);
        runUntilCrash(dir, {fault::CrashSite::BetweenTicks, 150});

        const std::string newest = dir + "/snap-120.adck";
        Result<std::string> intact = io::readFile(newest);
        ASSERT_TRUE(intact.ok());
        std::string bytes = intact.value();
        if (std::string(corruption) == "truncate")
            bytes.resize(bytes.size() / 2);
        else if (std::string(corruption) == "bitflip")
            bytes[bytes.size() / 2] ^= 0x04;
        else
            bytes.clear();
        ASSERT_TRUE(io::atomicWriteFile(newest, bytes).ok());

        RecoveryReport report;
        const std::string recovered = recoverAndFinish(dir, &report);
        EXPECT_TRUE(report.restored) << corruption;
        EXPECT_EQ(report.snapshotTick, 60) << corruption;
        EXPECT_EQ(report.rejectedSnapshots, 1u) << corruption;
        EXPECT_EQ(recovered, baselineDigest()) << corruption;
    }
}

TEST(KillPoints, CorruptJournalEpochStillRecoversBitwise)
{
    // Journaled decisions are verification-only — the policy RNG is
    // checkpointed, so dropped records are re-derived identically.
    // Every journal corruption class must therefore still converge to
    // the baseline bytes.
    for (const char *corruption : {"truncate", "bitflip", "zero"}) {
        const std::string dir = freshDir(
            std::string("adrias_kp_journalcorrupt_") + corruption);
        runUntilCrash(dir, {fault::CrashSite::BetweenTicks, 90});

        const std::string epoch = dir + "/journal-60.adj";
        ASSERT_TRUE(std::filesystem::exists(epoch)) << corruption;
        Result<std::string> intact = io::readFile(epoch);
        ASSERT_TRUE(intact.ok());
        std::string bytes = intact.value();
        // The replayed epoch must actually hold decisions, or the
        // corruption below would degenerate (guards seed changes).
        ASSERT_GT(bytes.size(), io::kRecordFileMagicSize + 16)
            << corruption;
        if (std::string(corruption) == "truncate")
            bytes.resize(bytes.size() - 3);
        else if (std::string(corruption) == "bitflip")
            bytes[io::kRecordFileMagicSize + 9] ^= 0x10;
        else
            bytes.clear();
        ASSERT_TRUE(io::atomicWriteFile(epoch, bytes).ok());

        RecoveryReport report;
        const std::string recovered = recoverAndFinish(dir, &report);
        EXPECT_TRUE(report.restored) << corruption;
        EXPECT_EQ(report.snapshotTick, 60) << corruption;
        EXPECT_GE(report.tornTails, 1u) << corruption;
        EXPECT_EQ(recovered, baselineDigest()) << corruption;
    }
}

TEST(KillPoints, SecondCrashDuringRecoveredRunStillConverges)
{
    // Crash, recover, crash again later, recover again: the invariant
    // holds across repeated deaths of the same run.
    const std::string dir = freshDir("adrias_kp_double");
    runUntilCrash(dir, {fault::CrashSite::BetweenTicks, 90});

    {
        RecoverableScenario second(scenarioConfig(), {},
                                   recoveryConfig(dir));
        scenario::RandomPlacement policy(kPolicySeed);
        second.attachSection(policy);
        fault::CrashInjector injector(
            {fault::CrashSite::BetweenTicks, 210});
        second.setCrashInjector(&injector);
        ASSERT_TRUE(second.start().ok());
        EXPECT_THROW((void)second.run(policy), fault::InjectedCrash);
        EXPECT_TRUE(injector.fired());
    }

    RecoveryReport report;
    const std::string recovered = recoverAndFinish(dir, &report);
    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.snapshotTick, 180);
    EXPECT_EQ(recovered, baselineDigest());
}

} // namespace
} // namespace adrias::recovery
