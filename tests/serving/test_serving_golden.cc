/**
 * @file
 * End-to-end serving tests against a real trained stack: the served
 * path must reproduce the inline orchestrator's decisions exactly
 * (same rules, same snapshot → same modes), stay invariant across
 * worker-thread counts, and the fused batch fast-path must match the
 * single-query entry point bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/threadpool.hh"
#include "core/adrias.hh"
#include "serving/served_policy.hh"

namespace adrias::serving
{
namespace
{

using core::AdriasStack;
using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::ScenarioRunner;

/** One trained stack shared across the suite (training is the cost). */
class ServingGoldenTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        AdriasStack::BuildOptions options;
        options.scenarios = 3;
        options.scenarioDurationSec = 1500;
        options.seed = 700;
        options.model.epochs = 18;
        options.model.hidden = 16;
        options.model.headWidth = 24;
        stack = new AdriasStack(options);
    }

    static void
    TearDownTestSuite()
    {
        delete stack;
        stack = nullptr;
    }

    static ScenarioConfig
    evalConfig(std::uint64_t seed)
    {
        ScenarioConfig config;
        config.durationSec = 1200;
        config.spawnMinSec = 5;
        config.spawnMaxSec = 25;
        config.seed = seed;
        return config;
    }

    /** Run one scenario through the serving daemon. */
    static ScenarioResult
    runServed(std::uint64_t seed, scenario::SignatureStore &signatures)
    {
        core::AdriasConfig policy;
        DecisionServiceConfig config;
        config.shards = 4;
        DecisionService service(stack->predictor(), signatures, policy,
                                config);
        ServedPolicyConfig adapter;
        // Refresh every tick: the served snapshot then equals the
        // fresh window the inline orchestrator reads per arrival.
        adapter.epochTicks = 1;
        ServedPlacementPolicy served(service, signatures, adapter);
        ScenarioRunner runner(evalConfig(seed));
        ScenarioResult result = runner.run(served);
        // Synchronous façade leaves nothing behind.
        EXPECT_EQ(service.inflightCount(), 0u);
        EXPECT_EQ(service.stats().rejectedBackpressure, 0u);
        return result;
    }

    static AdriasStack *stack;
};

AdriasStack *ServingGoldenTest::stack = nullptr;

/** (id, mode) pairs sorted by deployment id. */
std::vector<std::pair<DeploymentId, MemoryMode>>
placements(const ScenarioResult &result)
{
    std::vector<std::pair<DeploymentId, MemoryMode>> modes;
    for (const auto &record : result.records) {
        if (record.cls == WorkloadClass::Interference)
            continue;
        modes.emplace_back(record.id, record.mode);
    }
    std::sort(modes.begin(), modes.end());
    return modes;
}

TEST_F(ServingGoldenTest, ServedDecisionsMatchInlineOrchestrator)
{
    // Same trained models, same rules, per-tick snapshots: the daemon
    // must place every deployment exactly as the inline path does.
    scenario::SignatureStore inline_store = stack->signatures();
    core::AdriasOrchestrator inline_policy(stack->predictor(),
                                           inline_store, {});
    ScenarioRunner inline_runner(evalConfig(901));
    const ScenarioResult inline_result =
        inline_runner.run(inline_policy);

    scenario::SignatureStore served_store = stack->signatures();
    const ScenarioResult served_result = runServed(901, served_store);

    const auto expected = placements(inline_result);
    const auto actual = placements(served_result);
    ASSERT_EQ(expected.size(), actual.size());
    ASSERT_FALSE(expected.empty());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].first, actual[i].first) << "row " << i;
        EXPECT_EQ(expected[i].second, actual[i].second) << "row " << i;
    }
}

TEST_F(ServingGoldenTest, DecisionsInvariantAcrossThreadCounts)
{
    std::vector<std::vector<std::pair<DeploymentId, MemoryMode>>> runs;
    for (unsigned threads : {1u, 2u, 0u}) { // 0 = hardware default
        scenario::SignatureStore store = stack->signatures();
        if (threads == 0) {
            runs.push_back(placements(runServed(902, store)));
        } else {
            ScopedThreadOverride override_(threads);
            runs.push_back(placements(runServed(902, store)));
        }
    }
    ASSERT_FALSE(runs[0].empty());
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[0].size(), runs[r].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i) {
            EXPECT_EQ(runs[0][i].first, runs[r][i].first);
            EXPECT_EQ(runs[0][i].second, runs[r][i].second)
                << "thread run " << r << " row " << i;
        }
    }
}

TEST_F(ServingGoldenTest, FusedBatchMatchesSingleQueriesExactly)
{
    // Harvest real history windows from a scenario trace.
    scenario::SignatureStore store = stack->signatures();
    core::AdriasOrchestrator policy(stack->predictor(), store, {});
    ScenarioRunner runner(evalConfig(903));
    const ScenarioResult result = runner.run(policy);

    std::vector<models::PredictorBase::PerfQuery> queries;
    std::vector<const scenario::DeploymentRecord *> owners;
    for (const auto &record : result.records) {
        if (record.cls != WorkloadClass::BestEffort)
            continue;
        if (record.historyWindow.empty() || !store.has(record.name))
            continue;
        const MemoryMode mode = queries.size() % 2 == 0
                                    ? MemoryMode::Local
                                    : MemoryMode::Remote;
        queries.push_back({&record.historyWindow,
                           &store.get(record.name), mode});
        owners.push_back(&record);
        if (queries.size() == 37) // odd width: exercises partial chunks
            break;
    }
    ASSERT_GE(queries.size(), 8u);

    const std::vector<double> batched =
        stack->predictor().predictPerformanceBatch(
            WorkloadClass::BestEffort, queries);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const double single = stack->predictor().predictPerformance(
            WorkloadClass::BestEffort, *queries[i].history,
            *queries[i].signature, queries[i].mode);
        EXPECT_DOUBLE_EQ(batched[i], single)
            << "row " << i << " app " << owners[i]->name;
    }
}

TEST_F(ServingGoldenTest, BatchResultsInvariantAcrossThreadCounts)
{
    scenario::SignatureStore store = stack->signatures();
    core::AdriasOrchestrator policy(stack->predictor(), store, {});
    ScenarioRunner runner(evalConfig(904));
    const ScenarioResult result = runner.run(policy);

    std::vector<models::PredictorBase::PerfQuery> queries;
    for (const auto &record : result.records) {
        if (record.cls != WorkloadClass::BestEffort ||
            record.historyWindow.empty() || !store.has(record.name))
            continue;
        queries.push_back({&record.historyWindow,
                           &store.get(record.name), MemoryMode::Remote});
        if (queries.size() == 16)
            break;
    }
    ASSERT_GE(queries.size(), 4u);

    std::vector<std::vector<double>> outputs;
    for (unsigned threads : {1u, 2u}) {
        ScopedThreadOverride override_(threads);
        outputs.push_back(stack->predictor().predictPerformanceBatch(
            WorkloadClass::BestEffort, queries));
    }
    ASSERT_EQ(outputs[0].size(), outputs[1].size());
    for (std::size_t i = 0; i < outputs[0].size(); ++i)
        EXPECT_DOUBLE_EQ(outputs[0][i], outputs[1][i]) << "row " << i;
}

} // namespace
} // namespace adrias::serving
