/** @file Unit tests for common/csv. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

namespace adrias
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path = ::testing::TempDir() + "adrias_csv_test.csv";

    void TearDown() override { std::remove(path.c_str()); }
};

TEST_F(CsvTest, WritesPlainRows)
{
    {
        CsvWriter w(path);
        w.writeRow({"a", "b", "c"});
        w.writeRow({"1", "2", "3"});
        EXPECT_EQ(w.rowCount(), 2u);
        w.close();
    }
    EXPECT_EQ(slurp(path), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, WritesNumericRows)
{
    {
        CsvWriter w(path);
        w.writeRow("label", {1.5, 2.25});
        w.close();
    }
    const std::string content = slurp(path);
    EXPECT_NE(content.find("label,"), std::string::npos);
    EXPECT_NE(content.find("1.5"), std::string::npos);
    EXPECT_NE(content.find("2.25"), std::string::npos);
}

TEST(CsvEscape, QuotesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterErrors, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

} // namespace
} // namespace adrias
