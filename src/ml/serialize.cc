#include "ml/serialize.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "ml/scaler.hh"

namespace adrias::ml
{

void
saveParams(std::ostream &out, const std::vector<Param *> &params)
{
    out << "adrias-params v1\n" << params.size() << "\n";
    out << std::setprecision(17);
    for (const Param *p : params) {
        out << p->name << " " << p->value.rows() << " " << p->value.cols()
            << "\n";
        for (double v : p->value.raw())
            out << v << " ";
        out << "\n";
    }
}

void
loadParams(std::istream &in, const std::vector<Param *> &params)
{
    std::string magic, version;
    in >> magic >> version;
    if (magic != "adrias-params" || version != "v1")
        fatal("loadParams: unrecognized parameter file header");
    std::size_t count = 0;
    in >> count;
    if (count != params.size())
        fatal("loadParams: parameter count mismatch");
    for (Param *p : params) {
        std::string name;
        std::size_t rows = 0, cols = 0;
        in >> name >> rows >> cols;
        if (!in)
            fatal("loadParams: truncated file");
        if (rows != p->value.rows() || cols != p->value.cols()) {
            fatal("loadParams: shape mismatch for '" + name + "'");
        }
        for (double &v : p->value.raw()) {
            in >> v;
            if (!in)
                fatal("loadParams: truncated tensor data");
        }
    }
}

void
saveScaler(std::ostream &out, const StandardScaler &scaler)
{
    if (!scaler.fitted())
        fatal("saveScaler: scaler is not fitted");
    out << "adrias-scaler v1\n" << scaler.mean().size() << "\n";
    out << std::setprecision(17);
    for (double m : scaler.mean())
        out << m << " ";
    out << "\n";
    for (double s : scaler.stddev())
        out << s << " ";
    out << "\n";
}

void
loadScaler(std::istream &in, StandardScaler &scaler)
{
    std::string magic, version;
    in >> magic >> version;
    if (magic != "adrias-scaler" || version != "v1")
        fatal("loadScaler: unrecognized scaler header");
    std::size_t width = 0;
    in >> width;
    std::vector<double> means(width), stds(width);
    for (double &m : means)
        in >> m;
    for (double &s : stds)
        in >> s;
    if (!in)
        fatal("loadScaler: truncated scaler data");
    scaler.restore(std::move(means), std::move(stds));
}

void
saveStateTensors(std::ostream &out, const std::vector<Matrix *> &tensors)
{
    out << "adrias-state v1\n" << tensors.size() << "\n";
    out << std::setprecision(17);
    for (const Matrix *m : tensors) {
        out << m->rows() << " " << m->cols() << "\n";
        for (double v : m->raw())
            out << v << " ";
        out << "\n";
    }
}

void
loadStateTensors(std::istream &in, const std::vector<Matrix *> &tensors)
{
    std::string magic, version;
    in >> magic >> version;
    if (magic != "adrias-state" || version != "v1")
        fatal("loadStateTensors: unrecognized state header");
    std::size_t count = 0;
    in >> count;
    if (count != tensors.size())
        fatal("loadStateTensors: state tensor count mismatch");
    for (Matrix *m : tensors) {
        std::size_t rows = 0, cols = 0;
        in >> rows >> cols;
        if (rows != m->rows() || cols != m->cols())
            fatal("loadStateTensors: state tensor shape mismatch");
        for (double &v : m->raw()) {
            in >> v;
            if (!in)
                fatal("loadStateTensors: truncated state data");
        }
    }
}

void
saveParamsToFile(const std::string &path,
                 const std::vector<Param *> &params)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveParamsToFile: cannot open '" + path + "'");
    saveParams(out, params);
}

void
loadParamsFromFile(const std::string &path,
                   const std::vector<Param *> &params)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadParamsFromFile: cannot open '" + path + "'");
    loadParams(in, params);
}

} // namespace adrias::ml
