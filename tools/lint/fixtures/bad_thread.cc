// Lint fixture: raw-thread violations.  Parsed, never compiled.

#include <thread>
#include <future>

void
spawn()
{
    std::thread worker([] {});
    auto result = std::async([] { return 1; });
    worker.join();
}

void
sanctioned()
{
    // NOLINTNEXTLINE(raw-thread)
    std::thread other([] {});
}
