/**
 * @file
 * Long Short-Term Memory layer with full backpropagation through time.
 *
 * The Adrias Predictor (paper §V-B) stacks two LSTM layers over the
 * monitored-metric time series; this class implements one such layer
 * over a time-major sequence of (batch x features) matrices.
 *
 * Two kernel implementations coexist (DESIGN.md §11): the default
 * *fused* path runs each timestep as two GEMMs plus one fused
 * element-wise pass over persistent workspaces (no per-step
 * temporaries), while the *reference* path keeps the original
 * matrix-algebra formulation.  Both produce bitwise-identical outputs,
 * gradients, and trained weights — the equivalence suite in
 * tests/ml/test_fused_equivalence.cc enforces this — so the reference
 * path doubles as executable documentation and as the oracle for the
 * fused kernels.
 */

#ifndef ADRIAS_ML_LSTM_HH
#define ADRIAS_ML_LSTM_HH

#include <vector>

#include "common/rng.hh"
#include "ml/layer.hh"

namespace adrias::ml
{

/** @return whether Lstm uses the fused kernels (default true). */
bool lstmFusedKernels();

/**
 * Toggle the fused LSTM kernels globally.  The reference path exists
 * for equivalence testing and A/B benchmarking; results are bitwise
 * identical either way.  Not synchronized: call from single-threaded
 * setup code only.
 */
void setLstmFusedKernels(bool on);

/**
 * Single LSTM layer.
 *
 * Gate layout inside the packed 4H-wide weight matrices is
 * [input | forget | cell | output].  The forget-gate bias is
 * initialized to one, the standard remedy for early vanishing
 * gradients.
 */
class Lstm
{
  public:
    /**
     * @param input_size per-step feature width.
     * @param hidden_size state width H.
     * @param rng weight-initialization source.
     */
    Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng);

    /**
     * Run the layer across a sequence (initial state is zero).
     *
     * @param sequence time-major input; sequence[t] is (batch x input).
     * @return hidden states; result[t] is (batch x hidden).
     */
    std::vector<Matrix> forwardSequence(const std::vector<Matrix> &sequence);

    /**
     * BPTT through the most recent forwardSequence().
     *
     * @param grad_hidden dLoss/dH_t for every step (zero matrices are
     *        fine for steps whose output is unused).
     * @return dLoss/dX_t for every step; parameter gradients accumulate.
     */
    std::vector<Matrix>
    backwardSequence(const std::vector<Matrix> &grad_hidden);

    /** @return trainable parameters (Wx, Wh, bias). */
    std::vector<Param *> params();

    /**
     * Inference fast-path toggle: when on, forwardSequence() skips all
     * per-step cache construction (outputs are bitwise identical) and
     * a subsequent backwardSequence() panics.  Orthogonal to any
     * train/eval statistics mode — eval-mode *backward* is a supported
     * use elsewhere, so inference must be requested explicitly.
     */
    void setInference(bool on) { isInference = on; }

    /** @return whether the inference fast-path is active. */
    bool inference() const { return isInference; }

    std::size_t inputSize() const { return wx.value.rows(); }
    std::size_t hiddenSize() const { return wh.value.rows(); }

  private:
    Param wx; ///< (input x 4H)
    Param wh; ///< (hidden x 4H)
    Param b;  ///< (1 x 4H)

    bool isInference = false;

    /** Which kernel family produced the caches backward will consume. */
    bool lastForwardFused = true;

    /**
     * Per-timestep state kept by the fused forward pass for BPTT:
     * post-activation gates packed (batch x 4H) in [i|f|g|o] layout,
     * plus the two state tensors.  c_prev for step t is read from
     * step t-1's `cell` (zeros at t = 0), so it is not stored.
     */
    struct StepCache
    {
        Matrix input;
        Matrix hPrev;
        Matrix gates;
        Matrix cell;
        Matrix tanhCell;
    };

    /** Everything the reference backward needs about one timestep. */
    struct RefStepCache
    {
        Matrix input;
        Matrix hPrev;
        Matrix cPrev;
        Matrix gateI;
        Matrix gateF;
        Matrix gateG;
        Matrix gateO;
        Matrix cell;
        Matrix tanhCell;
    };

    /**
     * Caches persist across calls so steady-state training reuses
     * their storage instead of reallocating every sequence.
     */
    std::vector<StepCache> caches;
    std::vector<RefStepCache> refCaches;

    /**
     * Persistent workspaces for the fused kernels (DESIGN.md §11).
     * wsXall stacks the whole input sequence (steps*batch x input) so
     * all x*Wx products run as one GEMM into wsZx.  wsZx / wsZh hold
     * the two GEMM products separately — fusing them into one
     * accumulator would interleave their k-loops and change the
     * floating-point addition order.  wsDz is the packed (batch x 4H)
     * pre-activation gradient; wsGradW stages each parameter-gradient
     * product so accumulation stays compute-then-add, exactly like the
     * reference path.
     */
    Matrix wsXall;
    Matrix wsZx;
    Matrix wsZh;
    Matrix wsC;
    Matrix wsDz;
    Matrix wsDhNext;
    Matrix wsDcNext;
    Matrix wsGradW;

    std::vector<Matrix> forwardFused(const std::vector<Matrix> &sequence);
    std::vector<Matrix>
    forwardReference(const std::vector<Matrix> &sequence);
    std::vector<Matrix>
    backwardFused(const std::vector<Matrix> &grad_hidden);
    std::vector<Matrix>
    backwardReference(const std::vector<Matrix> &grad_hidden);
};

} // namespace adrias::ml

#endif // ADRIAS_ML_LSTM_HH
