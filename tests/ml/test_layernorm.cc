/** @file Tests for LayerNorm and the BatchNorm stats-estimation API. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/batchnorm.hh"
#include "ml/layernorm.hh"
#include "ml/loss.hh"
#include "ml/sequential.hh"
#include "gradient_check.hh"

namespace adrias::ml
{
namespace
{

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (double &x : m.raw())
        x = rng.gaussian(1.0, 2.0);
    return m;
}

TEST(LayerNorm, OutputRowsAreStandardized)
{
    Rng rng(1);
    LayerNorm ln(8);
    const Matrix out = ln.forward(randomMatrix(5, 8, rng));
    for (std::size_t r = 0; r < out.rows(); ++r) {
        double mean = 0.0;
        for (std::size_t c = 0; c < out.cols(); ++c)
            mean += out.at(r, c);
        mean /= 8.0;
        double var = 0.0;
        for (std::size_t c = 0; c < out.cols(); ++c) {
            const double d = out.at(r, c) - mean;
            var += d * d;
        }
        var /= 8.0;
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(LayerNorm, IdenticalInTrainAndEval)
{
    Rng rng(2);
    LayerNorm ln(4);
    const Matrix input = randomMatrix(3, 4, rng);
    ln.setTraining(true);
    const Matrix train_out = ln.forward(input);
    ln.setTraining(false);
    const Matrix eval_out = ln.forward(input);
    EXPECT_LT((train_out - eval_out).maxAbs(), 1e-12);
}

TEST(LayerNorm, SingleSampleWorks)
{
    // The property BatchNorm lacks: batch size 1 is fine.
    Rng rng(3);
    LayerNorm ln(6);
    const Matrix out = ln.forward(randomMatrix(1, 6, rng));
    EXPECT_EQ(out.rows(), 1u);
    EXPECT_LT(out.maxAbs(), 10.0);
}

TEST(LayerNorm, InputGradientMatchesNumerical)
{
    Rng rng(4);
    LayerNorm ln(5);
    Matrix input = randomMatrix(4, 5, rng);
    Matrix target = randomMatrix(4, 5, rng);

    Matrix grad_pred;
    mseLoss(ln.forward(input), target, &grad_pred);
    const Matrix grad_input = ln.backward(grad_pred);
    const double err = testutil::maxGradientError(
        input, grad_input,
        [&] { return mseLoss(ln.forward(input), target); });
    EXPECT_LT(err, 1e-4);
}

TEST(LayerNorm, ParameterGradientsMatchNumerical)
{
    Rng rng(5);
    LayerNorm ln(4);
    Matrix input = randomMatrix(3, 4, rng);
    Matrix target = randomMatrix(3, 4, rng);

    for (Param *p : ln.params())
        p->zeroGrad();
    Matrix grad_pred;
    mseLoss(ln.forward(input), target, &grad_pred);
    ln.backward(grad_pred);

    for (Param *p : ln.params()) {
        const double err = testutil::maxGradientError(
            p->value, p->grad,
            [&] { return mseLoss(ln.forward(input), target); });
        EXPECT_LT(err, 1e-4) << p->name;
    }
}

TEST(LayerNorm, WidthMismatchPanics)
{
    LayerNorm ln(4);
    EXPECT_THROW(ln.forward(Matrix(2, 5)), std::logic_error);
}

TEST(HeadNorm, FactorySelectsNormalization)
{
    Rng rng(6);
    auto batch_head =
        makeNonLinearHead(4, 8, 1, 0.0, rng, HeadNorm::Batch);
    auto layer_head =
        makeNonLinearHead(4, 8, 1, 0.0, rng, HeadNorm::Layer);
    // Same layer count either way (norm layer swapped in place).
    EXPECT_EQ(batch_head->layerCount(), layer_head->layerCount());

    // LayerNorm head: train and eval forward agree exactly.
    layer_head->setTraining(true);
    const Matrix input = randomMatrix(1, 4, rng);
    const Matrix a = layer_head->forward(input);
    layer_head->setTraining(false);
    const Matrix b = layer_head->forward(input);
    EXPECT_LT((a - b).maxAbs(), 1e-12);
}

TEST(BatchNormEstimation, ReplacesRunningStatsWithPopulation)
{
    Rng rng(7);
    BatchNorm1d bn(2, 0.01); // tiny momentum: running stats lag badly
    Matrix data = randomMatrix(256, 2, rng);

    // A few training passes leave the (slow) running stats far off.
    for (int i = 0; i < 3; ++i)
        bn.forward(data);
    // Estimation pass computes exact population statistics.
    bn.beginStatsEstimation();
    bn.forward(data);
    bn.endStatsEstimation();

    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < data.rows(); ++r)
            mean += data.at(r, c);
        mean /= static_cast<double>(data.rows());
        EXPECT_NEAR(bn.runningMean().at(0, c), mean, 1e-9);
    }
}

TEST(BatchNormEstimation, EndWithoutBeginPanics)
{
    BatchNorm1d bn(2);
    EXPECT_THROW(bn.endStatsEstimation(), std::logic_error);
}

TEST(BatchNormEstimation, EmptyEstimationKeepsOldStats)
{
    BatchNorm1d bn(1);
    bn.setRunningStats(Matrix(1, 1, {5.0}), Matrix(1, 1, {2.0}));
    bn.beginStatsEstimation();
    bn.endStatsEstimation(); // no forward in between
    EXPECT_DOUBLE_EQ(bn.runningMean().at(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(bn.runningVar().at(0, 0), 2.0);
}

} // namespace
} // namespace adrias::ml
