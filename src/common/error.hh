/**
 * @file
 * Typed error handling for untrusted input (dataset files, model
 * checkpoints, CSV).
 *
 * The repo's convention splits failures in two: programming errors
 * panic() and user errors fatal().  Parsers sit in between — a
 * malformed file is an *expected* outcome the caller may want to
 * handle (skip the cache, rebuild the dataset) rather than die on.
 * They return Result<T>: either a value or an adrias::Error carrying a
 * machine-checkable ErrorCode plus a human-readable message.  Legacy
 * throwing wrappers stay available via Result::expect().
 */

#ifndef ADRIAS_COMMON_ERROR_HH
#define ADRIAS_COMMON_ERROR_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace adrias
{

/** What went wrong while consuming untrusted input. */
enum class ErrorCode
{
    Io,            ///< file cannot be opened/read
    BadHeader,     ///< missing/unrecognized magic or version
    Geometry,      ///< shape/count disagrees with the expectation
    Truncated,     ///< input ended before the declared payload
    BadNumber,     ///< numeric field failed strict parsing
    BadToken,      ///< unknown enumeration token
    TrailingData,  ///< extra cells/bytes after the payload
    BadSyntax,     ///< structural error (e.g. unterminated CSV quote)
};

/** Stable lower-case name of an ErrorCode ("bad-number", ...). */
[[nodiscard]] std::string errorCodeName(ErrorCode code);

/** A typed failure: code for dispatch, message for humans. */
struct Error
{
    ErrorCode code = ErrorCode::Io;
    std::string message;

    /** "[bad-number] loadScaler: ..." */
    [[nodiscard]] std::string
    toString() const
    {
        return "[" + errorCodeName(code) + "] " + message;
    }
};

/** Shorthand failure constructor. */
[[nodiscard]] inline Error
makeError(ErrorCode code, std::string message)
{
    return Error{code, std::move(message)};
}

/**
 * Either a T or an Error.  Construction is implicit from both sides so
 * parsers read naturally:
 *
 *     Result<double> parse(...) {
 *         if (bad) return makeError(ErrorCode::BadNumber, "...");
 *         return value;
 *     }
 *
 * Accessing the wrong side is a programming error (panics).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : state(std::move(value)) {}
    Result(Error error) : state(std::move(error)) {}

    [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state); }
    explicit operator bool() const { return ok(); }

    [[nodiscard]] const T &
    value() const
    {
        if (!ok())
            panic("Result::value() on error: " + error().toString());
        return std::get<T>(state);
    }

    [[nodiscard]] T &
    value()
    {
        if (!ok())
            panic("Result::value() on error: " + error().toString());
        return std::get<T>(state);
    }

    [[nodiscard]] const Error &
    error() const
    {
        if (ok())
            panic("Result::error() on success");
        return std::get<Error>(state);
    }

    /** Value, or `fallback` when this holds an error. */
    [[nodiscard]] T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(state) : std::move(fallback);
    }

    /**
     * Bridge to the throwing convention: the value, or fatal() with
     * the error's message (std::runtime_error).
     */
    [[nodiscard]] const T &
    expect() const
    {
        if (!ok())
            fatal(error().toString());
        return std::get<T>(state);
    }

  private:
    std::variant<T, Error> state;
};

/** Result<void>: success carries nothing, failure carries an Error. */
template <>
class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(Error error) : failure(std::move(error)) {}

    [[nodiscard]] bool ok() const { return !failure.has_value(); }
    explicit operator bool() const { return ok(); }

    [[nodiscard]] const Error &
    error() const
    {
        if (ok())
            panic("Result::error() on success");
        return *failure;
    }

    /** fatal() with the error's message unless this is a success. */
    void
    expect() const
    {
        if (!ok())
            fatal(error().toString());
    }

  private:
    std::optional<Error> failure;
};

/**
 * Strict double parser: the whole string must be one finite-syntax
 * floating-point literal (leading/trailing junk and empty input are
 * errors — unlike std::stod, which accepts "12abc").
 */
[[nodiscard]] Result<double> parseDouble(std::string_view text);

/** Strict non-negative integer parser with overflow detection. */
[[nodiscard]] Result<std::size_t> parseSize(std::string_view text);

} // namespace adrias

#endif // ADRIAS_COMMON_ERROR_HH
