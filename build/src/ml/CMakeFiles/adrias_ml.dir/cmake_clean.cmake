file(REMOVE_RECURSE
  "CMakeFiles/adrias_ml.dir/activation.cc.o"
  "CMakeFiles/adrias_ml.dir/activation.cc.o.d"
  "CMakeFiles/adrias_ml.dir/batchnorm.cc.o"
  "CMakeFiles/adrias_ml.dir/batchnorm.cc.o.d"
  "CMakeFiles/adrias_ml.dir/dense.cc.o"
  "CMakeFiles/adrias_ml.dir/dense.cc.o.d"
  "CMakeFiles/adrias_ml.dir/dropout.cc.o"
  "CMakeFiles/adrias_ml.dir/dropout.cc.o.d"
  "CMakeFiles/adrias_ml.dir/layernorm.cc.o"
  "CMakeFiles/adrias_ml.dir/layernorm.cc.o.d"
  "CMakeFiles/adrias_ml.dir/loss.cc.o"
  "CMakeFiles/adrias_ml.dir/loss.cc.o.d"
  "CMakeFiles/adrias_ml.dir/lstm.cc.o"
  "CMakeFiles/adrias_ml.dir/lstm.cc.o.d"
  "CMakeFiles/adrias_ml.dir/matrix.cc.o"
  "CMakeFiles/adrias_ml.dir/matrix.cc.o.d"
  "CMakeFiles/adrias_ml.dir/optimizer.cc.o"
  "CMakeFiles/adrias_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/adrias_ml.dir/scaler.cc.o"
  "CMakeFiles/adrias_ml.dir/scaler.cc.o.d"
  "CMakeFiles/adrias_ml.dir/sequential.cc.o"
  "CMakeFiles/adrias_ml.dir/sequential.cc.o.d"
  "CMakeFiles/adrias_ml.dir/serialize.cc.o"
  "CMakeFiles/adrias_ml.dir/serialize.cc.o.d"
  "libadrias_ml.a"
  "libadrias_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
