/**
 * @file
 * Inverted dropout regularization layer.
 */

#ifndef ADRIAS_ML_DROPOUT_HH
#define ADRIAS_ML_DROPOUT_HH

#include "common/rng.hh"
#include "ml/layer.hh"

namespace adrias::ml
{

/**
 * Inverted dropout: at training time each activation is zeroed with
 * probability p and the survivors are scaled by 1/(1-p); at eval time
 * the layer is the identity.
 */
class Dropout : public Layer
{
  public:
    /**
     * @param probability drop probability in [0, 1).
     * @param rng mask source.
     */
    Dropout(double probability, Rng &rng);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

    double probability() const { return p; }

  private:
    double p;
    Rng *rng;
    Matrix lastMask;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_DROPOUT_HH
