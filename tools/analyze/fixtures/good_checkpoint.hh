// Analyzer fixture: a checkpoint-coverage-clean class.  Never
// compiled — parsed by tools/analyze self-tests.

#ifndef ADRIAS_ANALYZE_FIXTURE_GOOD_CHECKPOINT_HH
#define ADRIAS_ANALYZE_FIXTURE_GOOD_CHECKPOINT_HH

#include "common/io/checkpoint_annotations.hh"
#include "common/io/checkpointable.hh"

namespace adrias::fixture
{

class Odometer final : public io::Checkpointable
{
  public:
    std::string checkpointTag() const override { return "odometer"; }

    void
    saveState(io::BinaryWriter &out) const override
    {
        writeCore(out);
    }

    [[nodiscard]] Result<void>
    restoreState(io::BinaryReader &in) override
    {
        ticks = in.readU64();
        distance = in.readF64();
        return {};
    }

  private:
    std::uint64_t ticks = 0;
    double distance = 0.0;

    /** Waived with a reason. */
    int reportEvery ADRIAS_NOT_CHECKPOINTED(
        "construction-time cadence, re-supplied on restore") = 10;

    void
    writeCore(io::BinaryWriter &out) const
    {
        out.writeU64(ticks);
        out.writeF64(distance);
    }
};

} // namespace adrias::fixture

#endif // ADRIAS_ANALYZE_FIXTURE_GOOD_CHECKPOINT_HH
