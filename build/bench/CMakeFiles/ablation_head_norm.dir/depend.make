# Empty dependencies file for ablation_head_norm.
# This may be replaced when dependencies are built.
