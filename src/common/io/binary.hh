/**
 * @file
 * Exact binary (de)serialization for checkpoint payloads.
 *
 * Checkpoint/restore must be *bitwise* faithful: a restored run has to
 * produce byte-identical output to an uninterrupted one.  Text formats
 * round floating-point values, so snapshots use this little-endian
 * binary encoding instead; doubles travel as their raw 64-bit pattern
 * (std::bit_cast), which restores NaN payloads and signed zeros
 * exactly.
 *
 * BinaryWriter appends to an in-memory buffer (the DurableFile layer
 * frames + checksums the finished payload); BinaryReader consumes a
 * payload that already passed its CRC check, so decode failures signal
 * either version skew or a serialization bug.  The reader is
 * sticky-failing: the first malformed read latches an error, every
 * subsequent read returns zeros, and the caller checks `status()` once
 * at the end — restore code stays linear instead of branching on every
 * field.
 */

#ifndef ADRIAS_COMMON_IO_BINARY_HH
#define ADRIAS_COMMON_IO_BINARY_HH

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hh"

namespace adrias::io
{

/** Append-only little-endian encoder over a growable buffer. */
class BinaryWriter
{
  public:
    void
    writeU8(std::uint8_t v)
    {
        buffer.push_back(static_cast<char>(v));
    }

    void
    writeU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buffer.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }

    void
    writeU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buffer.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }

    void
    writeI64(std::int64_t v)
    {
        writeU64(static_cast<std::uint64_t>(v));
    }

    void
    writeBool(bool v)
    {
        writeU8(v ? 1 : 0);
    }

    /** Exact bit pattern: NaNs and -0.0 round-trip unchanged. */
    void
    writeF64(double v)
    {
        writeU64(std::bit_cast<std::uint64_t>(v));
    }

    void
    writeString(std::string_view s)
    {
        writeU64(s.size());
        buffer.append(s.data(), s.size());
    }

    void
    writeF64Vector(const std::vector<double> &values)
    {
        writeU64(values.size());
        for (double v : values)
            writeF64(v);
    }

    void
    writeI32Vector(const std::vector<int> &values)
    {
        writeU64(values.size());
        for (int v : values)
            writeU32(static_cast<std::uint32_t>(v));
    }

    /** @return the encoded payload so far. */
    const std::string &data() const { return buffer; }

    /** Move the payload out (writer becomes empty). */
    std::string
    take()
    {
        std::string out = std::move(buffer);
        buffer.clear();
        return out;
    }

  private:
    std::string buffer;
};

/** Sticky-failing little-endian decoder over a CRC-verified payload. */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view payload) : data(payload) {}

    std::uint8_t
    readU8()
    {
        if (!require(1))
            return 0;
        return static_cast<std::uint8_t>(data[cursor++]);
    }

    std::uint32_t
    readU32()
    {
        if (!require(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data[cursor + i]))
                 << (8 * i);
        cursor += 4;
        return v;
    }

    std::uint64_t
    readU64()
    {
        if (!require(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data[cursor + i]))
                 << (8 * i);
        cursor += 8;
        return v;
    }

    std::int64_t readI64() { return static_cast<std::int64_t>(readU64()); }

    bool readBool() { return readU8() != 0; }

    double readF64() { return std::bit_cast<double>(readU64()); }

    std::string
    readString()
    {
        const std::uint64_t size = readU64();
        if (!require(size))
            return {};
        std::string out(data.substr(cursor, size));
        cursor += size;
        return out;
    }

    std::vector<double>
    readF64Vector()
    {
        const std::uint64_t size = readU64();
        // A corrupt length must not trigger a huge allocation: every
        // element needs 8 payload bytes, so bound by what remains
        // (divide, don't multiply — size * 8 could wrap).
        if (size > remaining() / 8) {
            failed = true;
            return {};
        }
        std::vector<double> values;
        values.reserve(size);
        for (std::uint64_t i = 0; i < size; ++i)
            values.push_back(readF64());
        return values;
    }

    std::vector<int>
    readI32Vector()
    {
        const std::uint64_t size = readU64();
        if (size > remaining() / 4) {
            failed = true;
            return {};
        }
        std::vector<int> values;
        values.reserve(size);
        for (std::uint64_t i = 0; i < size; ++i)
            values.push_back(static_cast<int>(readU32()));
        return values;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data.size() - cursor; }

    /** @return true while no read has failed. */
    bool ok() const { return !failed; }

    /**
     * Final verdict: success only when every read satisfied its bounds
     * AND the payload was consumed exactly (trailing bytes mean the
     * producer wrote a newer, longer layout).
     */
    [[nodiscard]] Result<void>
    status() const
    {
        if (failed)
            return makeError(ErrorCode::Truncated,
                             "binary payload ended before the declared "
                             "fields");
        if (remaining() != 0)
            return makeError(ErrorCode::TrailingData,
                             "binary payload has " +
                                 std::to_string(remaining()) +
                                 " unconsumed bytes");
        return {};
    }

  private:
    std::string_view data;
    std::size_t cursor = 0;
    bool failed = false;

    bool
    require(std::uint64_t bytes)
    {
        if (failed)
            return false;
        if (bytes > data.size() - cursor) {
            failed = true;
            return false;
        }
        return true;
    }
};

} // namespace adrias::io

#endif // ADRIAS_COMMON_IO_BINARY_HH
