# Empty compiler generated dependencies file for fig13_be_model.
# This may be replaced when dependencies are built.
