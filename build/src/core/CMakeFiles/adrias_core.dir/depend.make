# Empty dependencies file for adrias_core.
# This may be replaced when dependencies are built.
