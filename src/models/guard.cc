#include "models/guard.hh"

#include <cmath>

#include "common/logging.hh"

namespace adrias::models
{

namespace
{

/** @return true when every entry of the sequence is finite. */
bool
sequenceFinite(const std::vector<ml::Matrix> &sequence)
{
    for (const ml::Matrix &step : sequence)
        for (double v : step.raw())
            if (!std::isfinite(v))
                return false;
    return true;
}

} // namespace

GuardedPredictor::GuardedPredictor(const PredictorBase &inner,
                                   PredictorGuardConfig config,
                                   fault::FaultInjector *injector)
    : wrapped(&inner), knobs(config), faults(injector),
      breakerGate(config.breaker)
{
    if (knobs.deadlineMs <= 0.0)
        fatal("GuardedPredictor: deadline must be positive");
    if (knobs.baseLatencyMs < 0.0)
        fatal("GuardedPredictor: base latency must be non-negative");
}

void
GuardedPredictor::fail(const std::string &reason,
                       bool breaker_failure) const
{
    if (breaker_failure) {
        ++tallies.failures;
        breakerGate.recordFailure(decisionTime);
    }
    throw PredictionUnavailable("GuardedPredictor: " + reason);
}

void
GuardedPredictor::admitCall(std::uint64_t salt) const
{
    ++tallies.calls;

    if (!breakerGate.allowRequest(decisionTime)) {
        ++tallies.rejectedByBreaker;
        throw PredictionUnavailable(
            "GuardedPredictor: circuit breaker open (backoff " +
            std::to_string(breakerGate.currentBackoffSec()) + " s)");
    }

    // Injected crash window: the inference call dies outright.
    if (faults && faults->predictorCrashAt(decisionTime, salt)) {
        ++tallies.injectedCrashes;
        fail("inference crashed", true);
    }

    // Per-call deadline against the modelled (possibly spiked) latency.
    double latency_ms = knobs.baseLatencyMs;
    if (faults)
        latency_ms = faults->predictorLatencyMsAt(decisionTime, salt,
                                                  latency_ms);
    if (latency_ms > knobs.deadlineMs) {
        ++tallies.deadlineExceeded;
        fail("inference deadline exceeded (" +
                 std::to_string(latency_ms) + " ms)",
             true);
    }
}

ml::Matrix
GuardedPredictor::predictSystemState(
    const telemetry::Watcher &watcher) const
{
    const std::uint64_t salt = callCounter++;
    admitCall(salt);
    if (watcher.sampleCount() == 0) {
        ++tallies.invalidInputs;
        throw PredictionUnavailable(
            "GuardedPredictor: no telemetry to predict from");
    }
    ml::Matrix forecast;
    try {
        forecast = wrapped->predictSystemState(watcher);
    } catch (const std::exception &err) {
        fail(std::string("system-state model threw: ") + err.what(),
             true);
    }
    for (double v : forecast.raw())
        if (!std::isfinite(v))
            fail("system-state forecast is not finite", true);
    ++tallies.served;
    breakerGate.recordSuccess(decisionTime);
    return forecast;
}

double
GuardedPredictor::predictPerformance(
    WorkloadClass cls, const std::vector<ml::Matrix> &history,
    const std::vector<ml::Matrix> &signature, MemoryMode mode) const
{
    const std::uint64_t salt = callCounter++;
    admitCall(salt);

    // Input validation is not a model failure: reject without charging
    // the breaker.
    if (history.empty() || signature.empty() ||
        !sequenceFinite(history) || !sequenceFinite(signature)) {
        ++tallies.invalidInputs;
        throw PredictionUnavailable(
            "GuardedPredictor: invalid model inputs");
    }

    double prediction = 0.0;
    try {
        prediction =
            wrapped->predictPerformance(cls, history, signature, mode);
    } catch (const std::exception &err) {
        fail(std::string("performance model threw: ") + err.what(),
             true);
    }
    if (!std::isfinite(prediction) || prediction < 0.0)
        fail("performance prediction is not finite", true);
    ++tallies.served;
    breakerGate.recordSuccess(decisionTime);
    return prediction;
}

} // namespace adrias::models
