/**
 * @file
 * Fig. 3 — Tail latency of Redis/Memcached in isolation, local vs
 * remote memory, across client-load levels.
 *
 * Expected shape (R4): the local and remote tail-latency curves are
 * nearly identical at every load level (in-memory caches are
 * latency-bound but bandwidth-light).
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

/** Run one server to completion in isolation; return tail latencies. */
std::pair<double, double>
runServer(const workloads::WorkloadSpec &spec, MemoryMode mode,
          double load_factor)
{
    testbed::Testbed bed;
    bed.setNoise(0.0);
    workloads::WorkloadInstance server(1, spec, mode, 0, 42, load_factor);
    SimTime now = 0;
    // A couple of minutes of serving stabilizes the tail estimate.
    while (!server.finished() && now < 150) {
        const auto tick = bed.tick({server.load()});
        server.advance(tick.outcomes.at(0), ++now);
    }
    return {server.tailLatencyMs(0.99), server.tailLatencyMs(0.999)};
}

void
sweep(const workloads::WorkloadSpec &spec)
{
    std::cout << "\n--- " << spec.name << " ---\n";
    TextTable table({"clients", "p99 local (ms)", "p99 remote (ms)",
                     "p99.9 local (ms)", "p99.9 remote (ms)",
                     "remote/local p99"});
    for (double clients : {200.0, 400.0, 800.0, 1200.0, 1600.0}) {
        const double load_factor = clients / 800.0;
        const auto [l99, l999] =
            runServer(spec, MemoryMode::Local, load_factor);
        const auto [r99, r999] =
            runServer(spec, MemoryMode::Remote, load_factor);
        table.addRow(std::to_string(static_cast<int>(clients)),
                     {l99, r99, l999, r999, r99 / l99}, 3);
    }
    std::cout << table.toString();
}

} // namespace

int
main()
{
    bench::banner("Fig. 3 — LC tail latency in isolation (local vs "
                  "remote)",
                  "local and remote curves nearly identical across "
                  "loads (R4)");
    sweep(workloads::redisSpec());
    sweep(workloads::memcachedSpec());
    std::cout << "\nShape check: remote/local p99 stays close to 1 at "
                 "every load level.\n";
    return 0;
}
