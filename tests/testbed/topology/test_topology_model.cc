/** @file Conformance tests for the rack Topology description. */

#include <gtest/gtest.h>

#include "testbed/topology.hh"

namespace adrias::testbed
{
namespace
{

TEST(TopologyModel, PaperPairFactoryShape)
{
    const Topology topo = Topology::paperPair();
    EXPECT_EQ(topo.name(), "paper-pair");
    EXPECT_EQ(topo.nodeCount(), 1u);
    EXPECT_EQ(topo.serverCount(), 1u);
    EXPECT_EQ(topo.linkCount(), 1u);
    EXPECT_EQ(std::string(topo.link(0).profile.name), "thymesisflow");
    EXPECT_DOUBLE_EQ(topo.link(0).profile.bandwidthGBps, 0.3125);
}

TEST(TopologyModel, PaperPairDetection)
{
    EXPECT_TRUE(Topology::paperPair().isPaperPair());
    EXPECT_FALSE(Topology::symmetric(2, 2, kCxlProfile).isPaperPair());
    // One pair over a CXL link is not the paper's prototype.
    Topology cxl_pair("cxl-pair");
    cxl_pair.addNode({"n0", {}});
    cxl_pair.addServer({"s0", 256.0, 15.0, {}});
    cxl_pair.addLink(0, 0, kCxlProfile);
    cxl_pair.validate();
    EXPECT_FALSE(cxl_pair.isPaperPair());
}

TEST(TopologyModel, SymmetricFactoryShape)
{
    const Topology topo = Topology::symmetric(3, 2, kRdmaProfile, 128.0);
    EXPECT_EQ(topo.nodeCount(), 3u);
    EXPECT_EQ(topo.serverCount(), 2u);
    EXPECT_EQ(topo.linkCount(), 6u); // full bipartite
    for (std::size_t n = 0; n < 3; ++n)
        EXPECT_EQ(topo.linksFrom(n).size(), 2u);
    for (std::size_t s = 0; s < 2; ++s)
        EXPECT_EQ(topo.linksInto(s).size(), 3u);
    EXPECT_DOUBLE_EQ(topo.totalCapacityGb(), 256.0);
}

TEST(TopologyModel, IndependentPairsShape)
{
    const Topology topo = Topology::independentPairs(3);
    EXPECT_EQ(topo.nodeCount(), 3u);
    EXPECT_EQ(topo.linkCount(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_EQ(topo.linksFrom(i).size(), 1u);
        EXPECT_EQ(topo.link(topo.linksFrom(i)[0]).server, i);
    }
}

TEST(TopologyModel, AutoAssignedRangesAreDisjointAndOrdered)
{
    const Topology topo = Topology::asymmetric4x4();
    std::uint64_t cursor = 0;
    for (std::size_t s = 0; s < topo.serverCount(); ++s) {
        const AddressRange &range = topo.server(s).range;
        EXPECT_GE(range.baseGb, cursor);
        cursor = range.endGb();
        for (std::size_t t = s + 1; t < topo.serverCount(); ++t) {
            if (range.sizeGb > 0 && topo.server(t).range.sizeGb > 0) {
                EXPECT_FALSE(range.overlaps(topo.server(t).range));
            }
        }
    }
}

TEST(TopologyModel, ServerOwningResolvesAddresses)
{
    const Topology topo = Topology::asymmetric4x4();
    // s0 owns [0, 512), s1 [512, 768), s2 [768, 832).
    EXPECT_EQ(topo.serverOwning(0), 0);
    EXPECT_EQ(topo.serverOwning(511), 0);
    EXPECT_EQ(topo.serverOwning(512), 1);
    EXPECT_EQ(topo.serverOwning(768), 2);
    EXPECT_EQ(topo.serverOwning(831), 2);
    // The drained server owns no addresses; past-the-end resolves to
    // nothing.
    EXPECT_EQ(topo.serverOwning(832), -1);
    EXPECT_EQ(topo.serverOwning(100000), -1);
}

TEST(TopologyModel, ExplicitRangeOverlapIsFatal)
{
    Topology topo("overlap");
    topo.addNode({"n0", {}});
    topo.addServer({"s0", 64.0, 15.0, {0, 64}});
    topo.addServer({"s1", 64.0, 15.0, {32, 64}});
    topo.addLink(0, 0, kCxlProfile);
    EXPECT_THROW(topo.validate(), std::runtime_error);
}

TEST(TopologyModel, DuplicateNamesAreFatal)
{
    Topology nodes_clash("dup-nodes");
    nodes_clash.addNode({"n0", {}}).addNode({"n0", {}});
    EXPECT_THROW(nodes_clash.validate(), std::runtime_error);

    Topology servers_clash("dup-servers");
    servers_clash.addNode({"n0", {}});
    servers_clash.addServer({"s0", 64.0, 15.0, {}});
    servers_clash.addServer({"s0", 64.0, 15.0, {}});
    EXPECT_THROW(servers_clash.validate(), std::runtime_error);

    Topology links_clash("dup-links");
    links_clash.addNode({"n0", {}});
    links_clash.addServer({"s0", 64.0, 15.0, {}});
    links_clash.addServer({"s1", 64.0, 15.0, {}});
    links_clash.addLink(0, 0, kCxlProfile, "same");
    links_clash.addLink(0, 1, kCxlProfile, "same");
    EXPECT_THROW(links_clash.validate(), std::runtime_error);
}

TEST(TopologyModel, DuplicateNodeServerLinkIsFatal)
{
    Topology topo("dup-endpoint");
    topo.addNode({"n0", {}});
    topo.addServer({"s0", 64.0, 15.0, {}});
    topo.addLink(0, 0, kCxlProfile, "a");
    topo.addLink(0, 0, kRdmaProfile, "b");
    EXPECT_THROW(topo.validate(), std::runtime_error);
}

TEST(TopologyModel, LinkEndpointOutOfRangeIsFatal)
{
    Topology bad_node("bad-node");
    bad_node.addNode({"n0", {}});
    bad_node.addServer({"s0", 64.0, 15.0, {}});
    bad_node.addLink(7, 0, kCxlProfile);
    EXPECT_THROW(bad_node.validate(), std::runtime_error);

    Topology bad_server("bad-server");
    bad_server.addNode({"n0", {}});
    bad_server.addServer({"s0", 64.0, 15.0, {}});
    bad_server.addLink(0, 7, kCxlProfile);
    EXPECT_THROW(bad_server.validate(), std::runtime_error);
}

TEST(TopologyModel, InvalidServerParametersAreFatal)
{
    Topology negative_capacity("neg-cap");
    negative_capacity.addNode({"n0", {}});
    negative_capacity.addServer({"s0", -1.0, 15.0, {}});
    EXPECT_THROW(negative_capacity.validate(), std::runtime_error);

    Topology zero_bandwidth("zero-bw");
    zero_bandwidth.addNode({"n0", {}});
    zero_bandwidth.addServer({"s0", 64.0, 0.0, {}});
    EXPECT_THROW(zero_bandwidth.validate(), std::runtime_error);
}

TEST(TopologyModel, NoNodesIsFatal)
{
    Topology topo("empty");
    EXPECT_THROW(topo.validate(), std::runtime_error);
}

TEST(TopologyModel, DefaultLinkNamesComposeEndpointNames)
{
    const Topology topo = Topology::symmetric(2, 2, kCxlProfile);
    EXPECT_EQ(topo.link(0).name, "n0-s0");
    EXPECT_EQ(topo.link(3).name, "n1-s1");
    EXPECT_EQ(topo.linkIndexByName("n1-s0"),
              topo.linkBetween(1, 0));
}

TEST(TopologyModel, LinkBetweenAndByName)
{
    const Topology topo = Topology::asymmetric4x4();
    EXPECT_EQ(topo.linkBetween(0, 0), 0);
    EXPECT_EQ(topo.linkBetween(3, 2), 8);
    EXPECT_EQ(topo.linkBetween(3, 0), -1); // n3 only reaches s2
    EXPECT_EQ(topo.linkIndexByName("n3-s2"), 8);
    EXPECT_EQ(topo.linkIndexByName("no-such-link"), -1);
}

TEST(TopologyModel, LinkAdjacencyBeforeValidateIsFatal)
{
    Topology topo("unvalidated");
    topo.addNode({"n0", {}});
    topo.addServer({"s0", 64.0, 15.0, {}});
    topo.addLink(0, 0, kCxlProfile);
    EXPECT_THROW(topo.linksFrom(0), std::runtime_error);
    EXPECT_THROW(topo.linksInto(0), std::runtime_error);
}

TEST(TopologyModel, Asymmetric4x4Shape)
{
    const Topology topo = Topology::asymmetric4x4();
    EXPECT_EQ(topo.nodeCount(), 4u);
    EXPECT_EQ(topo.serverCount(), 4u);
    EXPECT_EQ(topo.linkCount(), 9u);
    // The drained server stays reachable but lends nothing.
    EXPECT_DOUBLE_EQ(topo.server(3).capacityGb, 0.0);
    EXPECT_EQ(topo.server(3).range.sizeGb, 0u);
    EXPECT_FALSE(topo.linksInto(3).empty());
    // n0 sees every server; n3 has exactly one RDMA path.
    EXPECT_EQ(topo.linksFrom(0).size(), 4u);
    ASSERT_EQ(topo.linksFrom(3).size(), 1u);
    EXPECT_EQ(std::string(topo.link(topo.linksFrom(3)[0]).profile.name),
              "rdma");
}

TEST(TopologyModel, TopologyByNameRegistry)
{
    EXPECT_TRUE(topologyByName("paper-pair").isPaperPair());
    EXPECT_EQ(topologyByName("rack-2x2-cxl").linkCount(), 4u);
    EXPECT_EQ(topologyByName("rack-4x4-mixed").linkCount(), 9u);
    EXPECT_EQ(topologyByName("pairs-5").nodeCount(), 5u);
    EXPECT_THROW(topologyByName("no-such-rack"), std::runtime_error);
    EXPECT_THROW(topologyByName("pairs-"), std::runtime_error);
    EXPECT_THROW(topologyByName("pairs-0"), std::runtime_error);

    for (const std::string &name : knownTopologyNames())
        EXPECT_GE(topologyByName(name).nodeCount(), 1u) << name;
}

TEST(TopologyModel, AddressRangePrimitives)
{
    const AddressRange a{0, 64};
    const AddressRange b{64, 64};
    EXPECT_TRUE(a.contains(0));
    EXPECT_TRUE(a.contains(63));
    EXPECT_FALSE(a.contains(64));
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_TRUE(a.overlaps(AddressRange{63, 2}));
    EXPECT_EQ(b.endGb(), 128u);
}

} // namespace
} // namespace adrias::testbed
