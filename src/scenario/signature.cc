#include "scenario/signature.hh"

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "scenario/runner.hh"
#include "telemetry/watcher.hh"
#include "testbed/testbed.hh"
#include "workloads/workload.hh"

namespace adrias::scenario
{

bool
SignatureStore::has(const std::string &name) const
{
    return signatures.count(name) > 0;
}

const std::vector<ml::Matrix> &
SignatureStore::get(const std::string &name) const
{
    auto it = signatures.find(name);
    if (it == signatures.end())
        fatal("SignatureStore: no signature for '" + name + "'");
    return it->second;
}

void
SignatureStore::put(const std::string &name,
                    std::vector<ml::Matrix> signature)
{
    if (signature.empty())
        fatal("SignatureStore: refusing to store empty signature");
    signatures[name] = std::move(signature);
}

void
SignatureStore::erase(const std::string &name)
{
    signatures.erase(name);
}

std::vector<std::string>
SignatureStore::names() const
{
    std::vector<std::string> all;
    all.reserve(signatures.size());
    for (const auto &[name, signature] : signatures)
        all.push_back(name);
    return all;
}

void
SignatureStore::saveState(io::BinaryWriter &out) const
{
    out.writeU64(signatures.size());
    for (const auto &[name, signature] : signatures) {
        out.writeString(name);
        out.writeU64(signature.size());
        for (const ml::Matrix &step : signature) {
            out.writeU64(step.rows());
            out.writeU64(step.cols());
            out.writeF64Vector(step.raw());
        }
    }
}

Result<void>
SignatureStore::restoreState(io::BinaryReader &in)
{
    std::map<std::string, std::vector<ml::Matrix>> restored;
    const std::uint64_t count = in.readU64();
    for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
        const std::string name = in.readString();
        const std::uint64_t steps = in.readU64();
        std::vector<ml::Matrix> signature;
        for (std::uint64_t s = 0; s < steps && in.ok(); ++s) {
            const std::uint64_t rows = in.readU64();
            const std::uint64_t cols = in.readU64();
            std::vector<double> values = in.readF64Vector();
            if (!in.ok())
                break;
            if (values.size() != rows * cols)
                return makeError(ErrorCode::Geometry,
                                 "SignatureStore: matrix data size does "
                                 "not match its declared shape");
            signature.emplace_back(rows, cols, std::move(values));
        }
        restored.emplace(name, std::move(signature));
    }
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "SignatureStore: truncated snapshot section");
    signatures = std::move(restored);
    return {};
}

std::vector<ml::Matrix>
collectSignature(const workloads::WorkloadSpec &spec,
                 testbed::TestbedParams params, std::uint64_t seed,
                 SimTime max_seconds)
{
    testbed::Testbed bed(params, seed);
    bed.setNoise(0.0); // signatures are design-time, measured cleanly
    workloads::WorkloadInstance app(1, spec, MemoryMode::Remote, 0, seed);

    std::vector<testbed::CounterSample> trace;
    SimTime now = 0;
    while (!app.finished() && now < max_seconds) {
        const auto tick = bed.tick({app.load()});
        trace.push_back(tick.counters);
        app.advance(tick.outcomes.at(0), ++now);
    }
    if (trace.empty())
        panic("collectSignature produced an empty trace");
    return telemetry::binSpan(trace, 0, trace.size(),
                              ScenarioRunner::kWindowBins);
}

void
collectAllSignatures(SignatureStore &store, testbed::TestbedParams params,
                     std::uint64_t seed)
{
    // Each benchmark's design-time run is independent: collect into
    // per-spec slots in parallel, then fill the store in the original
    // catalogue order so its contents never depend on timing.
    std::vector<const workloads::WorkloadSpec *> specs;
    for (const auto &spec : workloads::sparkBenchmarks())
        specs.push_back(&spec);
    for (const auto &spec : workloads::latencyCriticalBenchmarks())
        specs.push_back(&spec);

    std::vector<std::vector<ml::Matrix>> signatures(specs.size());
    ThreadPool::global().parallelForEach(
        specs.size(), [&](std::size_t i) {
            signatures[i] = collectSignature(*specs[i], params, seed);
        });
    for (std::size_t i = 0; i < specs.size(); ++i)
        store.put(specs[i]->name, std::move(signatures[i]));
}

} // namespace adrias::scenario
