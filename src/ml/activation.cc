#include "ml/activation.hh"

#include <cmath>

namespace adrias::ml
{

double
sigmoidScalar(double x)
{
    // Split by sign for numerical stability at large |x|.
    if (x >= 0.0) {
        const double z = std::exp(-x);
        return 1.0 / (1.0 + z);
    }
    const double z = std::exp(x);
    return z / (1.0 + z);
}

Matrix
ReLU::forward(const Matrix &input)
{
    lastInput = input;
    return input.map([](double x) { return x > 0.0 ? x : 0.0; });
}

Matrix
ReLU::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    const auto &in = lastInput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        if (in[i] <= 0.0)
            g[i] = 0.0;
    return grad;
}

Matrix
Tanh::forward(const Matrix &input)
{
    lastOutput = input.map([](double x) { return std::tanh(x); });
    return lastOutput;
}

Matrix
Tanh::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    const auto &out = lastOutput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] *= 1.0 - out[i] * out[i];
    return grad;
}

Matrix
Sigmoid::forward(const Matrix &input)
{
    lastOutput = input.map(sigmoidScalar);
    return lastOutput;
}

Matrix
Sigmoid::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    const auto &out = lastOutput.raw();
    auto &g = grad.raw();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] *= out[i] * (1.0 - out[i]);
    return grad;
}

} // namespace adrias::ml
