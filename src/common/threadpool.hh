/**
 * @file
 * Shared work-scheduling layer: a fixed-size thread pool with a
 * deterministically partitioned parallelFor.
 *
 * Determinism contract (DESIGN.md §9): the partition of a range into
 * chunks is a pure function of the range length — never of the thread
 * count, pool load or timing.  Each chunk writes only its own slots,
 * and callers that reduce combine per-chunk partials in chunk index
 * order, so every result is bitwise identical whether the range ran on
 * 1 thread or 64.  `ADRIAS_THREADS=1` selects the legacy serial path
 * (chunks execute inline, in index order, on the caller).
 *
 * Exception semantics: the first exception by *chunk index* (not by
 * wall-clock arrival) is rethrown on the caller once every chunk has
 * finished; remaining chunks still run so partially written outputs are
 * never observed mid-flight.
 *
 * Nesting: a parallelFor issued from inside a worker thread executes
 * inline (serially, in chunk order) on that worker — the scenario
 * sweep parallelizes across seeds and the matrix kernels inside each
 * seed automatically degrade to their serial form.  Raw submit() from
 * a worker thread is rejected (std::logic_error): blocking on the
 * returned future from inside the pool is a deadlock by construction.
 */

#ifndef ADRIAS_COMMON_THREADPOOL_HH
#define ADRIAS_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace adrias
{

/** Fixed-size worker pool; see the file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * Process-wide observability hook.  common/ sits below the obs
     * layer in the dependency order, so the pool cannot call obs
     * directly; instead obs installs one Observer (setObserver) and
     * every pool reports queue depth and chunk execution through it.
     * Callbacks run on worker threads (or inline on the caller for
     * serial pools) and must not touch the pool: they fire outside the
     * pool's own lock, and calling back into submit/parallelFor from
     * one would deadlock or recurse.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;

        /** Work was enqueued; `queue_depth` is the length just after. */
        virtual void onEnqueue(std::size_t queue_depth) = 0;

        /** Chunk `c` covering [begin, end) is about to run. */
        virtual void onChunkStart(std::size_t c, std::size_t begin,
                                  std::size_t end) = 0;

        /** Chunk `c` finished (also called when its body threw). */
        virtual void onChunkEnd(std::size_t c, std::size_t begin,
                                std::size_t end) = 0;
    };

    /**
     * Install the process-wide observer; nullptr detaches.  Applies to
     * every pool (global, overrides, ad-hoc).  The observer must stay
     * alive until detached.
     */
    static void setObserver(Observer *observer);

    /** @return the installed observer (nullptr when none). */
    static Observer *observer();

    /**
     * @param threads worker count; 0 and 1 both mean "serial": no
     *        workers are spawned and all work runs on the caller.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the configured thread count (1 for a serial pool). */
    unsigned threadCount() const { return configured; }

    /**
     * Enqueue one task; the future carries its exception, if any.
     *
     * Serial pools run the task inline before returning.  Calling from
     * a worker thread throws std::logic_error (see file comment).
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run `body(begin, end)` over a deterministic partition of
     * [0, total); see chunkCount() for the partition rule.  A no-op
     * for total == 0.  Blocks until every chunk finished; rethrows the
     * lowest-chunk-index exception.
     */
    void parallelFor(std::size_t total,
                     const std::function<void(std::size_t, std::size_t)>
                         &body);

    /** Index-wise convenience wrapper over parallelFor. */
    void parallelForEach(std::size_t total,
                         const std::function<void(std::size_t)> &fn);

    /**
     * Deterministic partition rule: a range of `total` items is cut
     * into min(total, kMaxChunks) contiguous chunks whose boundaries
     * depend only on `total`.
     */
    static std::size_t chunkCount(std::size_t total);

    /** Half-open bounds of chunk `c` of chunkCount(total) chunks. */
    static std::pair<std::size_t, std::size_t>
    chunkBounds(std::size_t total, std::size_t c);

    /** @return true when called from one of *any* pool's workers. */
    static bool onWorkerThread();

    /**
     * Process-wide pool, sized by the ADRIAS_THREADS environment knob
     * on first use (unset/0: hardware concurrency; 1: serial).
     */
    static ThreadPool &global();

    /** ADRIAS_THREADS parse (clamped to [1, kMaxThreads]). */
    static unsigned configuredThreads();

    /** Upper bound on both chunk and thread counts. */
    static constexpr std::size_t kMaxChunks = 64;
    static constexpr unsigned kMaxThreads = 256;

  private:
    friend class ScopedThreadOverride;

    void workerLoop();

    /** Swap the global pool; used only by ScopedThreadOverride. */
    static ThreadPool *swapGlobal(ThreadPool *next);

    unsigned configured ADRIAS_LOCK_FREE(
        "written only in configure()/shutdown, which are "
        "single-threaded phases");
    std::vector<std::thread> workers ADRIAS_LOCK_FREE(
        "mutated only in configure()/shutdown, before workers run "
        "or after they join");

    Mutex mutex;
    std::condition_variable_any available;
    std::deque<std::function<void()>> queue ADRIAS_GUARDED_BY(mutex);
    bool stopping ADRIAS_GUARDED_BY(mutex) = false;
};

/**
 * Replace the global pool for a scope — the hook the equivalence tests
 * and scaling benches use to run the same computation at several
 * thread counts inside one process.  Not safe while other threads are
 * touching the global pool; intended for single-threaded test/bench
 * setup code only.
 */
class ScopedThreadOverride
{
  public:
    explicit ScopedThreadOverride(unsigned threads);
    ~ScopedThreadOverride();

    ScopedThreadOverride(const ScopedThreadOverride &) = delete;
    ScopedThreadOverride &operator=(const ScopedThreadOverride &) = delete;

  private:
    ThreadPool replacement;
    ThreadPool *previous;
};

} // namespace adrias

#endif // ADRIAS_COMMON_THREADPOOL_HH
