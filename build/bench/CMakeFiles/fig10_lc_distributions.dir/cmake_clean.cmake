file(REMOVE_RECURSE
  "CMakeFiles/fig10_lc_distributions.dir/fig10_lc_distributions.cc.o"
  "CMakeFiles/fig10_lc_distributions.dir/fig10_lc_distributions.cc.o.d"
  "fig10_lc_distributions"
  "fig10_lc_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lc_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
