file(REMOVE_RECURSE
  "libadrias_testbed.a"
)
