/**
 * @file
 * Memtier-style closed-loop load-generation configuration (paper
 * §IV-A): 4 threads x 200 clients, SET:GET 1:10, constant per-client
 * request budgets.  Used by the Fig. 3 characterization bench to sweep
 * client counts against local/remote placements.
 */

#ifndef ADRIAS_WORKLOADS_MEMTIER_HH
#define ADRIAS_WORKLOADS_MEMTIER_HH

#include <cstddef>

namespace adrias::workloads
{

/** Closed-loop client fleet description. */
struct MemtierConfig
{
    /** Load-generating threads. */
    std::size_t threads = 4;

    /** Clients per thread (paper: 200, avoiding client bias). */
    std::size_t clientsPerThread = 200;

    /** Requests each client issues. */
    std::size_t requestsPerClient = 10000;

    /** SET fraction (SET:GET of 1:10 -> ~0.0909). */
    double setFraction = 1.0 / 11.0;

    /** @return total concurrent clients. */
    std::size_t totalClients() const { return threads * clientsPerThread; }

    /** @return total requests across all clients. */
    std::size_t
    totalRequests() const
    {
        return totalClients() * requestsPerClient;
    }

    /**
     * Client-load multiplier relative to the paper's nominal fleet of
     * 800 clients; drives the LC queueing model.
     */
    double
    loadFactor() const
    {
        return static_cast<double>(totalClients()) / 800.0;
    }
};

} // namespace adrias::workloads

#endif // ADRIAS_WORKLOADS_MEMTIER_HH
