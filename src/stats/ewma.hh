/**
 * @file
 * Exponentially weighted moving average — the smoothing primitive used
 * by the runtime migrator and handy for counter streams.
 */

#ifndef ADRIAS_STATS_EWMA_HH
#define ADRIAS_STATS_EWMA_HH

#include <cstddef>

namespace adrias::stats
{

/**
 * EWMA with configurable smoothing factor.
 *
 * value_{t} = (1 - alpha) * value_{t-1} + alpha * sample_t, seeded
 * with the first sample (no bias toward an arbitrary initial value).
 */
class Ewma
{
  public:
    /** @param alpha smoothing factor in (0, 1]. */
    explicit Ewma(double alpha);

    /** Fold one sample in. @return the updated average. */
    double add(double sample);

    /** @return current average (0 before any sample). */
    double value() const { return current; }

    /** @return number of samples folded in. */
    std::size_t count() const { return samples; }

    /** Reset to the unseeded state. */
    void reset();

    /** Reset and seed with a specific value. */
    void reset(double seed_value);

    double alpha() const { return smoothing; }

  private:
    double smoothing;
    double current = 0.0;
    std::size_t samples = 0;
};

} // namespace adrias::stats

#endif // ADRIAS_STATS_EWMA_HH
