/**
 * @file
 * Per-link/per-server/per-node conservation tests for RackTestbed: every
 * tick must satisfy offered = achieved + queued on every link, respect
 * link/server/local-pool capacities, and account capacity reservations
 * per server.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/invariant.hh"
#include "testbed/rack.hh"
#include "testbed/topology.hh"

namespace adrias::testbed
{
namespace
{

/**
 * A pure-bandwidth remote deployment: no latency-bound slice, a tiny
 * LLC footprint and negligible CPU demand, so achieved traffic follows
 * the share algebra exactly.
 */
LoadDescriptor
remoteLoad(std::size_t node, std::size_t server, std::size_t link,
           double demand_gbps, DeploymentId id = 1)
{
    LoadDescriptor load;
    load.id = id;
    load.mode = MemoryMode::Remote;
    load.node = node;
    load.server = server;
    load.link = link;
    load.memDemandGBps = demand_gbps;
    load.latencyBoundFraction = 0.0;
    load.cpuCores = 0.5;
    load.cacheFootprintMb = 0.1;
    return load;
}

LoadDescriptor
localLoad(std::size_t node, double demand_gbps, DeploymentId id = 2)
{
    LoadDescriptor load;
    load.id = id;
    load.mode = MemoryMode::Local;
    load.node = node;
    load.memDemandGBps = demand_gbps;
    load.latencyBoundFraction = 0.0;
    load.cpuCores = 0.5;
    load.cacheFootprintMb = 0.1;
    return load;
}

/** A 1-node / 1-server rack over one CXL link (cap 4 GB/s). */
Topology
cxlPair(double server_bw = 15.0)
{
    Topology topo("cxl-pair");
    topo.addNode({"n0", {}});
    topo.addServer({"s0", 256.0, server_bw, {}});
    topo.addLink(0, 0, kCxlProfile);
    return topo.validate();
}

TEST(RackConservation, QuietLinkDeliversFullDemand)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    const auto result = rack.tick({remoteLoad(0, 0, 0, 0.1)});
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_DOUBLE_EQ(result.outcomes[0].achievedGBps, 0.1);
    EXPECT_DOUBLE_EQ(result.links[0].offeredGBps, 0.1);
    EXPECT_DOUBLE_EQ(result.links[0].queuedGBps, 0.0);
    EXPECT_DOUBLE_EQ(result.links[0].latencyCycles,
                     kCxlProfile.latencyBaseCycles);
}

TEST(RackConservation, OverloadedLinkConservesBytes)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    const auto result = rack.tick({remoteLoad(0, 0, 0, 10.0)});
    const LinkTickStats &link = result.links[0];
    // bytes in = bytes out + queued, delivery clamped at the 4 GB/s cap.
    EXPECT_DOUBLE_EQ(link.offeredGBps, 10.0);
    EXPECT_NEAR(link.achievedGBps, kCxlProfile.bandwidthGBps, 1e-12);
    EXPECT_NEAR(link.offeredGBps, link.achievedGBps + link.queuedGBps,
                1e-12);
    // Pressure 2.5 sits past the CXL ramp end: saturation latency.
    EXPECT_DOUBLE_EQ(link.pressure, 2.5);
    EXPECT_DOUBLE_EQ(link.latencyCycles, kCxlProfile.latencySatCycles);
}

TEST(RackConservation, ConservationHoldsAcrossManySplitLoads)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    std::vector<LoadDescriptor> loads;
    double total = 0.0;
    for (int i = 0; i < 8; ++i) {
        const double demand = 0.7 + 0.3 * i;
        loads.push_back(remoteLoad(0, 0, 0, demand, 10 + i));
        total += demand;
    }
    const auto result = rack.tick(loads);
    double achieved_sum = 0.0;
    for (const LoadOutcome &outcome : result.outcomes)
        achieved_sum += outcome.achievedGBps;
    EXPECT_NEAR(result.links[0].offeredGBps, total, 1e-9);
    EXPECT_NEAR(result.links[0].achievedGBps, achieved_sum, 1e-9);
    EXPECT_NEAR(result.links[0].offeredGBps,
                result.links[0].achievedGBps + result.links[0].queuedGBps,
                1e-9);
    EXPECT_LE(result.links[0].achievedGBps,
              kCxlProfile.bandwidthGBps + 1e-9);
}

TEST(RackConservation, ServerBandwidthSharedAcrossLinks)
{
    // Two nodes each pushing a full CXL link (4 GB/s) into one server
    // whose controllers sustain only 3 GB/s.
    Topology topo("shared-server");
    topo.addNode({"n0", {}});
    topo.addNode({"n1", {}});
    topo.addServer({"s0", 256.0, 3.0, {}});
    topo.addLink(0, 0, kCxlProfile);
    topo.addLink(1, 0, kCxlProfile);
    topo.validate();

    RackTestbed rack(topo, 7);
    rack.setNoise(0.0);
    const auto result = rack.tick(
        {remoteLoad(0, 0, 0, 4.0, 1), remoteLoad(1, 0, 1, 4.0, 2)});
    EXPECT_NEAR(result.servers[0].achievedGBps, 3.0, 1e-9);
    // Fair (proportional) split: each deployment lands at 1.5 GB/s.
    EXPECT_NEAR(result.outcomes[0].achievedGBps, 1.5, 1e-9);
    EXPECT_NEAR(result.outcomes[1].achievedGBps, 1.5, 1e-9);
}

TEST(RackConservation, IndependentLinksDoNotInterfere)
{
    const Topology topo = Topology::symmetric(2, 2, kCxlProfile);
    RackTestbed rack(topo, 7);
    rack.setNoise(0.0);
    const std::size_t heavy =
        static_cast<std::size_t>(topo.linkBetween(0, 0));
    const std::size_t quiet =
        static_cast<std::size_t>(topo.linkBetween(1, 1));
    const auto result = rack.tick({remoteLoad(0, 0, heavy, 12.0, 1),
                                   remoteLoad(1, 1, quiet, 0.5, 2)});
    // The quiet pair is unaffected by the saturated one.
    EXPECT_DOUBLE_EQ(result.outcomes[1].achievedGBps, 0.5);
    EXPECT_DOUBLE_EQ(result.links[quiet].queuedGBps, 0.0);
    EXPECT_DOUBLE_EQ(result.links[quiet].latencyCycles,
                     kCxlProfile.latencyBaseCycles);
    EXPECT_GT(result.links[heavy].queuedGBps, 0.0);
}

TEST(RackConservation, RemoteTrafficTerminatesLocally)
{
    // R3: a node's achieved remote traffic also flows through its local
    // controllers, so local + remote compete for the local pool.
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    const auto result = rack.tick(
        {localLoad(0, 14.0, 1), remoteLoad(0, 0, 0, 4.0, 2)});
    const NodeTickStats &node = result.nodes[0];
    // Total local-pool demand 18 GB/s against a 15 GB/s pool.
    EXPECT_NEAR(node.localTrafficGBps, 15.0, 1e-9);
    EXPECT_NEAR(result.outcomes[0].achievedGBps, 14.0 * 15.0 / 18.0,
                1e-9);
    EXPECT_NEAR(result.outcomes[1].achievedGBps, 4.0 * 15.0 / 18.0,
                1e-9);
    EXPECT_NEAR(node.remoteTrafficGBps, 4.0 * 15.0 / 18.0, 1e-9);
}

TEST(RackConservation, LinkFaultDeratesCapacityAndLatency)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    rack.setLinkFault(0, 0.5, 2.0);
    EXPECT_TRUE(rack.anyLinkFaulted());
    const auto result = rack.tick({remoteLoad(0, 0, 0, 3.0)});
    // Effective cap 2 GB/s; pressure 1.5 is mid-ramp for CXL.
    EXPECT_NEAR(result.outcomes[0].achievedGBps, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(result.links[0].pressure, 1.5);
    const double mid_ramp =
        kCxlProfile.latencyBaseCycles +
        0.5 * (kCxlProfile.latencySatCycles - kCxlProfile.latencyBaseCycles);
    EXPECT_NEAR(result.links[0].latencyCycles, mid_ramp * 2.0, 1e-9);
    rack.clearLinkFaults();
    EXPECT_FALSE(rack.anyLinkFaulted());
    const auto healthy = rack.tick({remoteLoad(0, 0, 0, 3.0)});
    EXPECT_NEAR(healthy.outcomes[0].achievedGBps, 3.0, 1e-9);
}

TEST(RackConservation, SetLinkFaultRejectsBadArguments)
{
    RackTestbed rack(cxlPair(), 7);
    EXPECT_THROW(rack.setLinkFault(5, 0.5, 1.0), std::runtime_error);
    EXPECT_THROW(rack.setLinkFault(0, 0.0, 1.0), std::runtime_error);
    EXPECT_THROW(rack.setLinkFault(0, 1.5, 1.0), std::runtime_error);
    EXPECT_THROW(rack.setLinkFault(0, 0.5, 0.5), std::runtime_error);
}

TEST(RackConservation, CapacityAccountingPerServer)
{
    RackTestbed rack(Topology::asymmetric4x4(), 7);
    // s2 holds 64 GB.
    EXPECT_TRUE(rack.allocate(2, 32.0).ok());
    EXPECT_DOUBLE_EQ(rack.allocatedGb(2), 32.0);
    EXPECT_DOUBLE_EQ(rack.availableGb(2), 32.0);
    const auto overflow = rack.allocate(2, 40.0);
    ASSERT_FALSE(overflow.ok());
    EXPECT_EQ(overflow.error().code, ErrorCode::Geometry);
    EXPECT_DOUBLE_EQ(rack.allocatedGb(2), 32.0); // rejected, unchanged
    rack.release(2, 32.0);
    EXPECT_DOUBLE_EQ(rack.allocatedGb(2), 0.0);
    // The drained server admits nothing.
    EXPECT_FALSE(rack.allocate(3, 1.0).ok());
    EXPECT_TRUE(rack.allocate(3, 0.0).ok());
}

TEST(RackConservation, AllocationMisuseIsFatal)
{
    RackTestbed rack(cxlPair(), 7);
    EXPECT_THROW((void)rack.allocate(9, 1.0), std::runtime_error);
    EXPECT_THROW((void)rack.allocate(0, -1.0), std::runtime_error);
    EXPECT_THROW(rack.release(0, 1.0), std::logic_error); // over-release
    EXPECT_THROW((void)rack.allocatedGb(9), std::runtime_error);
    EXPECT_THROW((void)rack.availableGb(9), std::runtime_error);
    EXPECT_THROW((void)rack.linkTotals(9), std::runtime_error);
}

TEST(RackConservation, AllocationsAppearInTickStats)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    ASSERT_TRUE(rack.allocate(0, 48.0).ok());
    const auto result = rack.tick({remoteLoad(0, 0, 0, 0.1)});
    EXPECT_DOUBLE_EQ(result.servers[0].allocatedGb, 48.0);
}

TEST(RackConservation, LinkTotalsAccumulateAcrossTicks)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    for (int t = 0; t < 3; ++t)
        rack.tick({remoteLoad(0, 0, 0, 10.0)});
    rack.tick({remoteLoad(0, 0, 0, 0.1)});
    const LinkTotals &totals = rack.linkTotals(0);
    EXPECT_NEAR(totals.offeredGb, 30.1, 1e-9);
    EXPECT_NEAR(totals.deliveredGb, 3 * kCxlProfile.bandwidthGBps + 0.1,
                1e-9);
    EXPECT_NEAR(totals.offeredGb, totals.deliveredGb + totals.queuedGb,
                1e-9);
    // Only the three overloaded ticks crossed the ramp start.
    EXPECT_EQ(totals.saturatedTicks, 3);
}

TEST(RackConservation, InvalidPlacementTriplesPanic)
{
    const Topology topo = Topology::symmetric(2, 2, kCxlProfile);
    RackTestbed rack(topo, 7);
    // Unknown node.
    EXPECT_THROW(rack.tick({remoteLoad(5, 0, 0, 1.0)}), std::logic_error);
    // Out-of-range link index.
    EXPECT_THROW(rack.tick({remoteLoad(0, 0, 9, 1.0)}), std::logic_error);
    // A real link that does not connect the placement's endpoints.
    const std::size_t wrong =
        static_cast<std::size_t>(topo.linkBetween(1, 0));
    EXPECT_THROW(rack.tick({remoteLoad(0, 0, wrong, 1.0)}),
                 std::logic_error);
    // Local deployments only need a valid node.
    LoadDescriptor local = localLoad(0, 1.0);
    local.link = 9;
    local.server = 9;
    EXPECT_NO_THROW(rack.tick({local}));
}

TEST(RackConservation, PerProfileLatencyRamps)
{
    for (const LinkProfile &profile : allLinkProfiles()) {
        EXPECT_DOUBLE_EQ(linkLatencyCycles(profile, 0.0),
                         profile.latencyBaseCycles);
        EXPECT_DOUBLE_EQ(linkLatencyCycles(profile, profile.rampStart),
                         profile.latencyBaseCycles);
        const double mid = 0.5 * (profile.rampStart + profile.rampEnd);
        EXPECT_NEAR(linkLatencyCycles(profile, mid),
                    0.5 * (profile.latencyBaseCycles +
                           profile.latencySatCycles),
                    1e-9);
        EXPECT_DOUBLE_EQ(linkLatencyCycles(profile, profile.rampEnd + 5.0),
                         profile.latencySatCycles);
    }
}

TEST(RackConservation, NoiseFreeLinkCountersMatchStats)
{
    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    const auto result = rack.tick({remoteLoad(0, 0, 0, 10.0)});
    const LinkTickStats &link = result.links[0];
    const auto at = [&](LinkEvent e) {
        return link.counters[static_cast<std::size_t>(e)];
    };
    EXPECT_DOUBLE_EQ(at(LinkEvent::LinkLat), link.latencyCycles);
    EXPECT_DOUBLE_EQ(at(LinkEvent::LinkQueued), link.queuedGBps);
    EXPECT_NEAR(at(LinkEvent::LinkTx) + at(LinkEvent::LinkRx),
                link.flitsM, 1e-9);
}

TEST(RackConservation, CorruptedTickTripsInvariants)
{
    if (!invariant::kEnabled)
        GTEST_SKIP() << "invariants compiled out of this build";

    RackTestbed rack(cxlPair(), 7);
    rack.setNoise(0.0);
    const std::vector<LoadDescriptor> loads = {remoteLoad(0, 0, 0, 1.0)};
    auto result = rack.tick(loads);

    static int violations = 0;
    violations = 0;
    auto *previous = invariant::setHandler(
        [](const invariant::Violation &) { ++violations; });

    // A deployment claiming more than the link delivered breaks both
    // the per-link sum and the conservation equation.
    result.outcomes[0].achievedGBps = 99.0;
    checkRackTickInvariants(loads, result, rack.topology());
    EXPECT_GE(violations, 2);

    invariant::setHandler(previous);
}

} // namespace
} // namespace adrias::testbed
