/** @file Unit tests for stats/percentile. */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hh"
#include "stats/percentile.hh"

namespace adrias::stats
{
namespace
{

TEST(Quantile, EmptySampleIsNaN)
{
    EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
}

TEST(Quantile, SingleElement)
{
    EXPECT_DOUBLE_EQ(quantile({3.0}, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile({3.0}, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile({3.0}, 1.0), 3.0);
}

TEST(Quantile, BoundaryQValuesAreValid)
{
    const std::vector<double> sample{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 3.0);
}

TEST(Quantile, RejectsNaNQ)
{
    const std::vector<double> sample{1.0, 2.0, 3.0};
    EXPECT_THROW(quantile(sample, std::nan("")), std::runtime_error);
}

TEST(Quantile, BadQIsRejectedEvenForEmptySamples)
{
    // Regression: NaN slipped past the old `q < 0 || q > 1` check
    // (both comparisons are false for NaN) into a float→size_t cast,
    // and an empty sample with any bad q silently returned NaN.  The
    // argument is validated before the empty-sample early-out.
    EXPECT_THROW(quantile({}, -1.0), std::runtime_error);
    EXPECT_THROW(quantile({}, 2.0), std::runtime_error);
    EXPECT_THROW(quantile({}, std::nan("")), std::runtime_error);
}

TEST(Quantile, AllEqualSampleIsFlatAcrossQ)
{
    const std::vector<double> flat(17, 4.25);
    for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(quantile(flat, q), 4.25) << "q=" << q;
}

TEST(PercentileTracker, EmptyTrackerQuantileAndMeanAreNaN)
{
    // Regression: mean() once returned 0.0 on an empty tracker while
    // quantile() returned NaN, so "no data" looked like a perfect
    // latency.  Both must agree on NaN.
    const PercentileTracker t;
    EXPECT_TRUE(std::isnan(t.quantile(0.5)));
    EXPECT_TRUE(std::isnan(t.mean()));
}

TEST(PercentileTracker, SingleObservation)
{
    PercentileTracker t;
    t.add(12.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 12.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.99), 12.0);
    EXPECT_DOUBLE_EQ(t.mean(), 12.0);
}

TEST(PercentileTracker, AllEqualObservations)
{
    PercentileTracker t;
    for (int i = 0; i < 50; ++i)
        t.add(3.5);
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 3.5);
    EXPECT_DOUBLE_EQ(t.quantile(0.999), 3.5);
    EXPECT_DOUBLE_EQ(t.mean(), 3.5);
}

TEST(ReservoirSampler, EmptyReservoirQuantileIsNaN)
{
    const ReservoirSampler r(8);
    EXPECT_TRUE(std::isnan(r.quantile(0.5)));
}

TEST(ReservoirSampler, SingleObservation)
{
    ReservoirSampler r(8);
    r.add(9.0);
    EXPECT_DOUBLE_EQ(r.quantile(0.0), 9.0);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 9.0);
}

TEST(ReservoirSampler, AllEqualEvenPastCapacity)
{
    ReservoirSampler r(16);
    for (int i = 0; i < 1000; ++i)
        r.add(2.5);
    EXPECT_EQ(r.retained(), 16u);
    EXPECT_DOUBLE_EQ(r.quantile(0.5), 2.5);
    EXPECT_DOUBLE_EQ(r.quantile(0.99), 2.5);
}

TEST(Quantile, MedianOfOddSample)
{
    EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenPoints)
{
    // type-7: pos = q*(n-1); for {10,20}, q=0.25 -> 12.5
    EXPECT_DOUBLE_EQ(quantile({10.0, 20.0}, 0.25), 12.5);
}

TEST(Quantile, ExtremesAreMinMax)
{
    std::vector<double> v{4.0, 2.0, 9.0, 7.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, RejectsOutOfRangeQ)
{
    EXPECT_THROW(quantile({1.0}, -0.1), std::runtime_error);
    EXPECT_THROW(quantile({1.0}, 1.1), std::runtime_error);
}

TEST(PercentileTracker, TracksCountMeanQuantile)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    EXPECT_EQ(t.count(), 100u);
    EXPECT_DOUBLE_EQ(t.mean(), 50.5);
    EXPECT_NEAR(t.quantile(0.99), 99.01, 1e-9);
    t.clear();
    EXPECT_EQ(t.count(), 0u);
    EXPECT_TRUE(std::isnan(t.mean()));
}

TEST(ReservoirSampler, RetainsAllBelowCapacity)
{
    ReservoirSampler r(100);
    for (int i = 0; i < 50; ++i)
        r.add(i);
    EXPECT_EQ(r.count(), 50u);
    EXPECT_EQ(r.retained(), 50u);
}

TEST(ReservoirSampler, BoundsMemoryAboveCapacity)
{
    ReservoirSampler r(64);
    for (int i = 0; i < 10000; ++i)
        r.add(i);
    EXPECT_EQ(r.count(), 10000u);
    EXPECT_EQ(r.retained(), 64u);
}

TEST(ReservoirSampler, QuantileApproximatesTrueQuantile)
{
    Rng rng(5);
    ReservoirSampler r(2000);
    PercentileTracker exact;
    for (int i = 0; i < 100000; ++i) {
        const double v = rng.uniform(0.0, 100.0);
        r.add(v);
        exact.add(v);
    }
    EXPECT_NEAR(r.quantile(0.5), exact.quantile(0.5), 3.0);
    EXPECT_NEAR(r.quantile(0.9), exact.quantile(0.9), 3.0);
}

TEST(ReservoirSampler, ZeroCapacityIsFatal)
{
    EXPECT_THROW(ReservoirSampler(0), std::runtime_error);
}

TEST(ReservoirSampler, SeedPinnedReservoirIsDeterministic)
{
    // Vitter regression: one (seed, input stream) pair must always
    // yield the same reservoir, so quantiles over it are reproducible
    // run to run.
    ReservoirSampler a(32, 777);
    ReservoirSampler b(32, 777);
    for (int i = 0; i < 5000; ++i) {
        a.add(static_cast<double>(i));
        b.add(static_cast<double>(i));
    }
    ASSERT_EQ(a.values().size(), 32u);
    EXPECT_EQ(a.values(), b.values());
    EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
    EXPECT_DOUBLE_EQ(a.quantile(0.99), b.quantile(0.99));

    // A different seed must be able to make different replacement
    // choices over the same stream.
    ReservoirSampler c(32, 778);
    for (int i = 0; i < 5000; ++i)
        c.add(static_cast<double>(i));
    EXPECT_NE(a.values(), c.values());
}

TEST(ReservoirSampler, ReplacementProbabilityIsCapOverN)
{
    // Sharp Algorithm R check at capacity 1: after {x, y}, P(retain y)
    // must be 1/2.  The buggy variants this guards against are
    // exclusive bounds on the slot draw (P = 1, always replaces) and
    // drawing before the count advances (P = 1 as well at n = 2), so
    // any bias here lands far outside the tolerance band.
    int replaced = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        ReservoirSampler r(1, static_cast<std::uint64_t>(t) + 1);
        r.add(0.0);
        r.add(1.0);
        replaced += r.values().front() > 0.5 ? 1 : 0;
    }
    const double rate =
        static_cast<double>(replaced) / static_cast<double>(trials);
    EXPECT_NEAR(rate, 0.5, 0.03);
}

TEST(ReservoirSampler, EveryObservationRetainedUniformly)
{
    // With capacity K over N observations every index must survive
    // with probability K/N — the defining Vitter property.  Tally
    // per-index retention over many independently seeded reservoirs.
    const std::size_t kCap = 8;
    const int kN = 64;
    const int trials = 3000;
    std::vector<int> kept(kN, 0);
    for (int t = 0; t < trials; ++t) {
        ReservoirSampler r(kCap, static_cast<std::uint64_t>(t) + 1);
        for (int i = 0; i < kN; ++i)
            r.add(static_cast<double>(i));
        for (double v : r.values())
            ++kept[static_cast<std::size_t>(v)];
    }
    const double expected = static_cast<double>(kCap) / kN; // 0.125
    for (int i = 0; i < kN; ++i) {
        const double rate =
            static_cast<double>(kept[static_cast<std::size_t>(i)]) /
            static_cast<double>(trials);
        EXPECT_NEAR(rate, expected, 0.035) << "index " << i;
    }
}

class QuantileMonotoneTest : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantileMonotoneTest, QuantileIsMonotoneInQ)
{
    Rng rng(123);
    std::vector<double> sample;
    for (int i = 0; i < 500; ++i)
        sample.push_back(rng.gaussian(0.0, 10.0));
    const double q = GetParam();
    EXPECT_LE(quantile(sample, q), quantile(sample, std::min(1.0, q + 0.05)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotoneTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.95));

} // namespace
} // namespace adrias::stats
