/** @file Property-based (parameterized) tests of the contention model. */

#include <gtest/gtest.h>

#include "testbed/testbed.hh"
#include "workloads/spec.hh"

namespace adrias::testbed
{
namespace
{

using workloads::IBenchKind;
using workloads::ibenchSpec;
using workloads::sparkBenchmark;
using workloads::sparkBenchmarks;

Testbed
quiet()
{
    Testbed bed;
    bed.setNoise(0.0);
    return bed;
}

double
appSlowdown(const workloads::WorkloadSpec &app, MemoryMode mode,
            IBenchKind kind, int trashers, MemoryMode trasher_mode)
{
    Testbed bed = quiet();
    std::vector<LoadDescriptor> loads{app.toLoad(0, mode)};
    for (int i = 1; i <= trashers; ++i)
        loads.push_back(
            ibenchSpec(kind).toLoad(static_cast<DeploymentId>(i),
                                    trasher_mode));
    return bed.tick(loads).outcomes.at(0).slowdown;
}

// Property 1: for every application, remote placement in isolation is
// never faster than local.
class RemoteNeverFasterTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RemoteNeverFasterTest, InIsolation)
{
    const auto &app = sparkBenchmark(GetParam());
    Testbed bed = quiet();
    const double local =
        bed.tick({app.toLoad(0, MemoryMode::Local)}).outcomes[0].slowdown;
    const double remote =
        bed.tick({app.toLoad(0, MemoryMode::Remote)})
            .outcomes[0]
            .slowdown;
    EXPECT_GE(remote, local - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSpark, RemoteNeverFasterTest,
    ::testing::Values("wordcount", "sort", "terasort", "kmeans", "bayes",
                      "gbt", "lr", "linear", "als", "pca", "gmm", "svm",
                      "svd", "nweight", "pagerank", "rf", "lda"));

// Property 2: slowdown is monotone in trasher count for every
// interference kind, in both modes.
struct MonotoneCase
{
    IBenchKind kind;
    MemoryMode mode;
};

class SlowdownMonotoneTest
    : public ::testing::TestWithParam<MonotoneCase>
{
};

TEST_P(SlowdownMonotoneTest, MoreTrashersNeverHelp)
{
    const auto [kind, mode] = GetParam();
    const auto &app = sparkBenchmark("sort");
    double prev = 0.0;
    for (int n : {0, 1, 2, 4, 8, 16, 32}) {
        const double s = appSlowdown(app, mode, kind, n, mode);
        EXPECT_GE(s, prev - 1e-6)
            << "kind=" << toString(kind) << " mode=" << toString(mode)
            << " n=" << n;
        prev = s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlowdownMonotoneTest,
    ::testing::Values(
        MonotoneCase{IBenchKind::Cpu, MemoryMode::Local},
        MonotoneCase{IBenchKind::L2, MemoryMode::Local},
        MonotoneCase{IBenchKind::L3, MemoryMode::Local},
        MonotoneCase{IBenchKind::MemBw, MemoryMode::Local},
        MonotoneCase{IBenchKind::Cpu, MemoryMode::Remote},
        MonotoneCase{IBenchKind::L3, MemoryMode::Remote},
        MonotoneCase{IBenchKind::MemBw, MemoryMode::Remote}));

// Property 3: conservation — aggregate achieved traffic never exceeds
// pool capacities, for arbitrary mixes.
class ConservationTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ConservationTest, AchievedWithinCapacities)
{
    Testbed bed = quiet();
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const auto &sparks = sparkBenchmarks();
    std::vector<LoadDescriptor> loads;
    const int apps = static_cast<int>(rng.uniformInt(1, 30));
    for (int i = 0; i < apps; ++i) {
        const auto &spec = sparks[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(sparks.size()) - 1))];
        loads.push_back(spec.toLoad(
            static_cast<DeploymentId>(i),
            rng.bernoulli(0.5) ? MemoryMode::Remote : MemoryMode::Local));
    }
    const TickResult tick = bed.tick(loads);
    EXPECT_LE(tick.remoteTrafficGBps,
              bed.params().remoteBwGBps + 1e-9);
    EXPECT_LE(tick.localTrafficGBps, bed.params().localBwGBps + 1e-9);

    // Per-app achieved traffic never exceeds its unimpeded demand.
    for (std::size_t i = 0; i < loads.size(); ++i) {
        EXPECT_LE(tick.outcomes[i].achievedGBps,
                  loads[i].memDemandGBps + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Range(1, 11));

// Property 4: channel latency is bounded to [base, saturation] for any
// load mix.
TEST(ChannelLatencyBounds, AlwaysWithinModelRange)
{
    Testbed bed = quiet();
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<LoadDescriptor> loads;
        const int n = static_cast<int>(rng.uniformInt(0, 35));
        for (int i = 0; i < n; ++i) {
            loads.push_back(ibenchSpec(IBenchKind::MemBw)
                                .toLoad(static_cast<DeploymentId>(i),
                                        rng.bernoulli(0.7)
                                            ? MemoryMode::Remote
                                            : MemoryMode::Local));
        }
        const TickResult tick = bed.tick(loads);
        EXPECT_GE(tick.channelLatencyCycles,
                  bed.params().channelLatencyBaseCycles - 1e-9);
        EXPECT_LE(tick.channelLatencyCycles,
                  bed.params().channelLatencySatCycles + 1e-9);
    }
}

// Property 5: adding a co-runner never speeds anyone up.
TEST(InterferenceNeverHelps, AddingCoRunnerIsMonotone)
{
    Testbed bed = quiet();
    const auto &victim = sparkBenchmark("kmeans");
    const auto &intruder = sparkBenchmark("nweight");

    for (MemoryMode mode : {MemoryMode::Local, MemoryMode::Remote}) {
        const double alone =
            bed.tick({victim.toLoad(0, mode)}).outcomes[0].slowdown;
        const double together =
            bed.tick({victim.toLoad(0, mode), intruder.toLoad(1, mode)})
                .outcomes[0]
                .slowdown;
        EXPECT_GE(together, alone - 1e-9) << toString(mode);
    }
}

// Property 6: hit rates and miss scales stay in their legal ranges.
TEST(OutcomeRanges, HitRateAndMissScaleLegal)
{
    Testbed bed = quiet();
    std::vector<LoadDescriptor> loads;
    for (int i = 0; i < 20; ++i)
        loads.push_back(ibenchSpec(IBenchKind::L3).toLoad(
            static_cast<DeploymentId>(i), MemoryMode::Local));
    loads.push_back(sparkBenchmark("nweight").toLoad(
        99, MemoryMode::Remote));
    for (const auto &outcome : bed.tick(loads).outcomes) {
        EXPECT_GE(outcome.hitRate, 0.0);
        EXPECT_LE(outcome.hitRate, 1.0);
        EXPECT_GE(outcome.missScale, 1.0);
        EXPECT_GE(outcome.slowdown, 1.0);
        EXPECT_GE(outcome.achievedGBps, 0.0);
    }
}

} // namespace
} // namespace adrias::testbed
