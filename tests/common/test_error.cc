/** @file Unit tests for the typed error/Result machinery. */

#include <gtest/gtest.h>

#include "common/error.hh"

namespace adrias
{
namespace
{

TEST(ErrorCodeNames, AreStable)
{
    EXPECT_EQ(errorCodeName(ErrorCode::Io), "io");
    EXPECT_EQ(errorCodeName(ErrorCode::BadNumber), "bad-number");
    EXPECT_EQ(errorCodeName(ErrorCode::Truncated), "truncated");
    EXPECT_EQ(errorCodeName(ErrorCode::BadSyntax), "bad-syntax");
}

TEST(ErrorToString, CarriesCodeAndMessage)
{
    const Error error = makeError(ErrorCode::BadHeader, "no magic");
    EXPECT_EQ(error.toString(), "[bad-header] no magic");
}

TEST(ResultOfValue, HoldsValueOrError)
{
    Result<int> good = 42;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.valueOr(0), 42);
    EXPECT_EQ(good.expect(), 42);

    Result<int> bad = makeError(ErrorCode::Truncated, "short");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::Truncated);
    EXPECT_EQ(bad.valueOr(-1), -1);
    EXPECT_THROW((void)bad.expect(), std::runtime_error);
    // Accessing the wrong side is a programming error.
    EXPECT_THROW((void)bad.value(), std::logic_error);
    EXPECT_THROW((void)good.error(), std::logic_error);
}

TEST(ResultOfVoid, SuccessAndFailure)
{
    const Result<void> good;
    EXPECT_TRUE(good.ok());
    EXPECT_NO_THROW(good.expect());
    EXPECT_THROW((void)good.error(), std::logic_error);

    const Result<void> bad = makeError(ErrorCode::Io, "nope");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::Io);
    EXPECT_THROW((void)bad.expect(), std::runtime_error);
}

TEST(ParseDouble, AcceptsExactNumbers)
{
    EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
    EXPECT_DOUBLE_EQ(parseDouble("-2e3").value(), -2000.0);
    EXPECT_DOUBLE_EQ(parseDouble("0").value(), 0.0);
}

TEST(ParseDouble, RejectsJunk)
{
    for (const char *text : {"", "12abc", "abc", "1.2.3", " 1", "1 ",
                             "0x10", "--3", "1e999"}) {
        const Result<double> parsed = parseDouble(text);
        EXPECT_FALSE(parsed.ok()) << "'" << text << "'";
        if (!parsed.ok()) {
            EXPECT_EQ(parsed.error().code, ErrorCode::BadNumber);
        }
    }
}

TEST(ParseSize, AcceptsExactIntegers)
{
    EXPECT_EQ(parseSize("0").value(), 0u);
    EXPECT_EQ(parseSize("12").value(), 12u);
}

TEST(ParseSize, RejectsJunkNegativesAndOverflow)
{
    for (const char *text :
         {"", "-1", "1.5", "12abc", " 7", "99999999999999999999999"}) {
        const Result<std::size_t> parsed = parseSize(text);
        EXPECT_FALSE(parsed.ok()) << "'" << text << "'";
    }
}

} // namespace
} // namespace adrias
