# Empty dependencies file for fig09_be_distributions.
# This may be replaced when dependencies are built.
