/**
 * @file
 * Table I + Fig. 12 — System-state model accuracy: R² per monitored
 * event on the held-out split, plus actual-vs-predicted residual
 * summary (the paper's 45-degree scatter).
 *
 * Paper: R² 0.964 .. 0.999, average 0.993.
 */

#include <cmath>
#include <iostream>

#include "bench/common.hh"
#include "models/system_state.hh"

int
main()
{
    using namespace adrias;
    bench::banner("Table I / Fig. 12 — system-state model accuracy",
                  "R^2 0.964..0.999 per event, average 0.993");

    // Trace collection at several arrival intensities.
    std::vector<scenario::ScenarioResult> results;
    const auto scenarios =
        static_cast<std::size_t>(bench::envInt("ADRIAS_BENCH_SCENARIOS",
                                               4));
    const SimTime spawn_maxes[] = {20, 30, 40, 50, 60};
    for (std::size_t i = 0; i < scenarios; ++i) {
        scenario::ScenarioRunner runner(bench::evalScenario(
            1500 + i, spawn_maxes[i % std::size(spawn_maxes)]));
        scenario::RandomPlacement policy(1600 + i);
        results.push_back(runner.run(policy));
    }

    auto samples = scenario::DatasetBuilder::systemState(results, 5);
    auto [train, test] =
        scenario::splitDataset(std::move(samples), 0.6, 9);
    std::cout << "dataset: train=" << train.size()
              << " test=" << test.size() << "\n";

    models::ModelConfig config;
    config.epochs = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_EPOCHS", 30)) * 2;
    models::SystemStateModel model(config);
    const double loss = model.train(train);
    std::cout << "final training loss (scaled): "
              << formatDouble(loss, 4) << "\n\n";

    const auto eval = model.evaluate(test);
    TextTable table({"event", "R^2 (measured)", "R^2 (paper)"});
    const double paper_r2[] = {0.9969, 0.9995, 0.9641, 0.9983,
                               0.9977, 0.9871, 0.9876};
    for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e) {
        table.addRow(perfEventName(testbed::allPerfEvents()[e]),
                     {eval.r2PerEvent[e], paper_r2[e]}, 4);
    }
    table.addRow("Avg.", {eval.r2Average, 0.9932}, 4);
    std::cout << table.toString();

    // Fig. 12: residuals against the 45-degree line.
    double max_resid = 0.0, mean_resid = 0.0;
    for (std::size_t i = 0; i < eval.actual.size(); ++i) {
        const double denom = std::max(1e-9, std::fabs(eval.actual[i]));
        const double resid =
            std::fabs(eval.predicted[i] - eval.actual[i]) / denom;
        max_resid = std::max(max_resid, resid);
        mean_resid += resid;
    }
    mean_resid /= static_cast<double>(eval.actual.size());
    std::cout << "\nFig. 12 residuals: mean relative deviation from the "
                 "45-degree line = "
              << formatDouble(100.0 * mean_resid, 1) << "% over "
              << eval.actual.size() << " points\n";
    return 0;
}
