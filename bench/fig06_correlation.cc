/**
 * @file
 * Fig. 6 — Affinity of system and workload metrics: Pearson
 * correlation of each monitored event with application performance,
 * measured over the 120 s prior to arrival (tau) and during execution
 * (l), for remote-mode deployments.
 *
 * Expected shape (R8): runtime metrics correlate much more strongly
 * with performance than historical ones.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench/common.hh"
#include "stats/correlation.hh"

namespace
{

using namespace adrias;

/** Mean of one event over a binned window sequence. */
double
eventMean(const std::vector<ml::Matrix> &window, std::size_t event)
{
    double total = 0.0;
    for (const auto &step : window)
        total += step.at(0, event);
    return total / static_cast<double>(window.size());
}

} // namespace

int
main()
{
    bench::banner("Fig. 6 — correlation of system metrics with app "
                  "performance",
                  "runtime (during-execution) metrics correlate much "
                  "higher than historical ones (R8)");

    // Randomized co-location scenarios, remote placements only.
    std::vector<scenario::ScenarioResult> results;
    const auto scenarios =
        static_cast<std::size_t>(bench::envInt("ADRIAS_BENCH_SCENARIOS",
                                               4));
    for (std::size_t i = 0; i < scenarios; ++i) {
        scenario::ScenarioRunner runner(
            bench::evalScenario(500 + i, 25));
        scenario::RandomPlacement policy(600 + i);
        results.push_back(runner.run(policy));
    }

    // Performance vs prior/during metric means for remote BE records.
    std::vector<double> perf;
    std::array<std::vector<double>, testbed::kNumPerfEvents> prior;
    std::array<std::vector<double>, testbed::kNumPerfEvents> during;
    for (const auto &result : results) {
        for (const auto &record : result.records) {
            if (record.cls != WorkloadClass::BestEffort ||
                record.mode != MemoryMode::Remote ||
                record.historyWindow.empty() ||
                record.executionWindow.empty()) {
                continue;
            }
            perf.push_back(record.execTimeSec);
            for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e) {
                prior[e].push_back(eventMean(record.historyWindow, e));
                during[e].push_back(eventMean(record.executionWindow, e));
            }
        }
    }

    TextTable table({"event", "corr prior (tau)", "corr during (l)",
                     "|during| - |prior|"});
    double prior_abs = 0.0, during_abs = 0.0;
    for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e) {
        const double r_prior = stats::pearson(prior[e], perf);
        const double r_during = stats::pearson(during[e], perf);
        prior_abs += std::fabs(r_prior);
        during_abs += std::fabs(r_during);
        table.addRow(perfEventName(testbed::allPerfEvents()[e]),
                     {r_prior, r_during,
                      std::fabs(r_during) - std::fabs(r_prior)},
                     3);
    }
    std::cout << table.toString();
    std::cout << "\nMean |corr|: prior="
              << formatDouble(prior_abs / testbed::kNumPerfEvents, 3)
              << " during="
              << formatDouble(during_abs / testbed::kNumPerfEvents, 3)
              << " over n=" << perf.size() << " remote deployments\n"
              << "Shape check: the during-execution column dominates "
                 "(R8 predictive-monitoring premise).\n";
    return 0;
}
