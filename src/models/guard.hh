/**
 * @file
 * Resilience guard around the Predictor (the "Predictor gets sick"
 * half of the failure model).
 *
 * GuardedPredictor wraps any PredictorBase with:
 *  - input validation (histories/signatures must be finite),
 *  - a per-call inference deadline against a modelled latency (which
 *    the FaultInjector can spike),
 *  - a circuit breaker: after K consecutive failures the prediction
 *    path is declared unhealthy and calls are rejected immediately,
 *    with exponential backoff and half-open probing before recovery.
 *
 * When a prediction cannot be served the guard throws
 * PredictionUnavailable; the Orchestrator catches it and falls back to
 * its heuristic (degraded-mode) placement policy.
 */

#ifndef ADRIAS_MODELS_GUARD_HH
#define ADRIAS_MODELS_GUARD_HH

#include <stdexcept>

#include "common/io/checkpoint_annotations.hh"
#include "fault/circuit_breaker.hh"
#include "fault/fault.hh"
#include "models/predictor.hh"

namespace adrias::models
{

/** Raised when the guarded prediction path cannot serve a decision. */
class PredictionUnavailable : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Guard tuning knobs. */
struct PredictorGuardConfig
{
    /**
     * Per-call inference budget, ms.  The budget is a hard, exclusive
     * bound: a modelled latency of exactly deadlineMs already counts
     * as a deadline miss (tally, fail() and breaker all agree on this
     * boundary).  Must satisfy baseLatencyMs < deadlineMs, or every
     * call fails.
     */
    double deadlineMs = 25.0;

    /** Modelled healthy inference latency, ms. */
    double baseLatencyMs = 2.0;

    /** Breaker tuning. */
    fault::CircuitBreakerConfig breaker{};
};

/** Guard tallies (breaker tallies live in the breaker itself). */
struct PredictorGuardStats
{
    std::size_t calls = 0;
    std::size_t served = 0;
    std::size_t failures = 0;          ///< crashes + deadline + bad output
    std::size_t deadlineExceeded = 0;
    std::size_t invalidInputs = 0;
    std::size_t rejectedByBreaker = 0;
    std::size_t injectedCrashes = 0;
};

/**
 * PredictorBase decorator adding validation, deadline and breaker.
 *
 * The decision clock is simulation time: the Orchestrator calls
 * beginDecision(now) before querying, so backoff and recovery follow
 * scenario time deterministically.
 */
class GuardedPredictor : public PredictorBase
{
  public:
    /**
     * @param inner the real prediction stack (borrowed).
     * @param config guard tuning.
     * @param injector optional fault source for crash/latency windows
     *        (borrowed; may be nullptr for a pure defensive guard).
     */
    explicit GuardedPredictor(const PredictorBase &inner,
                              PredictorGuardConfig config = {},
                              fault::FaultInjector *injector = nullptr);

    /** Set the decision time used by deadline/breaker bookkeeping. */
    void beginDecision(SimTime now) { decisionTime = now; }

    ml::Matrix
    predictSystemState(const telemetry::Watcher &watcher) const override;

    double
    predictPerformance(WorkloadClass cls,
                       const std::vector<ml::Matrix> &history,
                       const std::vector<ml::Matrix> &signature,
                       MemoryMode mode) const override;

    /**
     * Batched variant with ONE admission gate for the whole batch: a
     * single breaker request, crash-window salt and modelled-latency
     * deadline check covers all rows, because the fused fast-path runs
     * one inference regardless of the batch size.  The per-request
     * tallies (calls, served) advance by the batch size; gate events
     * (breaker rejections, crashes, deadline misses) count once per
     * batch.  Any gate failure fails the entire batch — per-request
     * deadlines are the serving layer's job (it sizes batches so the
     * inference budget fits every member's deadline).
     */
    std::vector<double>
    predictPerformanceBatch(WorkloadClass cls,
                            const std::vector<PerfQuery> &queries)
        const override;

    bool trained() const override { return wrapped->trained(); }

    /** @return true while the breaker is not Closed. */
    bool
    degraded() const
    {
        return breakerGate.state() != fault::BreakerState::Closed;
    }

    const fault::CircuitBreaker &breaker() const { return breakerGate; }
    const PredictorGuardStats &stats() const { return tallies; }
    const PredictorGuardConfig &config() const { return knobs; }

    /**
     * Serialize the guard's evolving state: breaker machine, tallies,
     * fault-salt call counter and decision clock.  The call counter
     * feeds the FaultInjector's crash-window hash, so restoring it is
     * required for bit-identical fault behaviour after recovery.
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore a payload written by saveState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    const PredictorBase *wrapped ADRIAS_NOT_CHECKPOINTED(
        "borrowed predictor wiring, re-attached at construction");
    PredictorGuardConfig knobs ADRIAS_NOT_CHECKPOINTED(
        "construction-time configuration, re-supplied on restore");
    fault::FaultInjector *faults ADRIAS_NOT_CHECKPOINTED(
        "runtime wiring; the injector checkpoints under its own tag");

    // The PredictorBase interface is const; the guard's bookkeeping is
    // logically observational state.
    mutable fault::CircuitBreaker breakerGate;
    mutable PredictorGuardStats tallies;
    mutable std::uint64_t callCounter = 0;
    SimTime decisionTime = 0;

    /** Breaker state last reported to obs (transition detection). */
    mutable fault::BreakerState obsBreakerState
        ADRIAS_NOT_CHECKPOINTED(
            "obs transition-detection cache; restoreState resyncs it "
            "from the restored breaker") = fault::BreakerState::Closed;

    /**
     * Common gate for every prediction entry point.  `weight` is the
     * number of requests this admission covers (the batch size for the
     * batched path): the calls tally advances by it, while the gate
     * itself — breaker, crash window, deadline — fires once.
     */
    void admitCall(std::uint64_t salt, std::size_t weight = 1) const;

    /**
     * Report a breaker state change to the observability layer (no-op
     * when the state is unchanged or obs is compiled out/disabled).
     */
    void obsBreakerSync() const;

    [[noreturn]] void fail(const std::string &reason,
                           bool breaker_failure) const;
};

} // namespace adrias::models

#endif // ADRIAS_MODELS_GUARD_HH
