#include "models/batching.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace adrias::models
{

std::vector<ml::Matrix>
stackSequences(const std::vector<const std::vector<ml::Matrix> *> &sequences)
{
    if (sequences.empty())
        panic("stackSequences: empty batch");
    const std::size_t steps = sequences.front()->size();
    if (steps == 0)
        panic("stackSequences: zero-length sequences");
    const std::size_t width = sequences.front()->front().cols();

    // Validate every sequence up front, serially: the report must name
    // the lowest offending row regardless of how the pool schedules
    // chunks, and a too-short (or empty) later sequence must be caught
    // before any timestep lambda indexes into it.
    for (std::size_t b = 0; b < sequences.size(); ++b) {
        const auto &sequence = *sequences[b];
        if (sequence.size() != steps)
            panic("stackSequences: ragged batch (row " +
                  std::to_string(b) + " has " +
                  std::to_string(sequence.size()) + " steps, expected " +
                  std::to_string(steps) + ")");
        for (std::size_t t = 0; t < steps; ++t) {
            if (sequence[t].cols() != width || sequence[t].rows() != 1)
                panic("stackSequences: ragged batch (row " +
                      std::to_string(b) + ", step " + std::to_string(t) +
                      " is " + std::to_string(sequence[t].rows()) + "x" +
                      std::to_string(sequence[t].cols()) + ", expected 1x" +
                      std::to_string(width) + ")");
        }
    }

    // Each timestep fills its own pre-sized slot, so the assembly can
    // fan out across the pool without affecting the result.
    std::vector<ml::Matrix> batched(steps);
    ThreadPool::global().parallelForEach(steps, [&](std::size_t t) {
        ml::Matrix step(sequences.size(), width);
        for (std::size_t b = 0; b < sequences.size(); ++b) {
            const auto &sequence = *sequences[b];
            for (std::size_t c = 0; c < width; ++c)
                step.at(b, c) = sequence[t].at(0, c);
        }
        batched[t] = std::move(step);
    });
    return batched;
}

BatchAssembler::BatchAssembler(BatchAssemblerConfig config)
    : knobs(config)
{
    if (knobs.batchSize == 0)
        fatal("BatchAssembler: batch size must be positive");
}

void
BatchAssembler::push(std::size_t item, SimTime deadline)
{
    if (queue.empty() || deadline < earliest)
        earliest = deadline;
    queue.push_back({item, deadline});
}

bool
BatchAssembler::flushDue(SimTime now) const
{
    if (queue.empty())
        return false;
    if (queue.size() >= knobs.batchSize)
        return true;
    // Deadlines are exclusive: an item decided at tick `earliest` has
    // already missed.  The latest safe dispatch tick is earliest - 1,
    // so once now + 1 would reach the deadline we must flush now.
    return now + 1 >= earliest;
}

std::vector<std::size_t>
BatchAssembler::take()
{
    if (queue.empty())
        panic("BatchAssembler::take on empty queue");
    const std::size_t n = std::min(queue.size(), knobs.batchSize);
    std::vector<std::size_t> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(queue.front().item);
        queue.pop_front();
    }
    recomputeEarliest();
    return batch;
}

SimTime
BatchAssembler::earliestDeadline() const
{
    if (queue.empty())
        panic("BatchAssembler::earliestDeadline on empty queue");
    return earliest;
}

void
BatchAssembler::recomputeEarliest()
{
    if (queue.empty()) {
        earliest = 0;
        return;
    }
    earliest = queue.front().deadline;
    for (const Pending &p : queue)
        earliest = std::min(earliest, p.deadline);
}

ml::Matrix
stackRows(const std::vector<const ml::Matrix *> &rows)
{
    if (rows.empty())
        panic("stackRows: empty batch");
    const std::size_t width = rows.front()->cols();
    ml::Matrix out(rows.size(), width);
    for (std::size_t b = 0; b < rows.size(); ++b) {
        if (rows[b]->cols() != width || rows[b]->rows() != 1)
            panic("stackRows: ragged batch");
        for (std::size_t c = 0; c < width; ++c)
            out.at(b, c) = rows[b]->at(0, c);
    }
    return out;
}

} // namespace adrias::models
