file(REMOVE_RECURSE
  "CMakeFiles/table1_system_state_model.dir/table1_system_state_model.cc.o"
  "CMakeFiles/table1_system_state_model.dir/table1_system_state_model.cc.o.d"
  "table1_system_state_model"
  "table1_system_state_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_system_state_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
